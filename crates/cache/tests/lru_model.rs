//! Property test: the set-associative cache against a naive reference model.

use std::collections::VecDeque;

use mhp_cache::{Cache, CacheConfig};
use proptest::prelude::*;

/// A deliberately naive reference: per-set LRU implemented with a VecDeque
/// and linear scans, structured differently from the production code.
struct ReferenceCache {
    sets: Vec<VecDeque<u64>>,
    ways: usize,
    block_bytes: u64,
}

impl ReferenceCache {
    fn new(config: CacheConfig) -> Self {
        ReferenceCache {
            sets: (0..config.sets()).map(|_| VecDeque::new()).collect(),
            ways: config.associativity(),
            block_bytes: config.block_bytes() as u64,
        }
    }

    /// Returns `true` on a hit.
    fn access(&mut self, addr: u64) -> bool {
        let block = addr / self.block_bytes;
        let set = (block % self.sets.len() as u64) as usize;
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&b| b == block) {
            q.remove(pos);
            q.push_front(block);
            true
        } else {
            if q.len() == self.ways {
                q.pop_back();
            }
            q.push_front(block);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hit/miss outcomes agree with the reference on arbitrary address
    /// sequences and geometries.
    #[test]
    fn cache_matches_reference_model(
        addrs in prop::collection::vec(0u64..65_536, 1..500),
        size_log in 9u32..14,   // 512 B .. 8 KB
        ways_log in 0u32..3,    // 1 .. 4 ways
    ) {
        let size = 1usize << size_log;
        let ways = 1usize << ways_log;
        let config = CacheConfig::new(size, 64, ways).unwrap();
        let mut cache = Cache::new(config);
        let mut reference = ReferenceCache::new(config);
        for &a in &addrs {
            let hit_real = !cache.access(a).is_miss();
            let hit_ref = reference.access(a);
            prop_assert_eq!(hit_real, hit_ref, "divergence at address {:#x}", a);
        }
        prop_assert_eq!(cache.stats().accesses, addrs.len() as u64);
    }

    /// probe() reports residency consistently with a following access.
    #[test]
    fn probe_agrees_with_access(
        addrs in prop::collection::vec(0u64..4_096, 1..200),
    ) {
        let config = CacheConfig::new(1_024, 64, 2).unwrap();
        let mut cache = Cache::new(config);
        for &a in &addrs {
            let resident = cache.probe(a);
            let hit = !cache.access(a).is_miss();
            prop_assert_eq!(resident, hit);
        }
    }

    /// fill() never changes hit/miss outcomes for blocks already resident,
    /// and a filled block hits on its next access.
    #[test]
    fn fill_makes_blocks_resident(addr in 0u64..1_000_000) {
        let config = CacheConfig::new(2_048, 64, 4).unwrap();
        let mut cache = Cache::new(config);
        cache.fill(addr);
        prop_assert!(cache.probe(addr));
        prop_assert!(!cache.access(addr).is_miss());
    }
}
