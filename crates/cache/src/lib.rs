//! # mhp-cache — data-cache simulator substrate
//!
//! §2 of *"Catching Accurate Profiles in Hardware"* motivates the profiler
//! with cache optimizations: *"In many cases a large percentage of data
//! cache misses are caused by a very small number of instructions"* —
//! prefetching and speculative precomputation want exactly the
//! `<load PC, miss>` heavy hitters the Multi-Hash profiler captures.
//!
//! The paper assumes a memory hierarchy exists; this crate builds the
//! substrate:
//!
//! * [`Cache`] — a set-associative, LRU, write-allocate data cache model;
//! * [`access`] — deterministic memory-access generators (strided kernels,
//!   pointer chases, Zipf-distributed object heaps) with per-PC behaviour,
//!   so a small set of "delinquent" load PCs produces most misses;
//! * [`MissEvents`] — the adapter that filters an access stream through a
//!   cache and yields one `<pc, block address>` tuple per **miss**: the
//!   event stream a miss profiler consumes.
//!
//! ## Example
//!
//! ```
//! use mhp_cache::{access::AccessPattern, Cache, CacheConfig, MissEvents};
//! use mhp_core::{EventProfiler, IntervalConfig, MultiHashConfig, MultiHashProfiler};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cache = Cache::new(CacheConfig::new(32 * 1024, 64, 4)?);
//! let accesses = AccessPattern::demo_mix(1).events().take(200_000);
//! let mut profiler = MultiHashProfiler::new(
//!     IntervalConfig::new(5_000, 0.01)?,
//!     MultiHashConfig::best(),
//!     1,
//! )?;
//! let mut last = None;
//! for miss in MissEvents::new(cache, accesses) {
//!     if let Some(profile) = profiler.observe(miss) {
//!         last = Some(profile);
//!     }
//! }
//! let profile = last.expect("enough misses for an interval");
//! assert!(!profile.is_empty(), "delinquent loads captured");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod access;
mod cache;
mod miss_stream;

pub use access::{AccessPattern, MemAccess};
pub use cache::{AccessOutcome, Cache, CacheConfig, CacheStats};
pub use miss_stream::{MissEvents, MissNaming};
