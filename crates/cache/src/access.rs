//! Deterministic memory-access generators.
//!
//! The delinquent-load phenomenon the paper's §2 leans on — most misses
//! come from few static loads — emerges from the mix of behaviours real
//! programs exhibit. Each generator models one load PC (or a small group)
//! with a characteristic pattern:
//!
//! * **streaming** loads walk large arrays with a stride — compulsory
//!   misses forever (classic delinquent loads);
//! * **pointer-chasing** loads walk a shuffled linked structure larger than
//!   the cache — near-100 % miss rate (the worst delinquents);
//! * **hot-object** loads touch a small Zipf-distributed object set — they
//!   dominate *accesses* but rarely miss (the noise a miss profiler must
//!   see through);
//! * **stack-like** loads touch a tiny region — essentially never miss.

use mhp_trace::sampler::ZipfSampler;
use mhp_trace::util::{hash2, SplitMix64};

/// One memory access: the load's PC and the byte address it touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// PC of the load instruction.
    pub pc: u64,
    /// Byte address accessed.
    pub addr: u64,
}

/// The behaviour of one generator component.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    /// Walk `region_bytes` with `stride` bytes per access, wrapping.
    Stream { stride: u64, region_bytes: u64 },
    /// Chase a pseudo-random permutation over `region_bytes`.
    Chase { region_bytes: u64 },
    /// Access one of `objects` cache-block-sized objects, Zipf-distributed.
    HotObjects { objects: usize },
    /// Access a tiny `region_bytes` region uniformly.
    Local { region_bytes: u64 },
}

/// One weighted component of an access pattern.
#[derive(Debug, Clone)]
struct Component {
    pc: u64,
    base: u64,
    kind: Kind,
    weight: f64,
    /// Mutable walk state (offset or chase position).
    cursor: u64,
    zipf: Option<ZipfSampler>,
}

/// A weighted mixture of access-generating components, yielding an infinite
/// deterministic access stream.
///
/// # Examples
///
/// ```
/// use mhp_cache::access::AccessPattern;
/// let accesses: Vec<_> = AccessPattern::demo_mix(7).events().take(1_000).collect();
/// assert_eq!(accesses.len(), 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct AccessPattern {
    components: Vec<Component>,
    seed: u64,
}

impl AccessPattern {
    /// Creates an empty pattern; add components with the builder methods.
    pub fn new(seed: u64) -> Self {
        AccessPattern {
            components: Vec::new(),
            seed,
        }
    }

    fn push(&mut self, pc: u64, base: u64, kind: Kind, weight: f64) -> &mut Self {
        assert!(weight > 0.0, "component weight must be positive");
        let zipf = match kind {
            Kind::HotObjects { objects } => Some(ZipfSampler::new(objects, 1.0)),
            _ => None,
        };
        self.components.push(Component {
            pc,
            base,
            kind,
            weight,
            cursor: 0,
            zipf,
        });
        self
    }

    /// Adds a streaming (strided-array) load.
    pub fn stream(
        &mut self,
        pc: u64,
        base: u64,
        stride: u64,
        region_bytes: u64,
        weight: f64,
    ) -> &mut Self {
        assert!(stride > 0 && region_bytes >= stride, "degenerate stream");
        self.push(
            pc,
            base,
            Kind::Stream {
                stride,
                region_bytes,
            },
            weight,
        )
    }

    /// Adds a pointer-chasing load over a shuffled region.
    pub fn chase(&mut self, pc: u64, base: u64, region_bytes: u64, weight: f64) -> &mut Self {
        assert!(region_bytes >= 64, "chase region too small");
        self.push(pc, base, Kind::Chase { region_bytes }, weight)
    }

    /// Adds a hot-object load (Zipf over `objects` block-sized objects).
    pub fn hot_objects(&mut self, pc: u64, base: u64, objects: usize, weight: f64) -> &mut Self {
        assert!(objects > 0, "need objects");
        self.push(pc, base, Kind::HotObjects { objects }, weight)
    }

    /// Adds a stack-like local load.
    pub fn local(&mut self, pc: u64, base: u64, region_bytes: u64, weight: f64) -> &mut Self {
        assert!(region_bytes > 0, "need a region");
        self.push(pc, base, Kind::Local { region_bytes }, weight)
    }

    /// A representative mixture: two delinquent loads (one stream, one
    /// chase) hiding behind hot-object and stack traffic that dominates the
    /// access count.
    pub fn demo_mix(seed: u64) -> Self {
        let mut p = AccessPattern::new(seed);
        p.hot_objects(0x40_0100, 0x1000_0000, 64, 0.45)
            .local(0x40_0108, 0x7FFF_0000, 4 * 1024, 0.35)
            .stream(0x40_0200, 0x2000_0000, 64, 8 * 1024 * 1024, 0.12)
            .chase(0x40_0208, 0x3000_0000, 4 * 1024 * 1024, 0.08);
        p
    }

    /// The component PCs, in insertion order.
    pub fn pcs(&self) -> Vec<u64> {
        self.components.iter().map(|c| c.pc).collect()
    }

    /// Consumes the pattern, returning the infinite access iterator.
    ///
    /// # Panics
    ///
    /// Panics if no component was added.
    pub fn events(self) -> AccessStream {
        assert!(!self.components.is_empty(), "pattern has no components");
        let weights: Vec<f64> = self.components.iter().map(|c| c.weight).collect();
        let chooser = mhp_trace::sampler::DiscreteSampler::from_weights(&weights);
        AccessStream {
            rng: SplitMix64::new(hash2(self.seed, 0xACCE55)),
            components: self.components,
            chooser,
        }
    }
}

/// The infinite iterator produced by [`AccessPattern::events`].
#[derive(Debug, Clone)]
pub struct AccessStream {
    components: Vec<Component>,
    chooser: mhp_trace::sampler::DiscreteSampler,
    rng: SplitMix64,
}

impl Iterator for AccessStream {
    type Item = MemAccess;

    fn next(&mut self) -> Option<MemAccess> {
        let idx = self.chooser.sample(&mut self.rng);
        let c = &mut self.components[idx];
        let addr = match c.kind {
            Kind::Stream {
                stride,
                region_bytes,
            } => {
                let addr = c.base + c.cursor;
                c.cursor = (c.cursor + stride) % region_bytes;
                addr
            }
            Kind::Chase { region_bytes } => {
                // A full-period LCG over a power-of-two block count: visits
                // every block in a pseudo-random order before repeating —
                // a linked structure initialized by a shuffle. (A naive
                // x -> hash(x) walk would fall into a ~sqrt(n) rho-cycle.)
                let blocks = (region_bytes / 64).next_power_of_two() / 2;
                let blocks = blocks.max(1);
                c.cursor = (c.cursor.wrapping_mul(1_664_525).wrapping_add(1_013_904_223)) % blocks;
                c.base + c.cursor * 64
            }
            Kind::HotObjects { .. } => {
                let rank = c.zipf.as_ref().expect("zipf built").sample(&mut self.rng) as u64;
                c.base + rank * 64
            }
            Kind::Local { region_bytes } => c.base + self.rng.next_below(region_bytes),
        };
        Some(MemAccess { pc: c.pc, addr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn streams_are_deterministic() {
        let a: Vec<_> = AccessPattern::demo_mix(3).events().take(500).collect();
        let b: Vec<_> = AccessPattern::demo_mix(3).events().take(500).collect();
        let c: Vec<_> = AccessPattern::demo_mix(4).events().take(500).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stream_component_walks_with_stride() {
        let mut p = AccessPattern::new(1);
        p.stream(0x10, 0x1000, 64, 640, 1.0);
        let addrs: Vec<u64> = p.events().take(12).map(|a| a.addr).collect();
        assert_eq!(addrs[0], 0x1000);
        assert_eq!(addrs[1], 0x1040);
        assert_eq!(addrs[9], 0x1000 + 9 * 64);
        assert_eq!(addrs[10], 0x1000, "wraps at region end");
    }

    #[test]
    fn chase_component_stays_in_region_and_varies() {
        let mut p = AccessPattern::new(2);
        p.chase(0x20, 0x4000, 64 * 1024, 1.0);
        let addrs: Vec<u64> = p.events().take(1_000).map(|a| a.addr).collect();
        let distinct: HashSet<u64> = addrs.iter().copied().collect();
        assert!(
            distinct.len() >= 500,
            "chase must not cycle quickly: {}",
            distinct.len()
        );
        for a in addrs {
            assert!((0x4000..0x4000 + 64 * 1024).contains(&a));
        }
    }

    #[test]
    fn hot_objects_concentrate_accesses() {
        let mut p = AccessPattern::new(3);
        p.hot_objects(0x30, 0x8000, 128, 1.0);
        let mut counts = std::collections::HashMap::new();
        for a in p.events().take(50_000) {
            *counts.entry(a.addr).or_insert(0u64) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > 5_000, "rank-0 object should dominate, got {max}");
    }

    #[test]
    fn weights_split_traffic_between_pcs() {
        let mut p = AccessPattern::new(4);
        p.local(0x1, 0, 1024, 0.9).local(0x2, 4096, 1024, 0.1);
        let mut by_pc = std::collections::HashMap::new();
        let n = 20_000;
        for a in p.events().take(n) {
            *by_pc.entry(a.pc).or_insert(0u64) += 1;
        }
        let f1 = by_pc[&0x1] as f64 / n as f64;
        assert!((f1 - 0.9).abs() < 0.02, "pc 1 share {f1}");
    }

    #[test]
    #[should_panic(expected = "no components")]
    fn empty_pattern_panics_on_events() {
        let _ = AccessPattern::new(1).events();
    }

    #[test]
    fn demo_mix_has_four_pcs() {
        assert_eq!(AccessPattern::demo_mix(1).pcs().len(), 4);
    }
}
