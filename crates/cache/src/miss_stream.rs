//! Filtering an access stream through a cache into miss events.

use mhp_core::Tuple;

use crate::access::MemAccess;
use crate::cache::Cache;

/// How a miss is named as a profiling tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissNaming {
    /// `<load PC, load PC>` — one event identity per static load, so the
    /// heavy hitters are the **delinquent loads** (§2's prefetching
    /// motivation). This is the right naming for streaming loads, whose
    /// individual blocks never repeat.
    ByLoad,
    /// `<load PC, block address>` — one identity per (load, block) pair, so
    /// the heavy hitters are **thrashing blocks** repeatedly missed by the
    /// same instruction (§2's cache-replacement motivation).
    ByBlock,
}

/// An iterator adapter: runs every [`MemAccess`] through the cache and
/// yields one tuple per **miss**, named per [`MissNaming`] — the event
/// stream a miss profiler consumes.
///
/// The underlying access iterator is drained as needed; hits produce no
/// event but still update cache state.
///
/// # Examples
///
/// ```
/// use mhp_cache::{access::AccessPattern, Cache, CacheConfig, MissEvents};
/// let cache = Cache::new(CacheConfig::new(1024, 64, 2).unwrap());
/// let mut pattern = AccessPattern::new(1);
/// pattern.stream(0x42, 0x10000, 64, 1 << 20, 1.0); // pure streaming: all misses
/// let misses: Vec<_> = MissEvents::new(cache, pattern.events()).take(10).collect();
/// assert_eq!(misses.len(), 10);
/// assert!(misses.iter().all(|t| t.pc().as_u64() == 0x42));
/// ```
#[derive(Debug)]
pub struct MissEvents<I> {
    cache: Cache,
    accesses: I,
    naming: MissNaming,
}

impl<I> MissEvents<I>
where
    I: Iterator<Item = MemAccess>,
{
    /// Wraps `accesses` with `cache`, naming misses by load PC
    /// ([`MissNaming::ByLoad`], the delinquent-load profile).
    pub fn new(cache: Cache, accesses: I) -> Self {
        MissEvents {
            cache,
            accesses,
            naming: MissNaming::ByLoad,
        }
    }

    /// Wraps `accesses` with `cache`, naming misses by (PC, block)
    /// ([`MissNaming::ByBlock`], the thrashing-block profile).
    pub fn by_block(cache: Cache, accesses: I) -> Self {
        MissEvents {
            cache,
            accesses,
            naming: MissNaming::ByBlock,
        }
    }

    /// The cache's running statistics.
    pub fn stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Consumes the adapter, returning the cache (with its final state).
    pub fn into_cache(self) -> Cache {
        self.cache
    }
}

impl<I> Iterator for MissEvents<I>
where
    I: Iterator<Item = MemAccess>,
{
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        loop {
            let access = self.accesses.next()?;
            if self.cache.access(access.addr).is_miss() {
                return Some(match self.naming {
                    MissNaming::ByLoad => Tuple::new(access.pc, access.pc),
                    MissNaming::ByBlock => {
                        Tuple::new(access.pc, self.cache.config().block_of(access.addr))
                    }
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessPattern;
    use crate::cache::CacheConfig;

    fn small_cache() -> Cache {
        Cache::new(CacheConfig::new(4 * 1024, 64, 2).unwrap())
    }

    #[test]
    fn hits_are_filtered_out() {
        // A local pattern within 1 KB: after warmup, no more misses.
        let mut pattern = AccessPattern::new(1);
        pattern.local(0x7, 0, 1024, 1.0);
        let mut misses = MissEvents::new(small_cache(), pattern.events().take(10_000));
        let events: Vec<_> = (&mut misses).collect();
        // 1 KB / 64 B = 16 compulsory misses; nothing after.
        assert_eq!(events.len(), 16);
        assert_eq!(misses.stats().accesses, 10_000);
    }

    #[test]
    fn chase_misses_dominate() {
        let mut pattern = AccessPattern::new(2);
        pattern
            .local(0x1, 0, 1024, 0.7) // 70% of accesses, ~0 misses
            .chase(0x2, 0x100000, 1 << 20, 0.3); // 30% of accesses, ~all miss
        let misses: Vec<_> =
            MissEvents::new(small_cache(), pattern.events().take(50_000)).collect();
        let from_chase = misses.iter().filter(|t| t.pc().as_u64() == 0x2).count();
        // The chase owns the misses; the local region contributes a steady
        // trickle of conflict misses because chase fills evict its blocks —
        // real cache interference, so the bar is < 100%.
        assert!(
            from_chase as f64 / misses.len() as f64 > 0.85,
            "the pointer chase should own the misses ({from_chase}/{})",
            misses.len()
        );
    }

    #[test]
    fn by_block_tuples_carry_block_addresses() {
        let mut pattern = AccessPattern::new(3);
        pattern.stream(0x9, 0x10000, 64, 1 << 20, 1.0);
        let misses: Vec<_> =
            MissEvents::by_block(small_cache(), pattern.events().take(5)).collect();
        assert_eq!(misses[0].value().as_u64(), 0x10000 / 64);
        assert_eq!(misses[1].value().as_u64(), 0x10000 / 64 + 1);
    }

    #[test]
    fn by_load_tuples_repeat_for_streaming_loads() {
        // The point of ByLoad naming: a streaming load misses on a fresh
        // block every time, yet its event identity stays constant so a
        // frequency profiler can catch it.
        let mut pattern = AccessPattern::new(3);
        pattern.stream(0x9, 0x10000, 64, 1 << 20, 1.0);
        let misses: Vec<_> = MissEvents::new(small_cache(), pattern.events().take(100)).collect();
        assert!(misses.iter().all(|t| *t == mhp_core::Tuple::new(0x9, 0x9)));
    }

    #[test]
    fn into_cache_preserves_state() {
        let mut pattern = AccessPattern::new(4);
        pattern.local(0x7, 0, 128, 1.0);
        let mut adapter = MissEvents::new(small_cache(), pattern.events().take(100));
        let _ = (&mut adapter).count();
        let cache = adapter.into_cache();
        assert!(cache.probe(0));
        assert_eq!(cache.stats().accesses, 100);
    }
}
