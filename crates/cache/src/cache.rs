//! The set-associative LRU cache model.

use std::fmt;

use mhp_core::ConfigError;

/// Geometry of a cache: total size, block size and associativity, all
/// powers of two.
///
/// # Examples
///
/// ```
/// use mhp_cache::CacheConfig;
/// let config = CacheConfig::new(32 * 1024, 64, 4)?; // 32 KB, 64 B blocks, 4-way
/// assert_eq!(config.sets(), 128);
/// # Ok::<(), mhp_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    size_bytes: usize,
    block_bytes: usize,
    associativity: usize,
}

impl CacheConfig {
    /// Creates a geometry. All three parameters must be powers of two, the
    /// block must fit the cache, and `size = sets * ways * block` must have
    /// at least one set.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EntriesNotPowerOfTwo`] on a non-power-of-two
    /// or inconsistent geometry.
    pub fn new(
        size_bytes: usize,
        block_bytes: usize,
        associativity: usize,
    ) -> Result<Self, ConfigError> {
        for v in [size_bytes, block_bytes, associativity] {
            if v == 0 || !v.is_power_of_two() {
                return Err(ConfigError::EntriesNotPowerOfTwo(v));
            }
        }
        if block_bytes * associativity > size_bytes {
            return Err(ConfigError::EntriesNotPowerOfTwo(size_bytes));
        }
        Ok(CacheConfig {
            size_bytes,
            block_bytes,
            associativity,
        })
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Block (line) size in bytes.
    #[inline]
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Ways per set.
    #[inline]
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.block_bytes * self.associativity)
    }

    /// The block address (address divided by block size) of `addr`.
    #[inline]
    pub fn block_of(&self, addr: u64) -> u64 {
        addr / self.block_bytes as u64
    }
}

/// The outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The block was resident.
    Hit,
    /// The block was fetched; `evicted` names the displaced block, if the
    /// set was full.
    Miss {
        /// Block address displaced by the fill, if any.
        evicted: Option<u64>,
    },
}

impl AccessOutcome {
    /// Returns `true` for a miss.
    #[inline]
    pub fn is_miss(&self) -> bool {
        matches!(self, AccessOutcome::Miss { .. })
    }
}

/// Running hit/miss statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]` (0 for no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}%)",
            self.accesses,
            self.misses,
            self.miss_ratio() * 100.0
        )
    }
}

/// One set: resident block addresses in LRU order (front = most recent).
#[derive(Debug, Clone, Default)]
struct Set {
    blocks: Vec<u64>,
}

/// A set-associative, LRU-replacement data cache.
///
/// # Examples
///
/// ```
/// use mhp_cache::{Cache, CacheConfig};
/// let mut cache = Cache::new(CacheConfig::new(1024, 64, 2).unwrap());
/// assert!(cache.access(0x1000).is_miss());
/// assert!(!cache.access(0x1004).is_miss()); // same 64-byte block
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Set>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (cold) cache.
    pub fn new(config: CacheConfig) -> Self {
        Cache {
            sets: vec![Set::default(); config.sets()],
            config,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    #[inline]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Running statistics.
    #[inline]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Accesses byte address `addr`, updating LRU state and statistics.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        let block = self.config.block_of(addr);
        let set_idx = (block % self.config.sets() as u64) as usize;
        let ways = self.config.associativity();
        let set = &mut self.sets[set_idx];
        self.stats.accesses += 1;
        if let Some(pos) = set.blocks.iter().position(|&b| b == block) {
            // Hit: move to MRU position.
            set.blocks.remove(pos);
            set.blocks.insert(0, block);
            return AccessOutcome::Hit;
        }
        self.stats.misses += 1;
        let evicted = if set.blocks.len() == ways {
            set.blocks.pop()
        } else {
            None
        };
        set.blocks.insert(0, block);
        AccessOutcome::Miss { evicted }
    }

    /// Installs the block containing `addr` without counting an access — a
    /// prefetch fill. The block becomes MRU in its set; if it is already
    /// resident nothing changes. Returns `true` if a fill actually happened.
    pub fn fill(&mut self, addr: u64) -> bool {
        let block = self.config.block_of(addr);
        let set_idx = (block % self.config.sets() as u64) as usize;
        let ways = self.config.associativity();
        let set = &mut self.sets[set_idx];
        if set.blocks.contains(&block) {
            return false;
        }
        if set.blocks.len() == ways {
            set.blocks.pop();
        }
        set.blocks.insert(0, block);
        true
    }

    /// Returns `true` if the block containing `addr` is resident (without
    /// touching LRU state or statistics).
    pub fn probe(&self, addr: u64) -> bool {
        let block = self.config.block_of(addr);
        let set_idx = (block % self.config.sets() as u64) as usize;
        self.sets[set_idx].blocks.contains(&block)
    }

    /// Empties the cache and zeroes statistics.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.blocks.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig::new(512, 64, 2).unwrap())
    }

    #[test]
    fn geometry_is_validated() {
        assert!(CacheConfig::new(0, 64, 2).is_err());
        assert!(CacheConfig::new(1000, 64, 2).is_err());
        assert!(CacheConfig::new(512, 48, 2).is_err());
        assert!(
            CacheConfig::new(64, 64, 2).is_err(),
            "2 ways of 64B exceed 64B"
        );
        let c = CacheConfig::new(32 * 1024, 64, 4).unwrap();
        assert_eq!(c.sets(), 128);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert!(c.access(0x100).is_miss());
        assert_eq!(c.access(0x100), AccessOutcome::Hit);
        assert_eq!(c.access(0x13F), AccessOutcome::Hit, "same block");
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_the_least_recent_way() {
        let mut c = tiny();
        // Three blocks mapping to set 0 (block % 4 == 0): blocks 0, 4, 8.
        let addr = |block: u64| block * 64;
        c.access(addr(0));
        c.access(addr(4));
        c.access(addr(0)); // 0 becomes MRU; LRU is 4
        let outcome = c.access(addr(8));
        assert_eq!(outcome, AccessOutcome::Miss { evicted: Some(4) });
        assert!(c.probe(addr(0)));
        assert!(!c.probe(addr(4)));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0); // set 0
        c.access(64); // set 1
        c.access(128); // set 2
        assert_eq!(c.stats().misses, 3);
        assert!(c.probe(0));
        assert!(c.probe(64));
        assert!(c.probe(128));
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let mut c = Cache::new(CacheConfig::new(4096, 64, 4).unwrap());
        let blocks = 4096 / 64;
        // Two full passes over a working set that exactly fits.
        for pass in 0..2 {
            for b in 0..blocks as u64 {
                let outcome = c.access(b * 64);
                if pass == 1 {
                    assert_eq!(outcome, AccessOutcome::Hit, "block {b} should be resident");
                }
            }
        }
        assert_eq!(c.stats().misses, blocks as u64);
    }

    #[test]
    fn thrashing_set_always_misses() {
        let mut c = tiny(); // 2 ways
        let addr = |block: u64| block * 64;
        // Three conflicting blocks round-robin: every access misses after
        // warmup.
        for i in 0..30u64 {
            c.access(addr((i % 3) * 4)); // blocks 0, 4, 8 -> set 0
        }
        assert_eq!(
            c.stats().misses,
            30,
            "LRU round-robin over 3 blocks in 2 ways"
        );
    }

    #[test]
    fn fill_installs_without_counting_an_access() {
        let mut c = tiny();
        assert!(c.fill(0x100));
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.access(0x100), AccessOutcome::Hit, "prefetched block hits");
        assert!(!c.fill(0x100), "already resident");
    }

    #[test]
    fn fill_evicts_lru_when_the_set_is_full() {
        let mut c = tiny(); // 2 ways
        let addr = |block: u64| block * 64;
        c.access(addr(0));
        c.access(addr(4));
        c.fill(addr(8)); // set 0 full: evicts LRU block 0
        assert!(!c.probe(addr(0)));
        assert!(c.probe(addr(4)));
        assert!(c.probe(addr(8)));
    }

    #[test]
    fn clear_resets_contents_and_stats() {
        let mut c = tiny();
        c.access(0x100);
        c.clear();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.probe(0x100));
    }

    #[test]
    fn miss_ratio_is_well_defined() {
        let s = CacheStats {
            accesses: 0,
            misses: 0,
        };
        assert_eq!(s.miss_ratio(), 0.0);
        let s = CacheStats {
            accesses: 10,
            misses: 4,
        };
        assert!((s.miss_ratio() - 0.4).abs() < 1e-12);
        assert!(s.to_string().contains("40.00%"));
    }
}
