//! The sharded ingestion engine: hash-partitioned parallel profiling whose
//! merged output matches a single-threaded run.
//!
//! ## Topology
//!
//! ```text
//!              ┌──────────┐   bounded channel   ┌──────────────────┐
//!   events ──▶ │ dispatch │ ══════════════════▶ │ shard 0 profiler │ ─┐
//!              │  (hash-  │ ══════════════════▶ │ shard 1 profiler │ ─┤─▶ merge
//!              │ partition│        ...          │       ...        │ ─┘
//!              └──────────┘ ══════════════════▶ │ shard K profiler │
//!                                               └──────────────────┘
//! ```
//!
//! Three properties make the parallel run equivalent to the serial one:
//!
//! 1. **Tuple-stable partitioning** — the shard is a pure hash of the tuple,
//!    so every occurrence of a tuple lands on the *same* shard and no
//!    per-tuple count is ever split (see [`IntervalProfile::merge`]).
//! 2. **Global interval cuts** — shard profilers are built with
//!    [`IntervalConfig::with_external_cut`] and never end intervals on their
//!    own; the dispatcher counts the *global* event stream and broadcasts a
//!    cut every `interval_len` events. Without this, a shard receiving a
//!    disproportionate share would cut early and intervals would desync.
//! 3. **Deterministic merge** — each worker emits exactly one profile per
//!    cut, in order, and [`IntervalProfile::merge`] sums them.
//!
//! Batches never cross an interval boundary, so workers need no boundary
//! logic at all: observe the batch, cut on [`Msg::Cut`].

use std::fmt;
use std::str::FromStr;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::thread;
use std::time::{Duration, Instant};

use mhp_core::{
    ConfigError, EventProfiler, IntervalConfig, IntervalProfile, MultiHashConfig,
    MultiHashProfiler, PerfectProfiler, SingleHashConfig, SingleHashProfiler, Tuple,
};

use crate::error::Error;

/// Which profiler architecture each shard runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfilerSpec {
    /// The paper's multi-hash profiler (§6).
    MultiHash(MultiHashConfig),
    /// The single-table baseline (§5).
    SingleHash(SingleHashConfig),
    /// The exact reference profiler.
    Perfect,
}

impl ProfilerSpec {
    /// The spec's lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            ProfilerSpec::MultiHash(_) => "multi-hash",
            ProfilerSpec::SingleHash(_) => "single-hash",
            ProfilerSpec::Perfect => "perfect",
        }
    }

    /// Builds one profiler instance for this spec.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from the underlying constructor.
    pub fn build(
        &self,
        interval: IntervalConfig,
        seed: u64,
    ) -> Result<Box<dyn EventProfiler + Send>, ConfigError> {
        Ok(match self {
            ProfilerSpec::MultiHash(config) => {
                Box::new(MultiHashProfiler::new(interval, *config, seed)?)
            }
            ProfilerSpec::SingleHash(config) => {
                Box::new(SingleHashProfiler::new(interval, *config, seed)?)
            }
            ProfilerSpec::Perfect => Box::new(PerfectProfiler::new(interval)),
        })
    }
}

impl fmt::Display for ProfilerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ProfilerSpec {
    type Err = Error;

    /// Parses `multi-hash`, `single-hash` or `perfect`, each with the
    /// paper's best table configuration where one exists.
    fn from_str(s: &str) -> Result<Self, Error> {
        match s {
            "multi-hash" | "multihash" => Ok(ProfilerSpec::MultiHash(MultiHashConfig::best())),
            "single-hash" | "singlehash" => Ok(ProfilerSpec::SingleHash(SingleHashConfig::best())),
            "perfect" => Ok(ProfilerSpec::Perfect),
            _ => Err(Error::InvalidEngine(
                "unknown profiler (expected multi-hash, single-hash or perfect)",
            )),
        }
    }
}

/// Sizing of the sharded engine.
///
/// # Examples
///
/// ```
/// use mhp_pipeline::EngineConfig;
/// let config = EngineConfig::new(8).with_queue_capacity(32).with_batch_events(512);
/// assert_eq!(config.shards(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    shards: usize,
    queue_capacity: usize,
    batch_events: usize,
}

impl EngineConfig {
    /// Maximum shard count the engine will spawn threads for.
    pub const MAX_SHARDS: usize = 256;

    /// A config with `shards` shards and default queue/batch sizing
    /// (64-batch queues, 1024-event batches).
    pub fn new(shards: usize) -> Self {
        EngineConfig {
            shards,
            queue_capacity: 64,
            batch_events: 1024,
        }
    }

    /// Sets the per-shard queue capacity, in batches. Full queues apply
    /// backpressure to the dispatcher (counted in [`ShardStats::stalls`]).
    pub fn with_queue_capacity(mut self, batches: usize) -> Self {
        self.queue_capacity = batches;
        self
    }

    /// Sets how many events are coalesced into one channel message.
    pub fn with_batch_events(mut self, events: usize) -> Self {
        self.batch_events = events;
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Per-shard queue capacity, in batches.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Events per dispatched batch.
    pub fn batch_events(&self) -> usize {
        self.batch_events
    }

    fn validate(&self) -> Result<(), Error> {
        if self.shards == 0 {
            return Err(Error::InvalidEngine("shard count must be at least 1"));
        }
        if self.shards > Self::MAX_SHARDS {
            return Err(Error::InvalidEngine("shard count exceeds MAX_SHARDS"));
        }
        if self.queue_capacity == 0 {
            return Err(Error::InvalidEngine("queue capacity must be at least 1"));
        }
        if self.batch_events == 0 {
            return Err(Error::InvalidEngine("batch size must be at least 1"));
        }
        Ok(())
    }
}

/// Per-shard ingestion statistics, gathered by the dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Events routed to this shard.
    pub events: u64,
    /// Batches dispatched to this shard.
    pub batches: u64,
    /// Times the dispatcher found this shard's queue full and had to block —
    /// the backpressure signal.
    pub stalls: u64,
}

/// The result of one engine run: merged profiles plus throughput and
/// queue-depth statistics.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Merged interval profiles, one per completed global interval, equal in
    /// meaning to a single-threaded profiler's output.
    pub profiles: Vec<IntervalProfile>,
    /// Total events ingested (including a trailing partial interval).
    pub events: u64,
    /// Completed intervals.
    pub intervals: u64,
    /// Wall-clock time of the run (dispatch through merge).
    pub elapsed: Duration,
    /// Per-shard ingestion statistics.
    pub shards: Vec<ShardStats>,
}

impl EngineReport {
    /// Ingest throughput in events per second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Total dispatcher stalls across all shards.
    pub fn total_stalls(&self) -> u64 {
        self.shards.iter().map(|s| s.stalls).sum()
    }
}

/// Routes a tuple to its shard. Pure function of the tuple (never of arrival
/// order), which is what makes partitioning tuple-stable.
pub fn shard_of(tuple: Tuple, shards: usize) -> usize {
    debug_assert!(shards > 0);
    // splitmix64 finalizer over a pc/value mix: cheap and well distributed.
    let mut x = tuple.pc().as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ tuple.value().as_u64().rotate_left(32);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

enum Msg {
    /// Events for this shard; never spans a global interval boundary.
    Batch(Vec<Tuple>),
    /// The global interval ended: flush a profile.
    Cut,
}

/// The sharded streaming ingestion engine.
///
/// Construct one per (engine sizing, interval, profiler, seed) and feed it
/// an event stream with [`run`](Self::run) or
/// [`run_results`](Self::run_results). Every shard gets its own profiler
/// instance built from the same spec and seed; with one shard the run is
/// exactly the single-threaded computation.
///
/// # Examples
///
/// ```
/// use mhp_core::IntervalConfig;
/// use mhp_pipeline::{EngineConfig, ProfilerSpec, ShardedEngine};
/// use mhp_trace::{Benchmark, StreamKind, StreamSpec};
///
/// let interval = IntervalConfig::new(10_000, 0.01).unwrap();
/// let engine = ShardedEngine::new(
///     EngineConfig::new(4),
///     interval,
///     ProfilerSpec::Perfect,
///     0xC0FFEE,
/// );
/// let events = StreamSpec::new(Benchmark::Li, StreamKind::Value, 7).events();
/// let report = engine.run(events.take(25_000)).unwrap();
/// assert_eq!(report.intervals, 2);
/// assert_eq!(report.events, 25_000);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    config: EngineConfig,
    interval: IntervalConfig,
    spec: ProfilerSpec,
    seed: u64,
}

impl ShardedEngine {
    /// Creates an engine. Configuration is validated lazily at
    /// [`run`](Self::run) time.
    pub fn new(
        config: EngineConfig,
        interval: IntervalConfig,
        spec: ProfilerSpec,
        seed: u64,
    ) -> Self {
        ShardedEngine {
            config,
            interval,
            spec,
            seed,
        }
    }

    /// The engine sizing.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Ingests an infallible event stream. See [`run_results`](Self::run_results).
    pub fn run<I>(&self, events: I) -> Result<EngineReport, Error>
    where
        I: IntoIterator<Item = Tuple>,
    {
        self.run_results(events.into_iter().map(Ok))
    }

    /// Ingests a fallible event stream (e.g. a [`TraceReader`]) through the
    /// sharded topology and returns the merged report.
    ///
    /// A trailing partial interval is ingested but produces no profile,
    /// matching [`EventProfiler::observe_all`] on a single thread.
    ///
    /// # Errors
    ///
    /// The first stream error aborts the run and is returned; engine
    /// misconfiguration yields [`Error::InvalidEngine`]; merge failures
    /// (which indicate an engine bug, not user error) yield [`Error::Merge`].
    ///
    /// [`TraceReader`]: crate::TraceReader
    pub fn run_results<I>(&self, events: I) -> Result<EngineReport, Error>
    where
        I: IntoIterator<Item = Result<Tuple, Error>>,
    {
        self.config.validate()?;
        let shards = self.config.shards();
        let shard_interval = self.interval.with_external_cut();
        let mut profilers = Vec::with_capacity(shards);
        for _ in 0..shards {
            profilers.push(self.spec.build(shard_interval, self.seed)?);
        }

        let started = Instant::now();
        let mut stats = vec![ShardStats::default(); shards];
        let mut events_total = 0u64;
        let mut intervals = 0u64;
        let interval_len = self.interval.interval_len();
        let batch_cap = self.config.batch_events();

        let per_shard_profiles =
            thread::scope(|scope| -> Result<Vec<Vec<IntervalProfile>>, Error> {
                let mut senders: Vec<SyncSender<Msg>> = Vec::with_capacity(shards);
                let mut handles = Vec::with_capacity(shards);
                for profiler in profilers {
                    let (tx, rx) = std::sync::mpsc::sync_channel(self.config.queue_capacity());
                    senders.push(tx);
                    handles.push(scope.spawn(move || shard_worker(profiler, rx)));
                }

                let mut batches: Vec<Vec<Tuple>> =
                    (0..shards).map(|_| Vec::with_capacity(batch_cap)).collect();
                let mut in_interval = 0u64;
                let mut stream_error = None;

                for item in events {
                    let tuple = match item {
                        Ok(tuple) => tuple,
                        Err(e) => {
                            stream_error = Some(e);
                            break;
                        }
                    };
                    let shard = shard_of(tuple, shards);
                    batches[shard].push(tuple);
                    stats[shard].events += 1;
                    events_total += 1;
                    in_interval += 1;
                    if batches[shard].len() >= batch_cap {
                        dispatch(
                            &senders[shard],
                            &mut stats[shard],
                            Msg::Batch(std::mem::replace(
                                &mut batches[shard],
                                Vec::with_capacity(batch_cap),
                            )),
                        );
                    }
                    if in_interval == interval_len {
                        // Global boundary: flush everything, then broadcast the cut.
                        for shard in 0..shards {
                            if !batches[shard].is_empty() {
                                dispatch(
                                    &senders[shard],
                                    &mut stats[shard],
                                    Msg::Batch(std::mem::replace(
                                        &mut batches[shard],
                                        Vec::with_capacity(batch_cap),
                                    )),
                                );
                            }
                            dispatch(&senders[shard], &mut stats[shard], Msg::Cut);
                        }
                        intervals += 1;
                        in_interval = 0;
                    }
                }

                // Trailing partial interval: deliver the events (they count
                // toward throughput) but cut no profile.
                for shard in 0..shards {
                    if !batches[shard].is_empty() {
                        let batch = std::mem::take(&mut batches[shard]);
                        dispatch(&senders[shard], &mut stats[shard], Msg::Batch(batch));
                    }
                }
                drop(senders);

                let mut per_shard = Vec::with_capacity(shards);
                for handle in handles {
                    per_shard.push(handle.join().expect("shard worker panicked"));
                }
                match stream_error {
                    Some(e) => Err(e),
                    None => Ok(per_shard),
                }
            })?;

        let mut profiles = Vec::with_capacity(intervals as usize);
        for interval_idx in 0..intervals as usize {
            let parts = per_shard_profiles
                .iter()
                .map(|shard| shard[interval_idx].clone());
            profiles.push(IntervalProfile::merge(parts)?);
        }

        Ok(EngineReport {
            profiles,
            events: events_total,
            intervals,
            elapsed: started.elapsed(),
            shards: stats,
        })
    }
}

/// Sends a message, preferring the non-blocking path; a full queue counts
/// one stall and falls back to a blocking send.
fn dispatch(sender: &SyncSender<Msg>, stats: &mut ShardStats, msg: Msg) {
    if let Msg::Batch(_) = &msg {
        stats.batches += 1;
    }
    match sender.try_send(msg) {
        Ok(()) => {}
        Err(TrySendError::Full(msg)) => {
            stats.stalls += 1;
            sender
                .send(msg)
                .expect("shard worker hung up with queue full");
        }
        Err(TrySendError::Disconnected(_)) => {
            // The worker is gone; its panic is re-raised at join.
        }
    }
}

fn shard_worker(
    mut profiler: Box<dyn EventProfiler + Send>,
    rx: Receiver<Msg>,
) -> Vec<IntervalProfile> {
    let mut profiles = Vec::new();
    for msg in rx {
        match msg {
            Msg::Batch(batch) => {
                for tuple in batch {
                    // External-cut profilers never complete an interval on
                    // their own.
                    let emitted = profiler.observe(tuple);
                    debug_assert!(emitted.is_none());
                    drop(emitted);
                }
            }
            Msg::Cut => profiles.push(profiler.finish_interval()),
        }
    }
    profiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhp_trace::{Benchmark, StreamKind, StreamSpec};

    fn li_events(n: usize) -> impl Iterator<Item = Tuple> {
        StreamSpec::new(Benchmark::Li, StreamKind::Value, 7)
            .events()
            .take(n)
    }

    #[test]
    fn shard_routing_is_tuple_stable_and_in_range() {
        for tuple in li_events(2_000) {
            let shard = shard_of(tuple, 8);
            assert!(shard < 8);
            assert_eq!(shard, shard_of(tuple, 8));
        }
        assert!(li_events(2_000).all(|t| shard_of(t, 1) == 0));
    }

    #[test]
    fn shard_routing_spreads_load() {
        let mut counts = [0u64; 8];
        for tuple in li_events(20_000) {
            counts[shard_of(tuple, 8)] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(count > 500, "shard {shard} got only {count} events");
        }
    }

    #[test]
    fn perfect_sharded_runs_match_single_threaded_exactly() {
        let interval = IntervalConfig::new(5_000, 0.01).unwrap();
        let mut reference = PerfectProfiler::new(interval);
        let expected = reference.observe_all(li_events(23_000));
        assert_eq!(expected.len(), 4);

        for shards in [1, 2, 4, 8] {
            let engine = ShardedEngine::new(
                EngineConfig::new(shards).with_batch_events(256),
                interval,
                ProfilerSpec::Perfect,
                0,
            );
            let report = engine.run(li_events(23_000)).unwrap();
            assert_eq!(report.profiles, expected, "{shards} shards");
            assert_eq!(report.events, 23_000);
            assert_eq!(report.intervals, 4);
            let dispatched: u64 = report.shards.iter().map(|s| s.events).sum();
            assert_eq!(dispatched, 23_000);
        }
    }

    #[test]
    fn single_shard_multi_hash_matches_single_threaded() {
        let interval = IntervalConfig::new(10_000, 0.01).unwrap();
        let config = MultiHashConfig::best();
        let mut reference = MultiHashProfiler::new(interval, config, 42).unwrap();
        let expected = reference.observe_all(li_events(30_000));

        let engine = ShardedEngine::new(
            EngineConfig::new(1),
            interval,
            ProfilerSpec::MultiHash(config),
            42,
        );
        let report = engine.run(li_events(30_000)).unwrap();
        assert_eq!(report.profiles, expected);
    }

    #[test]
    fn trailing_partial_interval_yields_no_profile() {
        let interval = IntervalConfig::new(1_000, 0.1).unwrap();
        let engine = ShardedEngine::new(EngineConfig::new(2), interval, ProfilerSpec::Perfect, 0);
        let report = engine.run(li_events(1_500)).unwrap();
        assert_eq!(report.intervals, 1);
        assert_eq!(report.profiles.len(), 1);
        assert_eq!(report.events, 1_500);
    }

    #[test]
    fn stream_errors_abort_the_run() {
        let interval = IntervalConfig::new(100, 0.1).unwrap();
        let engine = ShardedEngine::new(EngineConfig::new(2), interval, ProfilerSpec::Perfect, 0);
        let events = li_events(250)
            .map(Ok)
            .chain(std::iter::once(Err(Error::TrailingData)));
        let result = engine.run_results(events);
        assert!(matches!(result, Err(Error::TrailingData)));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let interval = IntervalConfig::new(100, 0.1).unwrap();
        for config in [
            EngineConfig::new(0),
            EngineConfig::new(EngineConfig::MAX_SHARDS + 1),
            EngineConfig::new(2).with_queue_capacity(0),
            EngineConfig::new(2).with_batch_events(0),
        ] {
            let engine = ShardedEngine::new(config, interval, ProfilerSpec::Perfect, 0);
            assert!(matches!(
                engine.run(li_events(10)),
                Err(Error::InvalidEngine(_))
            ));
        }
    }

    #[test]
    fn profiler_specs_parse_by_name() {
        assert!(matches!(
            "multi-hash".parse::<ProfilerSpec>(),
            Ok(ProfilerSpec::MultiHash(_))
        ));
        assert!(matches!(
            "single-hash".parse::<ProfilerSpec>(),
            Ok(ProfilerSpec::SingleHash(_))
        ));
        assert!(matches!(
            "perfect".parse::<ProfilerSpec>(),
            Ok(ProfilerSpec::Perfect)
        ));
        assert!("oracle".parse::<ProfilerSpec>().is_err());
    }

    #[test]
    fn report_computes_throughput_and_stalls() {
        let report = EngineReport {
            profiles: Vec::new(),
            events: 1_000,
            intervals: 0,
            elapsed: Duration::from_millis(100),
            shards: vec![
                ShardStats {
                    events: 600,
                    batches: 3,
                    stalls: 2,
                },
                ShardStats {
                    events: 400,
                    batches: 2,
                    stalls: 1,
                },
            ],
        };
        assert!((report.events_per_sec() - 10_000.0).abs() < 1.0);
        assert_eq!(report.total_stalls(), 3);
    }
}
