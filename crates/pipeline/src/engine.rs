//! The sharded ingestion engine: hash-partitioned parallel profiling whose
//! merged output matches a single-threaded run.
//!
//! ## Topology
//!
//! ```text
//!              ┌──────────┐   SPSC batch rings   ┌──────────────────┐
//!   events ──▶ │ dispatch │ ═══════════════════▶ │ shard 0 profiler │ ─┐
//!              │  (hash-  │ ═══════════════════▶ │ shard 1 profiler │ ─┤─▶ merge
//!              │ partition│ ◀─ scratch recycle ─ │       ...        │ ─┘
//!              └──────────┘ ═══════════════════▶ │ shard K profiler │
//!                                                └──────────────────┘
//! ```
//!
//! ## The dispatch plane
//!
//! Each shard gets a dedicated pair of single-producer/single-consumer
//! rings ([`crate::ring`]): one carries whole sub-batches of events to the
//! worker, the other carries the emptied `Vec<Tuple>` scratch buffers back
//! to the dispatcher. The steady state is therefore allocation-free — every
//! batch buffer cycles dispatcher → worker → dispatcher — and the per-event
//! cost of the handoff is one ring operation amortized over a whole batch.
//! Chunked ingest ([`EngineSession::ingest_chunk`]) partitions *while*
//! decoding: records are routed into per-shard sub-batches straight out of
//! the varint decoder instead of being materialized in one flat buffer and
//! re-scanned.
//!
//! Three properties make the parallel run equivalent to the serial one:
//!
//! 1. **Tuple-stable partitioning** — the shard is a pure hash of the tuple,
//!    so every occurrence of a tuple lands on the *same* shard and no
//!    per-tuple count is ever split (see [`IntervalProfile::merge`]).
//! 2. **Global interval cuts** — shard profilers are built with
//!    [`IntervalConfig::with_external_cut`] and never end intervals on their
//!    own; the dispatcher counts the *global* event stream and broadcasts a
//!    cut every `interval_len` events. Without this, a shard receiving a
//!    disproportionate share would cut early and intervals would desync.
//! 3. **Deterministic merge** — each worker emits exactly one profile per
//!    cut, in order, and [`IntervalProfile::merge`] sums them.
//!
//! Batches never cross an interval boundary, so workers need no boundary
//! logic at all: observe the batch, cut on [`Msg::Cut`].

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use mhp_core::state::KIND_ENGINE_SESSION;
use mhp_core::{
    Candidate, ConfigError, EventProfiler, IntervalConfig, IntervalProfile, IntrospectionSink,
    MultiHashConfig, MultiHashProfiler, PerfectProfiler, SingleHashConfig, SingleHashProfiler,
    SnapshotError, SnapshotReader, SnapshotWriter, Tuple,
};
use mhp_faults::{FaultHook, WorkerAction};
use mhp_telemetry::Gauge;

use crate::error::Error;
use crate::format::ChunkDecoder;
use crate::ring;
use crate::telemetry::EngineTelemetry;

/// Which profiler architecture each shard runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfilerSpec {
    /// The paper's multi-hash profiler (§6).
    MultiHash(MultiHashConfig),
    /// The single-table baseline (§5).
    SingleHash(SingleHashConfig),
    /// The exact reference profiler.
    Perfect,
}

impl ProfilerSpec {
    /// The spec's lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            ProfilerSpec::MultiHash(_) => "multi-hash",
            ProfilerSpec::SingleHash(_) => "single-hash",
            ProfilerSpec::Perfect => "perfect",
        }
    }

    /// Builds one profiler instance for this spec.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from the underlying constructor.
    pub fn build(
        &self,
        interval: IntervalConfig,
        seed: u64,
    ) -> Result<Box<dyn EventProfiler + Send>, ConfigError> {
        Ok(match self {
            ProfilerSpec::MultiHash(config) => {
                Box::new(MultiHashProfiler::new(interval, *config, seed)?)
            }
            ProfilerSpec::SingleHash(config) => {
                Box::new(SingleHashProfiler::new(interval, *config, seed)?)
            }
            ProfilerSpec::Perfect => Box::new(PerfectProfiler::new(interval)),
        })
    }
}

impl fmt::Display for ProfilerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ProfilerSpec {
    type Err = Error;

    /// Parses `multi-hash`, `single-hash` or `perfect`, each with the
    /// paper's best table configuration where one exists.
    fn from_str(s: &str) -> Result<Self, Error> {
        match s {
            "multi-hash" | "multihash" => Ok(ProfilerSpec::MultiHash(MultiHashConfig::best())),
            "single-hash" | "singlehash" => Ok(ProfilerSpec::SingleHash(SingleHashConfig::best())),
            "perfect" => Ok(ProfilerSpec::Perfect),
            _ => Err(Error::InvalidEngine(
                "unknown profiler (expected multi-hash, single-hash or perfect)",
            )),
        }
    }
}

/// Sizing of the sharded engine.
///
/// # Examples
///
/// ```
/// use mhp_pipeline::EngineConfig;
/// let config = EngineConfig::new(8).with_queue_capacity(32).with_batch_events(512);
/// assert_eq!(config.shards(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    shards: usize,
    queue_capacity: usize,
    batch_events: usize,
}

impl EngineConfig {
    /// Maximum shard count the engine will spawn threads for.
    pub const MAX_SHARDS: usize = 256;

    /// A config with `shards` shards and default queue/batch sizing
    /// (64-batch queues, 1024-event batches).
    pub fn new(shards: usize) -> Self {
        EngineConfig {
            shards,
            queue_capacity: 64,
            batch_events: 1024,
        }
    }

    /// Sets the per-shard queue capacity, in batches. Full queues apply
    /// backpressure to the dispatcher (counted in [`ShardStats::stalls`]).
    pub fn with_queue_capacity(mut self, batches: usize) -> Self {
        self.queue_capacity = batches;
        self
    }

    /// Sets how many events are coalesced into one channel message.
    pub fn with_batch_events(mut self, events: usize) -> Self {
        self.batch_events = events;
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Per-shard queue capacity, in batches.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Events per dispatched batch.
    pub fn batch_events(&self) -> usize {
        self.batch_events
    }

    fn validate(&self) -> Result<(), Error> {
        if self.shards == 0 {
            return Err(Error::InvalidEngine("shard count must be at least 1"));
        }
        if self.shards > Self::MAX_SHARDS {
            return Err(Error::InvalidEngine("shard count exceeds MAX_SHARDS"));
        }
        if self.queue_capacity == 0 {
            return Err(Error::InvalidEngine("queue capacity must be at least 1"));
        }
        if self.batch_events == 0 {
            return Err(Error::InvalidEngine("batch size must be at least 1"));
        }
        Ok(())
    }
}

/// Per-shard ingestion statistics, gathered by the dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Events routed to this shard.
    pub events: u64,
    /// Batches dispatched to this shard.
    pub batches: u64,
    /// Times the dispatcher found this shard's queue full and had to block —
    /// the backpressure signal.
    pub stalls: u64,
}

/// The result of one engine run: merged profiles plus throughput and
/// queue-depth statistics.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Merged interval profiles, one per completed global interval, equal in
    /// meaning to a single-threaded profiler's output.
    pub profiles: Vec<IntervalProfile>,
    /// Total events ingested (including a trailing partial interval).
    pub events: u64,
    /// Completed intervals.
    pub intervals: u64,
    /// Wall-clock time of the run (dispatch through merge).
    pub elapsed: Duration,
    /// Per-shard ingestion statistics.
    pub shards: Vec<ShardStats>,
}

impl EngineReport {
    /// Ingest throughput in events per second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Total dispatcher stalls across all shards.
    pub fn total_stalls(&self) -> u64 {
        self.shards.iter().map(|s| s.stalls).sum()
    }
}

/// Routes a tuple to its shard. Pure function of the tuple (never of arrival
/// order), which is what makes partitioning tuple-stable.
pub fn shard_of(tuple: Tuple, shards: usize) -> usize {
    debug_assert!(shards > 0);
    // splitmix64 finalizer over a pc/value mix: cheap and well distributed.
    let mut x = tuple.pc().as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ tuple.value().as_u64().rotate_left(32);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

enum Msg {
    /// Events for this shard; never spans a global interval boundary.
    Batch(Vec<Tuple>),
    /// The global interval ended: flush a profile to the worker's profile
    /// channel.
    Cut,
    /// Report the shard's hottest live tuples (its current partial
    /// interval) on the reply channel, without disturbing any state.
    TopK(usize, Sender<Vec<Candidate>>),
    /// Serialize the shard profiler's full state on the reply channel,
    /// without disturbing it. Acts as a barrier: every batch dispatched
    /// before this message is in the snapshot, none after.
    SaveState(Sender<Result<Vec<u8>, SnapshotError>>),
}

/// The sharded streaming ingestion engine.
///
/// Construct one per (engine sizing, interval, profiler, seed) and feed it
/// an event stream with [`run`](Self::run) or
/// [`run_results`](Self::run_results). Every shard gets its own profiler
/// instance built from the same spec and seed; with one shard the run is
/// exactly the single-threaded computation.
///
/// # Examples
///
/// ```
/// use mhp_core::IntervalConfig;
/// use mhp_pipeline::{EngineConfig, ProfilerSpec, ShardedEngine};
/// use mhp_trace::{Benchmark, StreamKind, StreamSpec};
///
/// let interval = IntervalConfig::new(10_000, 0.01).unwrap();
/// let engine = ShardedEngine::new(
///     EngineConfig::new(4),
///     interval,
///     ProfilerSpec::Perfect,
///     0xC0FFEE,
/// );
/// let events = StreamSpec::new(Benchmark::Li, StreamKind::Value, 7).events();
/// let report = engine.run(events.take(25_000)).unwrap();
/// assert_eq!(report.intervals, 2);
/// assert_eq!(report.events, 25_000);
/// ```
#[derive(Clone)]
pub struct ShardedEngine {
    config: EngineConfig,
    interval: IntervalConfig,
    spec: ProfilerSpec,
    seed: u64,
    telemetry: Option<EngineTelemetry>,
    sink: Option<Arc<dyn IntrospectionSink>>,
    faults: Option<FaultHook>,
}

impl fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("config", &self.config)
            .field("interval", &self.interval)
            .field("spec", &self.spec)
            .field("seed", &self.seed)
            .field("telemetry", &self.telemetry.is_some())
            .field("sink", &self.sink.is_some())
            .field("faults", &self.faults.is_some())
            .finish()
    }
}

impl ShardedEngine {
    /// Creates an engine. Configuration is validated lazily at
    /// [`run`](Self::run) time.
    pub fn new(
        config: EngineConfig,
        interval: IntervalConfig,
        spec: ProfilerSpec,
        seed: u64,
    ) -> Self {
        ShardedEngine {
            config,
            interval,
            spec,
            seed,
            telemetry: None,
            sink: None,
            faults: None,
        }
    }

    /// Attaches engine metrics: every session this engine starts reports
    /// dispatch counters, batch-size and cut-latency histograms, and live
    /// per-shard queue-depth gauges through `telemetry`.
    pub fn with_telemetry(mut self, telemetry: EngineTelemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Installs an [`IntrospectionSink`] on every shard profiler this
    /// engine builds; each reports one
    /// [`SketchSnapshot`](mhp_core::SketchSnapshot) per interval cut.
    pub fn with_introspection_sink(mut self, sink: Arc<dyn IntrospectionSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Arms deterministic fault injection: every shard worker this engine
    /// spawns consults `hook` once per batch (panicking or stalling when a
    /// planned fault fires). Without a hook the workers pay only a `None`
    /// check per batch, keeping the machinery benchmark-neutral.
    pub fn with_fault_hook(mut self, hook: FaultHook) -> Self {
        self.faults = Some(hook);
        self
    }

    /// The engine sizing.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Ingests an infallible event stream. See [`run_results`](Self::run_results).
    pub fn run<I>(&self, events: I) -> Result<EngineReport, Error>
    where
        I: IntoIterator<Item = Tuple>,
    {
        self.run_results(events.into_iter().map(Ok))
    }

    /// Ingests a fallible event stream (e.g. a [`TraceReader`]) through the
    /// sharded topology and returns the merged report.
    ///
    /// A trailing partial interval is ingested but produces no profile,
    /// matching [`EventProfiler::observe_all`] on a single thread.
    ///
    /// # Errors
    ///
    /// The first stream error aborts the run and is returned; engine
    /// misconfiguration yields [`Error::InvalidEngine`]; merge failures
    /// (which indicate an engine bug, not user error) yield [`Error::Merge`].
    ///
    /// [`TraceReader`]: crate::TraceReader
    pub fn run_results<I>(&self, events: I) -> Result<EngineReport, Error>
    where
        I: IntoIterator<Item = Result<Tuple, Error>>,
    {
        let mut session = self.start()?;
        for item in events {
            if let Err(err) = session.push(item?) {
                // A push failure means a worker died; finish() joins the
                // workers and surfaces the panic itself (the root cause),
                // which outranks the send failure.
                return Err(session.finish().err().unwrap_or(err));
            }
        }
        session.finish()
    }

    /// Spawns the shard workers and returns a long-lived [`EngineSession`]
    /// accepting incremental pushes and mid-stream queries — the streaming
    /// counterpart of [`run`](Self::run) for callers (like a profiling
    /// service) whose event stream arrives over time.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidEngine`] for unusable sizing and
    /// [`Error::Config`] if the profiler spec rejects its configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use mhp_core::IntervalConfig;
    /// use mhp_pipeline::{EngineConfig, ProfilerSpec, ShardedEngine};
    /// use mhp_trace::{Benchmark, StreamKind, StreamSpec};
    ///
    /// # fn main() -> Result<(), mhp_pipeline::Error> {
    /// let interval = IntervalConfig::new(1_000, 0.01)?;
    /// let engine =
    ///     ShardedEngine::new(EngineConfig::new(2), interval, ProfilerSpec::Perfect, 0);
    /// let mut session = engine.start()?;
    /// let events: Vec<_> = StreamSpec::new(Benchmark::Gcc, StreamKind::Value, 1)
    ///     .events()
    ///     .take(2_500)
    ///     .collect();
    /// for chunk in events.chunks(100) {
    ///     session.push_all(chunk.iter().copied())?;
    /// }
    /// assert_eq!(session.profiles()?.len(), 2); // two full intervals so far
    /// let hot = session.top_k(5)?; // live view of the partial third interval
    /// assert!(!hot.is_empty());
    /// let report = session.finish()?;
    /// assert_eq!(report.events, 2_500);
    /// # Ok(())
    /// # }
    /// ```
    pub fn start(&self) -> Result<EngineSession, Error> {
        self.config.validate()?;
        let profilers = self.build_shard_profilers()?;
        Ok(EngineSession::spawn(
            &self.config,
            self.interval.interval_len(),
            profilers,
            self.telemetry.clone(),
            self.faults.clone(),
        ))
    }

    /// Rebuilds a live [`EngineSession`] from a snapshot taken by
    /// [`EngineSession::save_state`] on an identically-configured engine.
    ///
    /// The restored session is bit-equivalent to the one that saved:
    /// continuing the same event stream produces identical profiles,
    /// [`top_k`](EngineSession::top_k) answers and re-snapshots. The
    /// engine's spec, seed, shard count and interval must match the saving
    /// engine's; anything else is refused with a typed error before any
    /// worker thread is spawned.
    ///
    /// # Errors
    ///
    /// [`Error::Snapshot`] for a damaged, version-incompatible or
    /// configuration-mismatched snapshot; [`Error::InvalidEngine`] /
    /// [`Error::Config`] exactly as [`start`](Self::start).
    pub fn restore(&self, snapshot: &[u8]) -> Result<EngineSession, Error> {
        self.config.validate()?;
        let mut r = SnapshotReader::open(snapshot, KIND_ENGINE_SESSION)?;
        let shards = r.take_u64("shard count")?;
        if shards != self.config.shards() as u64 {
            return Err(SnapshotError::ConfigMismatch {
                context: "shard count",
            }
            .into());
        }
        let interval_len = r.take_u64("interval length")?;
        if interval_len != self.interval.interval_len() {
            return Err(SnapshotError::ConfigMismatch {
                context: "interval length",
            }
            .into());
        }
        let events = r.take_u64("event count")?;
        let in_interval = r.take_u64("events in interval")?;
        let mut stats = Vec::with_capacity(shards as usize);
        for _ in 0..shards {
            stats.push(ShardStats {
                events: r.take_u64("shard events")?,
                batches: r.take_u64("shard batches")?,
                stalls: r.take_u64("shard stalls")?,
            });
        }
        let profile_count = r.take_count(33, "completed profiles")?;
        let mut completed = Vec::with_capacity(profile_count);
        for _ in 0..profile_count {
            completed.push(take_profile(&mut r)?);
        }
        // Restore each shard's profiler *before* spawning any worker
        // thread, so a bad snapshot fails with nothing to clean up.
        let mut profilers = self.build_shard_profilers()?;
        for profiler in &mut profilers {
            let blob = r.take_bytes("shard profiler snapshot")?;
            profiler.restore_state(blob)?;
        }
        r.expect_end()?;

        let mut session = EngineSession::spawn(
            &self.config,
            interval_len,
            profilers,
            self.telemetry.clone(),
            self.faults.clone(),
        );
        session.events = events;
        session.in_interval = in_interval;
        session.stats = stats;
        session.completed = completed;
        Ok(session)
    }

    fn build_shard_profilers(&self) -> Result<Vec<Box<dyn EventProfiler + Send>>, Error> {
        let shard_interval = self.interval.with_external_cut();
        let mut profilers = (0..self.config.shards())
            .map(|_| self.spec.build(shard_interval, self.seed))
            .collect::<Result<Vec<_>, _>>()?;
        if let Some(sink) = &self.sink {
            for profiler in &mut profilers {
                profiler.set_introspection_sink(Some(sink.clone()));
            }
        }
        Ok(profilers)
    }
}

/// Serializes one completed [`IntervalProfile`] into an engine snapshot.
/// Delegates to the shared interchange codec in `mhp-core` so engine
/// snapshots, server checkpoints and aggregator state all speak one format.
fn put_profile(w: &mut SnapshotWriter, profile: &IntervalProfile) {
    mhp_core::put_profile(w, profile);
}

/// Reads back one [`IntervalProfile`] written by [`put_profile`].
fn take_profile(r: &mut SnapshotReader<'_>) -> Result<IntervalProfile, Error> {
    Ok(mhp_core::take_profile(r)?)
}

/// A live run of a [`ShardedEngine`]: shard workers stay up between calls,
/// events are [`push`](Self::push)ed incrementally, and the stream can be
/// queried while it is still flowing.
///
/// Semantics are identical to [`ShardedEngine::run`] fed the concatenation
/// of every push — that method is literally implemented on top of this type.
/// On top of batch-run behaviour a session supports:
///
/// * [`profiles`](Self::profiles) — merged profiles of the intervals
///   completed so far;
/// * [`top_k`](Self::top_k) — the hottest tuples of the *current partial*
///   interval, straight from the shard accumulators, without disturbing
///   profiler state;
/// * [`cut`](Self::cut) — force the global interval to end early.
///
/// Dropping a session without [`finish`](Self::finish)ing it shuts the
/// workers down and discards their output.
#[derive(Debug)]
pub struct EngineSession {
    senders: Vec<ring::Sender<Msg>>,
    /// Per-shard return path for emptied batch buffers: workers push their
    /// cleared `Vec<Tuple>`s back here, and the dispatcher reuses them
    /// instead of allocating — the steady state allocates nothing.
    recycle_rxs: Vec<ring::Receiver<Vec<Tuple>>>,
    profile_rxs: Vec<Receiver<IntervalProfile>>,
    handles: Vec<JoinHandle<()>>,
    batches: Vec<Vec<Tuple>>,
    stats: Vec<ShardStats>,
    /// Merged profiles of completed intervals, in order.
    completed: Vec<IntervalProfile>,
    /// Cuts broadcast to the workers but not yet collected and merged.
    pending_cuts: u64,
    events: u64,
    in_interval: u64,
    interval_len: u64,
    batch_cap: usize,
    started: Instant,
    telemetry: Option<EngineTelemetry>,
    /// Per-shard live queue-depth gauges (empty without telemetry). The
    /// dispatcher increments on send, the worker decrements on receipt.
    queue_gauges: Vec<Gauge>,
    /// Broadcast times of cuts not yet collected, for cut-latency metrics.
    cut_starts: VecDeque<Instant>,
    /// Time spent handing batches to shard rings (including blocking
    /// stalls) since the last [`take_handoff_time`](Self::take_handoff_time).
    handoff: Duration,
}

impl EngineSession {
    /// Spawns one worker thread per pre-built shard profiler.
    /// [`ShardedEngine::start`] builds the profilers from its spec; tests
    /// inject custom (e.g. panicking) profilers directly.
    fn spawn(
        config: &EngineConfig,
        interval_len: u64,
        profilers: Vec<Box<dyn EventProfiler + Send>>,
        telemetry: Option<EngineTelemetry>,
        faults: Option<FaultHook>,
    ) -> Self {
        let shards = profilers.len();
        let queue_gauges = telemetry
            .as_ref()
            .map(|t| t.queue_depth_gauges(shards))
            .unwrap_or_default();
        let mut senders = Vec::with_capacity(shards);
        let mut recycle_rxs = Vec::with_capacity(shards);
        let mut profile_rxs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for (shard, profiler) in profilers.into_iter().enumerate() {
            let (tx, rx) = ring::ring(config.queue_capacity());
            // Sized so the worker can always return a buffer: at most
            // queue_capacity are queued, one is in the worker's hands and
            // one is being filled by the dispatcher.
            let (recycle_tx, recycle_rx) = ring::ring(config.queue_capacity() + 2);
            let (profile_tx, profile_rx) = std::sync::mpsc::channel();
            let depth = queue_gauges.get(shard).cloned();
            let hook = faults.clone();
            senders.push(tx);
            recycle_rxs.push(recycle_rx);
            profile_rxs.push(profile_rx);
            handles.push(thread::spawn(move || {
                shard_worker(profiler, rx, recycle_tx, profile_tx, depth, hook)
            }));
        }
        let batch_cap = config.batch_events();
        EngineSession {
            senders,
            recycle_rxs,
            profile_rxs,
            handles,
            batches: (0..shards).map(|_| Vec::with_capacity(batch_cap)).collect(),
            stats: vec![ShardStats::default(); shards],
            completed: Vec::new(),
            pending_cuts: 0,
            events: 0,
            in_interval: 0,
            interval_len,
            batch_cap,
            started: Instant::now(),
            telemetry,
            queue_gauges,
            cut_starts: VecDeque::new(),
            handoff: Duration::ZERO,
        }
    }

    /// Ingests one event, cutting the global interval when it fills.
    ///
    /// # Errors
    ///
    /// [`Error::WorkerDied`] if the target shard's worker hung up (the
    /// worker's own panic, with its message, is reported by
    /// [`finish`](Self::finish)); [`Error::Merge`] if an interval cut this
    /// push triggered failed to merge.
    pub fn push(&mut self, tuple: Tuple) -> Result<(), Error> {
        let shard = shard_of(tuple, self.senders.len());
        self.batches[shard].push(tuple);
        self.stats[shard].events += 1;
        self.events += 1;
        self.in_interval += 1;
        if self.batches[shard].len() >= self.batch_cap {
            self.send_batch(shard)?;
        }
        if self.in_interval == self.interval_len {
            self.broadcast_cut()?;
        }
        Ok(())
    }

    /// Ingests a run of events. Equivalent to pushing each one.
    ///
    /// # Errors
    ///
    /// As [`push`](Self::push); the first failure aborts the run.
    pub fn push_all(&mut self, events: impl IntoIterator<Item = Tuple>) -> Result<(), Error> {
        for tuple in events {
            self.push(tuple)?;
        }
        Ok(())
    }

    /// Ingests a slice of events — the bulk form of [`push`](Self::push),
    /// and semantically identical to pushing each tuple in order.
    ///
    /// The slice is split into runs that never cross an interval boundary,
    /// so the interval bookkeeping moves out of the per-event loop and the
    /// inner loop is just route-and-append.
    ///
    /// # Errors
    ///
    /// As [`push`](Self::push); the first failure aborts the run.
    pub fn push_slice(&mut self, events: &[Tuple]) -> Result<(), Error> {
        let shards = self.senders.len();
        let mut rest = events;
        while !rest.is_empty() {
            let until_cut =
                usize::try_from(self.interval_len - self.in_interval).unwrap_or(usize::MAX);
            let take = rest.len().min(until_cut);
            let (run, tail) = rest.split_at(take);
            for &tuple in run {
                let shard = shard_of(tuple, shards);
                self.stats[shard].events += 1;
                self.batches[shard].push(tuple);
                if self.batches[shard].len() >= self.batch_cap {
                    self.send_batch(shard)?;
                }
            }
            self.events += take as u64;
            self.in_interval += take as u64;
            if self.in_interval == self.interval_len {
                self.broadcast_cut()?;
            }
            rest = tail;
        }
        Ok(())
    }

    /// Ingests one encoded trace chunk (as produced by
    /// [`encode_chunk`](crate::encode_chunk) or a [`TraceWriter`] flush),
    /// partitioning records into per-shard batches *while* decoding, and
    /// returns the bytes consumed — exactly what
    /// [`decode_chunk_into`](crate::decode_chunk_into) would have returned.
    ///
    /// Equivalent to decoding the chunk and [`push_all`](Self::push_all)ing
    /// the result, but without materializing the chunk in one flat buffer
    /// and re-scanning it: each record goes straight from the varint
    /// decoder into its shard's batch. The chunk header and payload CRC are
    /// verified before any record is ingested, so a corrupt chunk is
    /// rejected whole; a record-level decode error mid-chunk (which the
    /// CRC makes practically unreachable) leaves the prefix ingested —
    /// callers that must reconcile can diff [`events`](Self::events)
    /// around the call, and protocol layers that need the buffer to be
    /// exactly one chunk should pre-check its length with
    /// [`declared_chunk_len`](crate::declared_chunk_len) so their error
    /// fires before anything is applied.
    ///
    /// # Errors
    ///
    /// Any [`decode_chunk_into`](crate::decode_chunk_into) decode error,
    /// plus [`push`](Self::push)'s dispatch errors.
    pub fn ingest_chunk(&mut self, chunk: &[u8]) -> Result<usize, Error> {
        let shards = self.senders.len();
        let mut decoder = ChunkDecoder::open(chunk)?;
        while decoder.remaining() > 0 {
            let until_cut =
                usize::try_from(self.interval_len - self.in_interval).unwrap_or(usize::MAX);
            // Clip each sub-run at the batch cap too, so batches flush close
            // to their target size (a shard batch can exceed the cap by at
            // most one sub-run before the flush check below catches it).
            let want = until_cut.min(self.batch_cap);
            let batches = &mut self.batches;
            let stats = &mut self.stats;
            let decoded = decoder.decode_some(want, |tuple| {
                let shard = shard_of(tuple, shards);
                stats[shard].events += 1;
                batches[shard].push(tuple);
            })?;
            self.events += decoded as u64;
            self.in_interval += decoded as u64;
            for shard in 0..shards {
                if self.batches[shard].len() >= self.batch_cap {
                    self.send_batch(shard)?;
                }
            }
            if self.in_interval == self.interval_len {
                self.broadcast_cut()?;
            }
        }
        decoder.finish()?;
        Ok(decoder.consumed())
    }

    /// Forces the global interval to end now and returns its merged profile.
    ///
    /// Subsequent events start a fresh interval, so forced cuts shift later
    /// interval boundaries — that is the point. With no events in the
    /// current interval this is a no-op returning `None` (profilers emit no
    /// empty profiles).
    ///
    /// # Errors
    ///
    /// [`Error::Merge`] if per-shard profiles failed to merge, which
    /// indicates an engine bug rather than user error.
    pub fn cut(&mut self) -> Result<Option<IntervalProfile>, Error> {
        if self.in_interval == 0 {
            return Ok(None);
        }
        self.broadcast_cut()?;
        self.collect_cuts()?;
        Ok(self.completed.last().cloned())
    }

    /// The merged profiles of every interval completed so far, in order.
    ///
    /// # Errors
    ///
    /// [`Error::Merge`] on a shard-merge failure (an engine bug).
    pub fn profiles(&mut self) -> Result<&[IntervalProfile], Error> {
        self.collect_cuts()?;
        Ok(&self.completed)
    }

    /// The hottest `k` tuples of the current *partial* interval, merged
    /// across shards — a live view of the accumulators, computed without
    /// disturbing any profiler state. Hottest first, ties broken by tuple.
    ///
    /// Counts are whatever each shard's profiler architecture tracks: exact
    /// for the perfect profiler, accumulator counts for the hash profilers.
    ///
    /// # Errors
    ///
    /// [`Error::WorkerDied`] if a shard worker died without answering.
    pub fn top_k(&mut self, k: usize) -> Result<Vec<Candidate>, Error> {
        self.flush_batches()?;
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        for shard in 0..self.senders.len() {
            self.dispatch_msg(shard, Msg::TopK(k, reply_tx.clone()))?;
        }
        drop(reply_tx);
        let mut pairs: Vec<(Tuple, u64)> = Vec::new();
        for shard in 0..self.senders.len() {
            let answer = reply_rx.recv().map_err(|_| Error::WorkerDied { shard })?;
            // Tuple-stable partitioning: no tuple appears on two shards, so
            // concatenation (not summation) is the correct combine.
            pairs.extend(answer.into_iter().map(|c| (c.tuple, c.count)));
        }
        Ok(mhp_core::top_k_by_count(pairs, k)
            .into_iter()
            .map(|(tuple, count)| Candidate::new(tuple, count))
            .collect())
    }

    /// Serializes the session's complete state — every shard profiler,
    /// the merged profiles completed so far, the interval position and the
    /// dispatch statistics — into one versioned, CRC-guarded snapshot that
    /// [`ShardedEngine::restore`] turns back into a live session.
    ///
    /// Acts as a barrier: pending batches are flushed and pending cuts
    /// merged first, so the snapshot reflects exactly the events pushed
    /// before the call. The session keeps running afterwards; saving twice
    /// with no pushes in between produces identical bytes.
    ///
    /// # Errors
    ///
    /// [`Error::WorkerDied`] if a shard worker died before answering;
    /// [`Error::Snapshot`] if a shard profiler cannot snapshot itself
    /// (e.g. a custom profiler without snapshot support); [`Error::Merge`]
    /// on a shard-merge failure while draining pending cuts.
    pub fn save_state(&mut self) -> Result<Vec<u8>, Error> {
        self.flush_batches()?;
        self.collect_cuts()?;
        // One reply channel per shard keeps the blobs in shard order no
        // matter which worker answers first.
        let mut replies = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (tx, rx) = std::sync::mpsc::channel();
            self.dispatch_msg(shard, Msg::SaveState(tx))?;
            replies.push(rx);
        }
        let mut blobs = Vec::with_capacity(replies.len());
        for (shard, rx) in replies.into_iter().enumerate() {
            blobs.push(rx.recv().map_err(|_| Error::WorkerDied { shard })??);
        }
        let mut w = SnapshotWriter::new(KIND_ENGINE_SESSION);
        w.put_u64(self.senders.len() as u64);
        w.put_u64(self.interval_len);
        w.put_u64(self.events);
        w.put_u64(self.in_interval);
        for stats in &self.stats {
            w.put_u64(stats.events);
            w.put_u64(stats.batches);
            w.put_u64(stats.stalls);
        }
        w.put_u64(self.completed.len() as u64);
        for profile in &self.completed {
            put_profile(&mut w, profile);
        }
        for blob in &blobs {
            w.put_bytes(blob);
        }
        Ok(w.finish())
    }

    /// Events ingested so far (including the current partial interval).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Intervals completed so far.
    pub fn intervals(&self) -> u64 {
        self.pending_cuts + self.completed.len() as u64
    }

    /// Events in the current (incomplete) interval.
    pub fn in_interval(&self) -> u64 {
        self.in_interval
    }

    /// Per-shard ingestion statistics so far.
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.stats
    }

    /// Rough estimate of the session's resident memory, in bytes.
    ///
    /// Counts the retained merged profiles (24 bytes per candidate plus
    /// per-profile overhead), buffered batches, and a fixed per-shard charge
    /// for the worker-side sketch and accumulator state. This is an
    /// accounting figure for admission control and LRU eviction (see
    /// `mhp-server`'s session memory budget), not an allocator measurement:
    /// it is cheap, monotone in the real footprint, and stable across calls
    /// when the session is idle. Profiles still buffered inside workers
    /// (pending cuts) are not counted until collected.
    pub fn approx_memory_bytes(&self) -> u64 {
        const PER_SHARD_BYTES: u64 = 64 * 1024;
        const PER_PROFILE_BYTES: u64 = 128;
        const PER_CANDIDATE_BYTES: u64 = 24;
        let shards = self.senders.len() as u64;
        let profiles: u64 = self
            .completed
            .iter()
            .map(|p| PER_PROFILE_BYTES + PER_CANDIDATE_BYTES * p.len() as u64)
            .sum();
        let batches: u64 = self.batches.iter().map(|b| 16 * b.capacity() as u64).sum();
        shards * PER_SHARD_BYTES + profiles + batches
    }

    /// Drains the stream: flushes a trailing partial interval's events
    /// (they count toward throughput but cut no profile), stops the
    /// workers, and returns the merged [`EngineReport`].
    ///
    /// # Errors
    ///
    /// [`Error::WorkerPanicked`] (with the panic message) if any shard
    /// worker panicked during the run; [`Error::Merge`] on a shard-merge
    /// failure (an engine bug).
    pub fn finish(mut self) -> Result<EngineReport, Error> {
        let flushed = self.flush_batches();
        for sender in std::mem::take(&mut self.senders) {
            drop(sender);
        }
        let mut worker_panic = None;
        for (shard, handle) in std::mem::take(&mut self.handles).into_iter().enumerate() {
            if let Err(payload) = handle.join() {
                worker_panic.get_or_insert(Error::WorkerPanicked {
                    shard,
                    message: panic_message(payload.as_ref()),
                });
            }
        }
        // The panic is the root cause; a failed flush to the dead worker is
        // only its symptom.
        if let Some(err) = worker_panic {
            return Err(err);
        }
        flushed?;
        self.collect_cuts()?;
        let intervals = self.intervals();
        Ok(EngineReport {
            profiles: std::mem::take(&mut self.completed),
            events: self.events,
            intervals,
            elapsed: self.started.elapsed(),
            shards: std::mem::take(&mut self.stats),
        })
    }

    /// Hands the shard's pending batch to its worker, swapping in a
    /// recycled buffer from the worker's return ring (or a fresh
    /// allocation only when none has come back yet).
    fn send_batch(&mut self, shard: usize) -> Result<(), Error> {
        let started = Instant::now();
        let fresh = match self.recycle_rxs[shard].try_recv() {
            Ok(buf) => buf,
            Err(_) => Vec::with_capacity(self.batch_cap),
        };
        let batch = std::mem::replace(&mut self.batches[shard], fresh);
        let result = self.dispatch_msg(shard, Msg::Batch(batch));
        self.handoff += started.elapsed();
        result
    }

    /// Time spent handing batches into shard rings — buffer recycling plus
    /// the ring send, including any blocking stall on a full ring — since
    /// the last call; resets the accumulator. This is the "ring handoff"
    /// share of an ingest call's wall time; callers attributing latency
    /// per stage subtract it from the whole ingest duration.
    pub fn take_handoff_time(&mut self) -> Duration {
        std::mem::take(&mut self.handoff)
    }

    /// Sends a message to a shard worker, preferring the non-blocking path;
    /// a full ring counts one stall and falls back to a blocking send. A
    /// hung-up worker (it died, almost always by panicking) is an error for
    /// the *caller* to handle — never a panic on the dispatching thread.
    ///
    /// Dispatch statistics and telemetry (batch counts, event counts, the
    /// queue-depth gauge) are updated only after the send *succeeds*: a
    /// batch that dies with its worker was never dispatched and is not
    /// counted as such.
    fn dispatch_msg(&mut self, shard: usize, msg: Msg) -> Result<(), Error> {
        let batch_events = match &msg {
            Msg::Batch(batch) => Some(batch.len() as u64),
            _ => None,
        };
        match self.senders[shard].try_send(msg) {
            Ok(()) => {}
            Err(ring::TrySendError::Full(msg)) => {
                self.stats[shard].stalls += 1;
                if let Some(t) = &self.telemetry {
                    t.stalls.incr();
                }
                if self.senders[shard].send(msg).is_err() {
                    return Err(self.worker_died(shard));
                }
            }
            Err(ring::TrySendError::Disconnected(_)) => {
                return Err(self.worker_died(shard));
            }
        }
        if let Some(events) = batch_events {
            self.stats[shard].batches += 1;
            if let Some(t) = &self.telemetry {
                t.batches.incr();
                t.events.add(events);
                t.batch_events.record(events);
            }
        }
        if let Some(depth) = self.queue_gauges.get(shard) {
            depth.incr();
        }
        Ok(())
    }

    /// Records a dead worker: its queued backlog will never be consumed, so
    /// its depth gauge is zeroed here as well as by the worker's own exit
    /// guard (covering the race where a send lands while the worker is
    /// already unwinding).
    fn worker_died(&self, shard: usize) -> Error {
        if let Some(depth) = self.queue_gauges.get(shard) {
            depth.set(0);
        }
        Error::WorkerDied { shard }
    }

    /// Flushes every shard's pending batch without cutting.
    fn flush_batches(&mut self) -> Result<(), Error> {
        for shard in 0..self.senders.len() {
            if !self.batches[shard].is_empty() {
                self.send_batch(shard)?;
            }
        }
        Ok(())
    }

    /// Flushes batches and broadcasts a cut; the workers' profiles are
    /// collected lazily by [`collect_cuts`](Self::collect_cuts).
    fn broadcast_cut(&mut self) -> Result<(), Error> {
        self.flush_batches()?;
        for shard in 0..self.senders.len() {
            self.dispatch_msg(shard, Msg::Cut)?;
        }
        if let Some(t) = &self.telemetry {
            t.cuts.incr();
            self.cut_starts.push_back(Instant::now());
        }
        self.pending_cuts += 1;
        self.in_interval = 0;
        Ok(())
    }

    /// Merges every broadcast-but-uncollected cut into `completed`. Blocks
    /// until the workers deliver; each sends exactly one profile per cut,
    /// in order, so this always terminates.
    fn collect_cuts(&mut self) -> Result<(), Error> {
        while self.pending_cuts > 0 {
            let mut parts = Vec::with_capacity(self.profile_rxs.len());
            for (shard, rx) in self.profile_rxs.iter().enumerate() {
                parts.push(rx.recv().map_err(|_| Error::WorkerDied { shard })?);
            }
            self.completed.push(IntervalProfile::merge(parts)?);
            self.pending_cuts -= 1;
            if let (Some(t), Some(start)) = (&self.telemetry, self.cut_starts.pop_front()) {
                t.cut_latency.record_duration(start.elapsed());
            }
        }
        Ok(())
    }
}

/// How long [`EngineSession`]'s `Drop` waits for each worker before
/// detaching it. Workers exit promptly once the channel hangs up; the bound
/// exists so a wedged worker (stuck in a profiler call or an injected
/// stall) cannot hang the dropping thread forever.
const DROP_JOIN_TIMEOUT: Duration = Duration::from_secs(2);

impl Drop for EngineSession {
    fn drop(&mut self) {
        // Hang up so the workers exit their receive loops, then reap them —
        // but with a bound: past the deadline the worker is detached (it
        // still exits on its own once it drains the hung-up channel; the
        // drop just stops waiting for it).
        self.senders.clear();
        let deadline = Instant::now() + DROP_JOIN_TIMEOUT;
        for handle in std::mem::take(&mut self.handles) {
            while !handle.is_finished() && Instant::now() < deadline {
                thread::sleep(Duration::from_millis(1));
            }
            if handle.is_finished() {
                let _ = handle.join();
            }
        }
        // A detached (wedged) worker never ran its own gauge reset; the
        // session is over either way, so no backlog remains to report.
        for gauge in &self.queue_gauges {
            gauge.set(0);
        }
    }
}

/// Zeroes the shard's queue-depth gauge when dropped — including during a
/// worker panic's unwind — so messages still queued behind a dead worker
/// can never leave the gauge stuck positive.
struct GaugeReset(Option<Gauge>);

impl Drop for GaugeReset {
    fn drop(&mut self) {
        if let Some(gauge) = &self.0 {
            gauge.set(0);
        }
    }
}

/// Extracts a human-readable message from a worker thread's panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn shard_worker(
    mut profiler: Box<dyn EventProfiler + Send>,
    rx: ring::Receiver<Msg>,
    recycle: ring::Sender<Vec<Tuple>>,
    profile_tx: Sender<IntervalProfile>,
    depth: Option<Gauge>,
    faults: Option<FaultHook>,
) {
    // Runs on every exit path, panic unwinds included: whatever is still
    // queued behind this worker will never be consumed, so its gauge
    // contribution is zeroed here rather than leaked.
    let _depth_reset = GaugeReset(depth.clone());
    for msg in rx {
        // The message left the queue: the shard's live backlog shrank.
        if let Some(depth) = &depth {
            depth.decr();
        }
        match msg {
            Msg::Batch(mut batch) => {
                // One Option check per *batch*: disarmed fault machinery is
                // compiled in but off the per-event path entirely.
                if let Some(hook) = &faults {
                    match hook.on_worker_events(batch.len() as u64) {
                        WorkerAction::Proceed => {}
                        WorkerAction::Panic => panic!("injected fault: worker panic"),
                        WorkerAction::Stall(pause) => thread::sleep(pause),
                    }
                }
                // One virtual call per batch, with the profiler's branch-
                // hoisted loop inside. External-cut profilers never complete
                // an interval on their own, so the result is an empty Vec
                // (no allocation happens for it).
                let emitted = profiler.observe_batch(&batch);
                debug_assert!(emitted.is_empty());
                drop(emitted);
                // Return the emptied buffer to the dispatcher. The ring is
                // sized to always have room; if the dispatcher is gone (or
                // has stopped draining), the buffer is simply dropped.
                batch.clear();
                let _ = recycle.try_send(batch);
            }
            // The session may have hung up already (dropped un-finished);
            // then nobody wants the answer and the error is fine to ignore.
            Msg::Cut => {
                let _ = profile_tx.send(profiler.finish_interval());
            }
            Msg::TopK(k, reply) => {
                let _ = reply.send(profiler.hot_tuples(k));
            }
            Msg::SaveState(reply) => {
                let _ = reply.send(profiler.save_state());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhp_trace::{Benchmark, StreamKind, StreamSpec};

    fn li_events(n: usize) -> impl Iterator<Item = Tuple> {
        StreamSpec::new(Benchmark::Li, StreamKind::Value, 7)
            .events()
            .take(n)
    }

    #[test]
    fn shard_routing_is_tuple_stable_and_in_range() {
        for tuple in li_events(2_000) {
            let shard = shard_of(tuple, 8);
            assert!(shard < 8);
            assert_eq!(shard, shard_of(tuple, 8));
        }
        assert!(li_events(2_000).all(|t| shard_of(t, 1) == 0));
    }

    #[test]
    fn shard_routing_spreads_load() {
        let mut counts = [0u64; 8];
        for tuple in li_events(20_000) {
            counts[shard_of(tuple, 8)] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(count > 500, "shard {shard} got only {count} events");
        }
    }

    #[test]
    fn perfect_sharded_runs_match_single_threaded_exactly() {
        let interval = IntervalConfig::new(5_000, 0.01).unwrap();
        let mut reference = PerfectProfiler::new(interval);
        let expected = reference.observe_all(li_events(23_000));
        assert_eq!(expected.len(), 4);

        for shards in [1, 2, 4, 8] {
            let engine = ShardedEngine::new(
                EngineConfig::new(shards).with_batch_events(256),
                interval,
                ProfilerSpec::Perfect,
                0,
            );
            let report = engine.run(li_events(23_000)).unwrap();
            assert_eq!(report.profiles, expected, "{shards} shards");
            assert_eq!(report.events, 23_000);
            assert_eq!(report.intervals, 4);
            let dispatched: u64 = report.shards.iter().map(|s| s.events).sum();
            assert_eq!(dispatched, 23_000);
        }
    }

    #[test]
    fn single_shard_multi_hash_matches_single_threaded() {
        let interval = IntervalConfig::new(10_000, 0.01).unwrap();
        let config = MultiHashConfig::best();
        let mut reference = MultiHashProfiler::new(interval, config, 42).unwrap();
        let expected = reference.observe_all(li_events(30_000));

        let engine = ShardedEngine::new(
            EngineConfig::new(1),
            interval,
            ProfilerSpec::MultiHash(config),
            42,
        );
        let report = engine.run(li_events(30_000)).unwrap();
        assert_eq!(report.profiles, expected);
    }

    #[test]
    fn trailing_partial_interval_yields_no_profile() {
        let interval = IntervalConfig::new(1_000, 0.1).unwrap();
        let engine = ShardedEngine::new(EngineConfig::new(2), interval, ProfilerSpec::Perfect, 0);
        let report = engine.run(li_events(1_500)).unwrap();
        assert_eq!(report.intervals, 1);
        assert_eq!(report.profiles.len(), 1);
        assert_eq!(report.events, 1_500);
    }

    #[test]
    fn stream_errors_abort_the_run() {
        let interval = IntervalConfig::new(100, 0.1).unwrap();
        let engine = ShardedEngine::new(EngineConfig::new(2), interval, ProfilerSpec::Perfect, 0);
        let events = li_events(250)
            .map(Ok)
            .chain(std::iter::once(Err(Error::TrailingData)));
        let result = engine.run_results(events);
        assert!(matches!(result, Err(Error::TrailingData)));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let interval = IntervalConfig::new(100, 0.1).unwrap();
        for config in [
            EngineConfig::new(0),
            EngineConfig::new(EngineConfig::MAX_SHARDS + 1),
            EngineConfig::new(2).with_queue_capacity(0),
            EngineConfig::new(2).with_batch_events(0),
        ] {
            let engine = ShardedEngine::new(config, interval, ProfilerSpec::Perfect, 0);
            assert!(matches!(
                engine.run(li_events(10)),
                Err(Error::InvalidEngine(_))
            ));
        }
    }

    #[test]
    fn profiler_specs_parse_by_name() {
        assert!(matches!(
            "multi-hash".parse::<ProfilerSpec>(),
            Ok(ProfilerSpec::MultiHash(_))
        ));
        assert!(matches!(
            "single-hash".parse::<ProfilerSpec>(),
            Ok(ProfilerSpec::SingleHash(_))
        ));
        assert!(matches!(
            "perfect".parse::<ProfilerSpec>(),
            Ok(ProfilerSpec::Perfect)
        ));
        assert!("oracle".parse::<ProfilerSpec>().is_err());
    }

    #[test]
    fn session_streaming_matches_batch_run() {
        let interval = IntervalConfig::new(5_000, 0.01).unwrap();
        let config = MultiHashConfig::best();
        for (spec, shards) in [
            (ProfilerSpec::Perfect, 4),
            (ProfilerSpec::MultiHash(config), 1),
        ] {
            let engine = ShardedEngine::new(
                EngineConfig::new(shards).with_batch_events(128),
                interval,
                spec,
                42,
            );
            let expected = engine.run(li_events(17_000)).unwrap();

            let mut session = engine.start().unwrap();
            let events: Vec<Tuple> = li_events(17_000).collect();
            // Irregular push sizes: boundaries must come from the global
            // count, not from push granularity.
            for chunk in events.chunks(733) {
                session.push_all(chunk.iter().copied()).unwrap();
            }
            let report = session.finish().unwrap();
            assert_eq!(report.profiles, expected.profiles, "{spec} x{shards}");
            assert_eq!(report.events, 17_000);
            assert_eq!(report.intervals, 3);
        }
    }

    #[test]
    fn session_profiles_are_queryable_mid_stream() {
        let interval = IntervalConfig::new(1_000, 0.05).unwrap();
        let engine = ShardedEngine::new(EngineConfig::new(2), interval, ProfilerSpec::Perfect, 0);
        let mut session = engine.start().unwrap();
        session.push_all(li_events(2_500)).unwrap();
        assert_eq!(session.events(), 2_500);
        assert_eq!(session.intervals(), 2);
        assert_eq!(session.in_interval(), 500);
        let profiles = session.profiles().unwrap();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].interval_index(), 0);
        assert_eq!(profiles[1].interval_index(), 1);
        // Querying consumed nothing: the stream continues seamlessly.
        session.push_all(li_events(500)).unwrap();
        assert_eq!(session.intervals(), 3);
        let report = session.finish().unwrap();
        assert_eq!(report.profiles.len(), 3);
    }

    #[test]
    fn session_top_k_sees_the_partial_interval_exactly() {
        let interval = IntervalConfig::new(100_000, 0.01).unwrap();
        let engine = ShardedEngine::new(
            EngineConfig::new(4).with_batch_events(64),
            interval,
            ProfilerSpec::Perfect,
            0,
        );
        let mut session = engine.start().unwrap();
        let events: Vec<Tuple> = li_events(9_000).collect();
        session.push_all(events.iter().copied()).unwrap();

        // The perfect profiler tracks exact counts, so top-k must equal a
        // direct count over the pushed events.
        let mut counts: std::collections::HashMap<Tuple, u64> = std::collections::HashMap::new();
        for &t in &events {
            *counts.entry(t).or_insert(0) += 1;
        }
        let expected: Vec<Candidate> = mhp_core::top_k_by_count(counts.into_iter().collect(), 10)
            .into_iter()
            .map(|(tuple, count)| Candidate::new(tuple, count))
            .collect();
        assert_eq!(session.top_k(10).unwrap(), expected);
        // And the query was non-destructive.
        assert_eq!(session.top_k(10).unwrap(), expected);
        assert_eq!(session.finish().unwrap().events, 9_000);
    }

    #[test]
    fn session_forced_cut_ends_the_interval_early() {
        let interval = IntervalConfig::new(1_000, 0.1).unwrap();
        let engine = ShardedEngine::new(EngineConfig::new(2), interval, ProfilerSpec::Perfect, 0);
        let mut session = engine.start().unwrap();
        session.push_all(li_events(400)).unwrap();
        let profile = session.cut().unwrap().expect("400 pending events");
        // A single-threaded external-cut run over the same 400 events is
        // the exact expectation for the forced cut.
        let mut reference = PerfectProfiler::new(interval.with_external_cut());
        for t in li_events(400) {
            assert!(reference.observe(t).is_none());
        }
        // (merge normalizes the external-cut marker away, on both sides)
        let expected = IntervalProfile::merge([reference.finish_interval()]).unwrap();
        assert_eq!(profile, expected);
        // Nothing pending: a second cut is a no-op.
        assert!(session.cut().unwrap().is_none());
        assert_eq!(session.in_interval(), 0);
        // Boundaries restart from the cut: 1 000 more events = 1 more interval.
        session.push_all(li_events(1_000)).unwrap();
        let report = session.finish().unwrap();
        assert_eq!(report.intervals, 2);
        assert_eq!(report.events, 1_400);
    }

    #[test]
    fn dropped_session_shuts_down_cleanly() {
        let interval = IntervalConfig::new(1_000, 0.1).unwrap();
        let engine = ShardedEngine::new(EngineConfig::new(4), interval, ProfilerSpec::Perfect, 0);
        let mut session = engine.start().unwrap();
        session.push_all(li_events(2_500)).unwrap();
        drop(session); // must join workers, not leak or deadlock
    }

    #[test]
    fn slow_consumer_applies_backpressure_without_failing() {
        // A worker that dawdles on every event, behind a 1-deep queue:
        // the dispatcher must stall (blocking send), not error or panic.
        struct Slow(PerfectProfiler);
        impl EventProfiler for Slow {
            fn interval_config(&self) -> IntervalConfig {
                self.0.interval_config()
            }
            fn observe(&mut self, tuple: Tuple) -> Option<IntervalProfile> {
                thread::sleep(Duration::from_micros(50));
                self.0.observe(tuple)
            }
            fn finish_interval(&mut self) -> IntervalProfile {
                self.0.finish_interval()
            }
            fn reset(&mut self) {
                self.0.reset()
            }
            fn events_in_current_interval(&self) -> u64 {
                self.0.events_in_current_interval()
            }
            fn interval_index(&self) -> u64 {
                self.0.interval_index()
            }
        }
        let interval = IntervalConfig::new(10_000, 0.01).unwrap();
        let config = EngineConfig::new(1)
            .with_queue_capacity(1)
            .with_batch_events(8);
        let mut session = EngineSession::spawn(
            &config,
            interval.interval_len(),
            vec![Box::new(Slow(PerfectProfiler::new(
                interval.with_external_cut(),
            )))],
            None,
            None,
        );
        for tuple in li_events(400) {
            session.push(tuple).unwrap();
        }
        let report = session.finish().unwrap();
        assert_eq!(report.events, 400);
        assert!(
            report.total_stalls() > 0,
            "a 1-deep queue against a slow worker must stall the dispatcher"
        );
    }

    #[test]
    fn poisoned_worker_errors_instead_of_panicking_the_dispatcher() {
        // Regression: a panicked shard worker with a full queue used to
        // panic the *dispatching* thread via expect() on the blocking send.
        struct Poisoned {
            interval: IntervalConfig,
            seen: u64,
        }
        impl EventProfiler for Poisoned {
            fn interval_config(&self) -> IntervalConfig {
                self.interval
            }
            fn observe(&mut self, _tuple: Tuple) -> Option<IntervalProfile> {
                self.seen += 1;
                assert!(self.seen < 10, "profiler poisoned at event 10");
                None
            }
            fn finish_interval(&mut self) -> IntervalProfile {
                IntervalProfile::from_candidates(0, self.interval, Vec::new())
            }
            fn reset(&mut self) {}
            fn events_in_current_interval(&self) -> u64 {
                self.seen
            }
            fn interval_index(&self) -> u64 {
                0
            }
        }
        let interval = IntervalConfig::new(1_000_000, 0.01)
            .unwrap()
            .with_external_cut();
        let config = EngineConfig::new(1)
            .with_queue_capacity(1)
            .with_batch_events(1);
        let mut session = EngineSession::spawn(
            &config,
            1_000_000,
            vec![Box::new(Poisoned { interval, seen: 0 })],
            None,
            None,
        );
        let mut push_err = None;
        for tuple in li_events(10_000) {
            if let Err(err) = session.push(tuple) {
                push_err = Some(err);
                break;
            }
        }
        assert!(
            matches!(push_err, Some(Error::WorkerDied { shard: 0 })),
            "dead worker must surface as an error on push, got {push_err:?}"
        );
        match session.finish() {
            Err(Error::WorkerPanicked { shard: 0, message }) => {
                assert!(
                    message.contains("poisoned"),
                    "panic message lost: {message}"
                );
            }
            other => panic!("finish must report the worker panic, got {other:?}"),
        }
    }

    #[test]
    fn instrumented_run_reports_engine_and_sketch_metrics() {
        use crate::telemetry::{EngineTelemetry, RegistrySink};
        use mhp_telemetry::{stat_value, Registry};

        let registry = Registry::new();
        let interval = IntervalConfig::new(5_000, 0.01).unwrap();
        let engine = ShardedEngine::new(
            EngineConfig::new(2).with_batch_events(256),
            interval,
            ProfilerSpec::MultiHash(MultiHashConfig::best()),
            42,
        )
        .with_telemetry(EngineTelemetry::new(&registry))
        .with_introspection_sink(RegistrySink::shared(&registry));

        let report = engine.run(li_events(12_000)).unwrap();
        assert_eq!(report.events, 12_000);
        assert_eq!(report.intervals, 2);

        let text = registry.render_prometheus();
        assert_eq!(stat_value(&text, "engine_events_total"), Some(12_000));
        assert_eq!(stat_value(&text, "engine_cuts_total"), Some(2));
        assert!(stat_value(&text, "engine_batches_total").unwrap() > 0);
        assert!(stat_value(&text, "engine_batch_events_count").unwrap() > 0);
        assert_eq!(stat_value(&text, "engine_cut_latency_us_count"), Some(2));
        // Both shards' profilers reported through the sink: one snapshot
        // per shard per cut; the trailing 2 000-event partial interval is
        // never cut, so it appears in engine_events_total only.
        assert_eq!(stat_value(&text, "sketch_intervals_total"), Some(4));
        assert_eq!(stat_value(&text, "sketch_events_total"), Some(10_000));
        assert!(stat_value(&text, "sketch_promotions_total").unwrap() > 0);
        // Queues drained: every depth gauge is back to zero.
        assert!(text.contains("engine_queue_depth{shard=\"0\"} 0"));
        assert!(text.contains("engine_queue_depth{shard=\"1\"} 0"));
        // An uninstrumented engine still works and touches none of this.
        let plain = ShardedEngine::new(EngineConfig::new(2), interval, ProfilerSpec::Perfect, 0);
        plain.run(li_events(6_000)).unwrap();
        assert_eq!(
            stat_value(&registry.render_prometheus(), "engine_events_total"),
            Some(12_000)
        );
    }

    #[test]
    fn session_save_restore_continue_matches_uninterrupted() {
        let interval = IntervalConfig::new(2_000, 0.02).unwrap();
        for spec in [
            ProfilerSpec::Perfect,
            ProfilerSpec::MultiHash(MultiHashConfig::best()),
            ProfilerSpec::SingleHash(SingleHashConfig::best()),
        ] {
            let engine = ShardedEngine::new(
                EngineConfig::new(4).with_batch_events(128),
                interval,
                spec,
                0xD15EA5E,
            );
            // Reference: one uninterrupted session over all 7_300 events
            // (mid-interval tail included).
            let events: Vec<Tuple> = li_events(7_300).collect();
            let mut clean = engine.start().unwrap();
            clean.push_all(events.iter().copied()).unwrap();
            let expected_top = clean.top_k(10).unwrap();
            let expected = clean.finish().unwrap();

            // Interrupted: push a prefix ending mid-interval, snapshot,
            // kill the session, restore, push the suffix.
            let mut first = engine.start().unwrap();
            first.push_all(events[..4_700].iter().copied()).unwrap();
            let snapshot = first.save_state().unwrap();
            assert_eq!(
                first.save_state().unwrap(),
                snapshot,
                "{spec}: saving twice must produce identical bytes"
            );
            drop(first);

            let mut restored = engine.restore(&snapshot).unwrap();
            assert_eq!(
                restored.save_state().unwrap(),
                snapshot,
                "{spec}: a restored session must re-snapshot to the same bytes"
            );
            assert_eq!(restored.events(), 4_700);
            assert_eq!(restored.in_interval(), 700);
            restored.push_all(events[4_700..].iter().copied()).unwrap();
            assert_eq!(restored.top_k(10).unwrap(), expected_top, "{spec}");
            let report = restored.finish().unwrap();
            assert_eq!(report.profiles, expected.profiles, "{spec}");
            assert_eq!(report.events, expected.events);
            assert_eq!(report.intervals, expected.intervals);
        }
    }

    #[test]
    fn restore_rejects_mismatched_engines_and_damaged_snapshots() {
        let interval = IntervalConfig::new(1_000, 0.05).unwrap();
        let engine = ShardedEngine::new(EngineConfig::new(2), interval, ProfilerSpec::Perfect, 7);
        let mut session = engine.start().unwrap();
        session.push_all(li_events(1_500)).unwrap();
        let snapshot = session.save_state().unwrap();
        drop(session);

        // Different shard count.
        let other_shards =
            ShardedEngine::new(EngineConfig::new(4), interval, ProfilerSpec::Perfect, 7);
        assert!(matches!(
            other_shards.restore(&snapshot),
            Err(Error::Snapshot(SnapshotError::ConfigMismatch {
                context: "shard count"
            }))
        ));
        // Different interval length.
        let other_interval = ShardedEngine::new(
            EngineConfig::new(2),
            IntervalConfig::new(2_000, 0.05).unwrap(),
            ProfilerSpec::Perfect,
            7,
        );
        assert!(matches!(
            other_interval.restore(&snapshot),
            Err(Error::Snapshot(SnapshotError::ConfigMismatch {
                context: "interval length"
            }))
        ));
        // Truncation at every length fails typed, never panics.
        for len in 0..snapshot.len() {
            assert!(matches!(
                engine.restore(&snapshot[..len]),
                Err(Error::Snapshot(_))
            ));
        }
        // Bit flips are caught by the envelope CRC.
        for i in (0..snapshot.len()).step_by(11) {
            let mut bad = snapshot.clone();
            bad[i] ^= 0x10;
            assert!(matches!(engine.restore(&bad), Err(Error::Snapshot(_))));
        }
    }

    #[test]
    fn injected_worker_panic_surfaces_as_typed_error() {
        use mhp_faults::{FaultKind, FaultPlan};
        let interval = IntervalConfig::new(10_000, 0.01).unwrap();
        let hook = FaultPlan::new(42)
            .with_fault(FaultKind::WorkerPanic, 2_000)
            .arm();
        let engine = ShardedEngine::new(
            EngineConfig::new(2).with_batch_events(128),
            interval,
            ProfilerSpec::Perfect,
            0,
        )
        .with_fault_hook(hook.clone());
        match engine.run(li_events(20_000)) {
            Err(Error::WorkerPanicked { message, .. }) => {
                assert!(message.contains("injected fault"), "{message}");
            }
            other => panic!("expected a typed worker panic, got {other:?}"),
        }
        assert_eq!(hook.injected(FaultKind::WorkerPanic), 1);
    }

    #[test]
    fn injected_worker_stall_delays_but_does_not_diverge() {
        use mhp_faults::{FaultKind, FaultPlan};
        let interval = IntervalConfig::new(5_000, 0.01).unwrap();
        let clean = ShardedEngine::new(
            EngineConfig::new(2).with_batch_events(256),
            interval,
            ProfilerSpec::Perfect,
            0,
        );
        let expected = clean.run(li_events(12_000)).unwrap();

        let hook = FaultPlan::new(42)
            .with_fault(FaultKind::WorkerStall, 1_000)
            .arm();
        let report = clean
            .clone()
            .with_fault_hook(hook.clone())
            .run(li_events(12_000))
            .unwrap();
        assert_eq!(report.profiles, expected.profiles);
        assert_eq!(report.events, 12_000);
        assert_eq!(hook.injected(FaultKind::WorkerStall), 1);
    }

    #[test]
    fn dropping_a_session_with_a_wedged_worker_is_bounded() {
        // A worker stuck inside a profiler call must not hang Drop forever:
        // past DROP_JOIN_TIMEOUT it is detached instead of joined.
        struct Wedged(PerfectProfiler);
        impl EventProfiler for Wedged {
            fn interval_config(&self) -> IntervalConfig {
                self.0.interval_config()
            }
            fn observe(&mut self, tuple: Tuple) -> Option<IntervalProfile> {
                thread::sleep(Duration::from_secs(6));
                self.0.observe(tuple)
            }
            fn finish_interval(&mut self) -> IntervalProfile {
                self.0.finish_interval()
            }
            fn reset(&mut self) {
                self.0.reset()
            }
            fn events_in_current_interval(&self) -> u64 {
                self.0.events_in_current_interval()
            }
            fn interval_index(&self) -> u64 {
                self.0.interval_index()
            }
        }
        let interval = IntervalConfig::new(1_000_000, 0.01).unwrap();
        let config = EngineConfig::new(1)
            .with_queue_capacity(4)
            .with_batch_events(1);
        let mut session = EngineSession::spawn(
            &config,
            interval.interval_len(),
            vec![Box::new(Wedged(PerfectProfiler::new(
                interval.with_external_cut(),
            )))],
            None,
            None,
        );
        session.push(Tuple::new(1, 1)).unwrap();
        let started = Instant::now();
        drop(session);
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(5),
            "drop must detach a wedged worker within the bound, took {elapsed:?}"
        );
    }

    #[test]
    fn push_slice_matches_per_event_push() {
        let interval = IntervalConfig::new(2_000, 0.02).unwrap();
        for spec in [
            ProfilerSpec::Perfect,
            ProfilerSpec::MultiHash(MultiHashConfig::best()),
        ] {
            let engine = ShardedEngine::new(
                EngineConfig::new(4).with_batch_events(128),
                interval,
                spec,
                7,
            );
            let events: Vec<Tuple> = li_events(9_100).collect();
            let mut reference = engine.start().unwrap();
            reference.push_all(events.iter().copied()).unwrap();
            let expected = reference.finish().unwrap();

            let mut bulk = engine.start().unwrap();
            // Uneven splits: interval boundaries must come from the global
            // count, not the slice granularity.
            for chunk in events.chunks(997) {
                bulk.push_slice(chunk).unwrap();
            }
            let report = bulk.finish().unwrap();
            assert_eq!(report.profiles, expected.profiles, "{spec}");
            assert_eq!(report.events, expected.events);
            assert_eq!(report.intervals, expected.intervals);
        }
    }

    #[test]
    fn ingest_chunk_rejects_corruption_before_ingesting_anything() {
        let interval = IntervalConfig::new(1_000, 0.05).unwrap();
        let engine = ShardedEngine::new(EngineConfig::new(2), interval, ProfilerSpec::Perfect, 0);
        let mut session = engine.start().unwrap();
        let events: Vec<Tuple> = li_events(300).collect();
        let mut chunk = crate::format::encode_chunk(&events);
        // Flip a payload byte: the CRC check in open() must reject the
        // chunk whole, with nothing partially ingested.
        let last = chunk.len() - 1;
        chunk[last] ^= 0x40;
        assert!(matches!(
            session.ingest_chunk(&chunk),
            Err(Error::CrcMismatch { .. })
        ));
        assert_eq!(session.events(), 0);
        chunk[last] ^= 0x40;
        assert_eq!(session.ingest_chunk(&chunk).unwrap(), chunk.len());
        assert_eq!(session.events(), 300);
    }

    /// A profiler that panics its worker on the very first event.
    struct Lethal {
        interval: IntervalConfig,
    }
    impl EventProfiler for Lethal {
        fn interval_config(&self) -> IntervalConfig {
            self.interval
        }
        fn observe(&mut self, _tuple: Tuple) -> Option<IntervalProfile> {
            panic!("lethal profiler: worker dies on first event");
        }
        fn finish_interval(&mut self) -> IntervalProfile {
            IntervalProfile::from_candidates(0, self.interval, Vec::new())
        }
        fn reset(&mut self) {}
        fn events_in_current_interval(&self) -> u64 {
            0
        }
        fn interval_index(&self) -> u64 {
            0
        }
    }

    #[test]
    fn dead_worker_batches_are_not_counted_as_dispatched() {
        use crate::telemetry::EngineTelemetry;
        use mhp_telemetry::{stat_value, Registry};

        let registry = Registry::new();
        let interval = IntervalConfig::new(1_000_000, 0.01)
            .unwrap()
            .with_external_cut();
        let config = EngineConfig::new(1)
            .with_queue_capacity(4)
            .with_batch_events(4);
        let mut session = EngineSession::spawn(
            &config,
            1_000_000,
            vec![Box::new(Lethal { interval })],
            Some(EngineTelemetry::new(&registry)),
            None,
        );
        // The first batch is genuinely dispatched — it reaches the worker
        // and kills it.
        for tuple in li_events(4) {
            session.push(tuple).unwrap();
        }
        while !session.handles[0].is_finished() {
            thread::sleep(Duration::from_millis(1));
        }
        // Regression (dispatch over-count): batches that fail with
        // WorkerDied used to be counted in stats and telemetry *before*
        // try_send was even attempted.
        let mut push_err = None;
        for tuple in li_events(8) {
            if let Err(err) = session.push(tuple) {
                push_err = Some(err);
                break;
            }
        }
        assert!(
            matches!(push_err, Some(Error::WorkerDied { shard: 0 })),
            "got {push_err:?}"
        );
        assert_eq!(
            session.shard_stats()[0].batches,
            1,
            "only the batch that reached the worker counts as dispatched"
        );
        let text = registry.render_prometheus();
        assert_eq!(stat_value(&text, "engine_batches_total"), Some(1));
        assert_eq!(stat_value(&text, "engine_events_total"), Some(4));
        match session.finish() {
            Err(Error::WorkerPanicked { shard: 0, message }) => {
                assert!(message.contains("lethal"), "{message}");
            }
            other => panic!("finish must report the worker panic, got {other:?}"),
        }
    }

    #[test]
    fn queue_gauge_zeroes_when_a_worker_dies_with_a_backlog() {
        use crate::telemetry::EngineTelemetry;
        use mhp_telemetry::Registry;

        // Stalls long enough on its first event for a backlog to queue up
        // behind it, then panics — leaving batches nobody will consume.
        struct StallThenDie {
            interval: IntervalConfig,
        }
        impl EventProfiler for StallThenDie {
            fn interval_config(&self) -> IntervalConfig {
                self.interval
            }
            fn observe(&mut self, _tuple: Tuple) -> Option<IntervalProfile> {
                thread::sleep(Duration::from_millis(500));
                panic!("worker dies with a backlog");
            }
            fn finish_interval(&mut self) -> IntervalProfile {
                IntervalProfile::from_candidates(0, self.interval, Vec::new())
            }
            fn reset(&mut self) {}
            fn events_in_current_interval(&self) -> u64 {
                0
            }
            fn interval_index(&self) -> u64 {
                0
            }
        }

        let registry = Registry::new();
        let interval = IntervalConfig::new(1_000_000, 0.01)
            .unwrap()
            .with_external_cut();
        let config = EngineConfig::new(1)
            .with_queue_capacity(4)
            .with_batch_events(1);
        let mut session = EngineSession::spawn(
            &config,
            1_000_000,
            vec![Box::new(StallThenDie { interval })],
            Some(EngineTelemetry::new(&registry)),
            None,
        );
        // Batch 1 occupies the worker; three more sit queued behind it.
        for tuple in li_events(4) {
            session.push(tuple).unwrap();
        }
        let gauge = session.queue_gauges[0].clone();
        assert!(
            gauge.get() > 0,
            "a backlog must be visible while the worker is stalled"
        );
        while !session.handles[0].is_finished() {
            thread::sleep(Duration::from_millis(1));
        }
        // Regression (gauge drift): the queued-but-never-consumed batches
        // used to leave the gauge permanently positive after the panic.
        assert_eq!(gauge.get(), 0, "worker exit must zero its depth gauge");
        assert!(matches!(
            session.finish(),
            Err(Error::WorkerPanicked { shard: 0, .. })
        ));
        assert_eq!(gauge.get(), 0);
    }

    #[test]
    fn report_computes_throughput_and_stalls() {
        let report = EngineReport {
            profiles: Vec::new(),
            events: 1_000,
            intervals: 0,
            elapsed: Duration::from_millis(100),
            shards: vec![
                ShardStats {
                    events: 600,
                    batches: 3,
                    stalls: 2,
                },
                ShardStats {
                    events: 400,
                    batches: 2,
                    stalls: 1,
                },
            ],
        };
        assert!((report.events_per_sec() - 10_000.0).abs() < 1.0);
        assert_eq!(report.total_stalls(), 3);
    }
}
