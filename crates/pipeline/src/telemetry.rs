//! Telemetry adapters: engine counters on a shared metrics [`Registry`]
//! and a registry-backed [`IntrospectionSink`] for the shard profilers.
//!
//! The engine itself has no hard dependency on metrics — construct a
//! [`ShardedEngine`](crate::ShardedEngine) plainly and nothing here is
//! touched. Attach an [`EngineTelemetry`] (built over an `mhp-telemetry`
//! [`Registry`]) and every session the engine starts reports:
//!
//! * `engine_events_total`, `engine_batches_total`, `engine_stalls_total`,
//!   `engine_cuts_total` — counters on the dispatch path;
//! * `engine_batch_events` — a histogram of dispatched batch sizes;
//! * `engine_cut_latency_us` — a histogram of broadcast-to-merge latency
//!   per interval cut;
//! * `engine_queue_depth{shard="N"}` — a live gauge of each shard's
//!   channel backlog, in batches.
//!
//! Attach a [`RegistrySink`] (via
//! [`ShardedEngine::with_introspection_sink`](crate::ShardedEngine::with_introspection_sink))
//! and the per-interval [`SketchSnapshot`]s every shard profiler emits are
//! folded into `sketch_*` counters and gauges on the same registry.

use std::sync::Arc;

use mhp_core::{IntrospectionSink, SketchSnapshot};
use mhp_telemetry::{Counter, Gauge, Histogram, Registry};

/// Engine-side metric handles, registered once on a shared [`Registry`].
///
/// Cloning is cheap (the handles are `Arc`-shared) and clones feed the same
/// metrics — one `EngineTelemetry` can serve many sessions.
#[derive(Debug, Clone)]
pub struct EngineTelemetry {
    registry: Registry,
    /// Events dispatched into shard queues.
    pub(crate) events: Counter,
    /// Batches dispatched into shard queues.
    pub(crate) batches: Counter,
    /// Dispatcher stalls on a full shard queue (the backpressure signal).
    pub(crate) stalls: Counter,
    /// Global interval cuts broadcast.
    pub(crate) cuts: Counter,
    /// Sizes of dispatched batches, in events.
    pub(crate) batch_events: Histogram,
    /// Latency from cut broadcast to merged profile, in microseconds.
    pub(crate) cut_latency: Histogram,
}

impl EngineTelemetry {
    /// Registers the engine metrics on `registry` and returns the handles.
    pub fn new(registry: &Registry) -> Self {
        EngineTelemetry {
            registry: registry.clone(),
            events: registry.counter("engine_events_total"),
            batches: registry.counter("engine_batches_total"),
            stalls: registry.counter("engine_stalls_total"),
            cuts: registry.counter("engine_cuts_total"),
            batch_events: registry.histogram("engine_batch_events"),
            cut_latency: registry.histogram("engine_cut_latency_us"),
        }
    }

    /// One `engine_queue_depth{shard="i"}` gauge per shard, registered on
    /// (or fetched from) the registry. Called at session spawn.
    pub(crate) fn queue_depth_gauges(&self, shards: usize) -> Vec<Gauge> {
        (0..shards)
            .map(|shard| {
                self.registry
                    .gauge_with_labels("engine_queue_depth", &[("shard", &shard.to_string())])
            })
            .collect()
    }
}

/// An [`IntrospectionSink`] that folds every [`SketchSnapshot`] into
/// `sketch_*` metrics on a shared [`Registry`].
///
/// Counters accumulate across intervals and across shards; the occupancy
/// gauges are last-write-wins (with several shards they reflect whichever
/// shard most recently ended an interval — per-shard fidelity is what the
/// snapshots themselves are for).
#[derive(Debug)]
pub struct RegistrySink {
    intervals: Counter,
    events: Counter,
    shield_hits: Counter,
    promotions: Counter,
    promotions_dropped: Counter,
    evictions: Counter,
    saturations: Counter,
    retained: Counter,
    counters_occupied: Gauge,
    counters_total: Gauge,
    accumulator_len: Gauge,
    accumulator_capacity: Gauge,
}

impl RegistrySink {
    /// Registers the sketch metrics on `registry` and returns the sink.
    pub fn new(registry: &Registry) -> Self {
        RegistrySink {
            intervals: registry.counter("sketch_intervals_total"),
            events: registry.counter("sketch_events_total"),
            shield_hits: registry.counter("sketch_shield_hits_total"),
            promotions: registry.counter("sketch_promotions_total"),
            promotions_dropped: registry.counter("sketch_promotions_dropped_total"),
            evictions: registry.counter("sketch_evictions_total"),
            saturations: registry.counter("sketch_saturations_total"),
            retained: registry.counter("sketch_retained_total"),
            counters_occupied: registry.gauge("sketch_counters_occupied"),
            counters_total: registry.gauge("sketch_counters_total"),
            accumulator_len: registry.gauge("sketch_accumulator_len"),
            accumulator_capacity: registry.gauge("sketch_accumulator_capacity"),
        }
    }

    /// The sink boxed for
    /// [`EventProfiler::set_introspection_sink`](mhp_core::EventProfiler::set_introspection_sink).
    pub fn shared(registry: &Registry) -> Arc<dyn IntrospectionSink> {
        Arc::new(RegistrySink::new(registry))
    }
}

impl IntrospectionSink for RegistrySink {
    fn on_interval(&self, snapshot: &SketchSnapshot) {
        self.intervals.incr();
        self.events.add(snapshot.events);
        self.shield_hits.add(snapshot.shield_hits);
        self.promotions.add(snapshot.promotions);
        self.promotions_dropped.add(snapshot.promotions_dropped);
        self.evictions.add(snapshot.evictions);
        self.saturations.add(snapshot.saturations);
        self.retained.add(snapshot.retained);
        self.counters_occupied.set(snapshot.counters_occupied);
        self.counters_total.set(snapshot.counters_total);
        self.accumulator_len.set(snapshot.accumulator_len);
        self.accumulator_capacity.set(snapshot.accumulator_capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhp_telemetry::stat_value;

    #[test]
    fn registry_sink_accumulates_counters_and_overwrites_gauges() {
        let registry = Registry::new();
        let sink = RegistrySink::new(&registry);
        sink.on_interval(&SketchSnapshot {
            interval_index: 0,
            events: 100,
            shield_hits: 40,
            promotions: 5,
            promotions_dropped: 1,
            evictions: 2,
            saturations: 0,
            retained: 3,
            counters_occupied: 50,
            counters_total: 64,
            accumulator_len: 3,
            accumulator_capacity: 8,
        });
        sink.on_interval(&SketchSnapshot {
            interval_index: 1,
            events: 100,
            shield_hits: 60,
            promotions: 2,
            promotions_dropped: 0,
            evictions: 1,
            saturations: 1,
            retained: 4,
            counters_occupied: 30,
            counters_total: 64,
            accumulator_len: 4,
            accumulator_capacity: 8,
        });
        let text = registry.render_prometheus();
        assert_eq!(stat_value(&text, "sketch_intervals_total"), Some(2));
        assert_eq!(stat_value(&text, "sketch_events_total"), Some(200));
        assert_eq!(stat_value(&text, "sketch_shield_hits_total"), Some(100));
        assert_eq!(stat_value(&text, "sketch_promotions_total"), Some(7));
        assert_eq!(stat_value(&text, "sketch_evictions_total"), Some(3));
        assert_eq!(stat_value(&text, "sketch_saturations_total"), Some(1));
        // Gauges are last-write-wins.
        assert_eq!(stat_value(&text, "sketch_counters_occupied"), Some(30));
        assert_eq!(stat_value(&text, "sketch_accumulator_len"), Some(4));
    }

    #[test]
    fn engine_telemetry_registers_per_shard_depth_gauges() {
        let registry = Registry::new();
        let telemetry = EngineTelemetry::new(&registry);
        let gauges = telemetry.queue_depth_gauges(3);
        assert_eq!(gauges.len(), 3);
        gauges[1].set(7);
        let text = registry.render_prometheus();
        assert!(text.contains("engine_queue_depth{shard=\"1\"} 7"));
        // Re-requesting yields the same underlying gauges.
        let again = telemetry.queue_depth_gauges(3);
        assert_eq!(again[1].get(), 7);
    }
}
