//! `mhp-pipeline` — record, inspect and replay binary event traces.
//!
//! ```text
//! mhp-pipeline record --stream gcc:value:42 --events 1000000 --out gcc.mhpt
//! mhp-pipeline info   --trace gcc.mhpt
//! mhp-pipeline replay --trace gcc.mhpt --shards 8 --profiler multi-hash
//! mhp-pipeline bench  --stream gcc:value:42 --events 1000000 --shards 1,8
//! ```
//!
//! `replay` runs the sharded engine over a recorded trace and prints the
//! hottest candidates of each interval plus throughput; `bench` skips the
//! disk and compares ingest throughput across shard counts on a live
//! synthetic stream.

use std::process::ExitCode;
use std::str::FromStr;

use mhp_core::{IntervalConfig, MultiHashConfig};
use mhp_pipeline::{
    EngineConfig, EngineReport, Error, ProfilerSpec, ShardedEngine, TraceReader, TraceWriter,
};
use mhp_trace::StreamSpec;

const USAGE: &str = "\
usage: mhp-pipeline <command> [options]

commands:
  record --stream B:K:S --out FILE [--events N] [--chunk-events N]
  info   --trace FILE
  replay --trace FILE [--shards K] [--profiler P] [--interval-len N]
         [--threshold F] [--seed S] [--top N]
  bench  --stream B:K:S [--events N] [--shards K1,K2,...] [--profiler P]
         [--interval-len N] [--threshold F] [--seed S]

streams are benchmark:kind:seed, e.g. gcc:value:42 or li:edge:7
profilers: multi-hash (default), single-hash, perfect
defaults: --events 1000000 --shards 1,8 --interval-len 10000
          --threshold 0.01 --seed 51966 --top 8";

/// A CLI usage error, surfaced as an ordinary pipeline error. The message
/// is leaked — acceptable for a handful of strings on the way to exit.
fn usage_error(msg: &str) -> Error {
    Error::InvalidEngine(Box::leak(msg.to_string().into_boxed_str()))
}

/// Hand-rolled flag parser: every option takes exactly one value.
struct Options {
    pairs: Vec<(String, String)>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, Error> {
        let mut pairs = Vec::new();
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(usage_error(&format!("unexpected argument {flag:?}")));
            };
            let Some(value) = iter.next() else {
                return Err(usage_error(&format!("--{name} needs a value")));
            };
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Options { pairs })
    }

    fn take(&mut self, name: &str) -> Option<String> {
        let idx = self.pairs.iter().position(|(n, _)| n == name)?;
        Some(self.pairs.remove(idx).1)
    }

    fn take_parsed<T: FromStr>(&mut self, name: &str, default: T) -> Result<T, Error> {
        match self.take(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| usage_error(&format!("invalid value {raw:?} for --{name}"))),
        }
    }

    fn require(&mut self, name: &str) -> Result<String, Error> {
        self.take(name)
            .ok_or_else(|| usage_error(&format!("--{name} is required")))
    }

    fn finish(self) -> Result<(), Error> {
        match self.pairs.first() {
            None => Ok(()),
            Some((name, _)) => Err(usage_error(&format!("unknown option --{name}"))),
        }
    }
}

fn interval_from(opts: &mut Options) -> Result<IntervalConfig, Error> {
    let interval_len: u64 = opts.take_parsed("interval-len", 10_000)?;
    let threshold: f64 = opts.take_parsed("threshold", 0.01)?;
    Ok(IntervalConfig::new(interval_len, threshold)?)
}

fn profiler_from(opts: &mut Options) -> Result<ProfilerSpec, Error> {
    match opts.take("profiler") {
        None => Ok(ProfilerSpec::MultiHash(MultiHashConfig::best())),
        Some(raw) => raw.parse(),
    }
}

fn cmd_record(mut opts: Options) -> Result<(), Error> {
    let spec: StreamSpec = opts
        .require("stream")?
        .parse()
        .map_err(|e| usage_error(&format!("{e}")))?;
    let out = opts.require("out")?;
    let events: u64 = opts.take_parsed("events", 1_000_000)?;
    let chunk_events: usize = opts.take_parsed("chunk-events", 1 << 16)?;
    opts.finish()?;

    let mut writer = TraceWriter::create(&out, spec.kind.into())?.with_chunk_events(chunk_events);
    writer.write_all(spec.events().take(events as usize))?;
    let written = writer.events_written();
    writer.finish()?;
    let bytes = std::fs::metadata(&out)?.len();
    println!(
        "recorded {written} events from {spec} to {out}: {bytes} bytes \
         ({:.2} bytes/event)",
        bytes as f64 / written.max(1) as f64
    );
    Ok(())
}

fn cmd_info(mut opts: Options) -> Result<(), Error> {
    let path = opts.require("trace")?;
    opts.finish()?;

    let mut reader = TraceReader::open(&path)?;
    println!("trace:   {path}");
    println!("format:  version {} ({})", reader.version(), reader.kind());
    let mut events = 0u64;
    for item in reader.by_ref() {
        item?;
        events += 1;
    }
    println!("chunks:  {}", reader.chunks_read());
    println!("events:  {events}");
    println!("size:    {} bytes", std::fs::metadata(&path)?.len());
    Ok(())
}

fn print_report(report: &EngineReport, top: usize) {
    for profile in &report.profiles {
        let candidates = profile.candidates();
        print!(
            "interval {:>3}: {:>4} candidates |",
            profile.interval_index(),
            candidates.len()
        );
        for candidate in candidates.iter().take(top) {
            print!(
                " {:#x}:{}={}",
                candidate.tuple.pc().as_u64(),
                candidate.tuple.value().as_u64(),
                candidate.count
            );
        }
        println!();
    }
    println!(
        "{} events in {:.1} ms over {} shard(s): {:.2} Mevents/s, {} stall(s)",
        report.events,
        report.elapsed.as_secs_f64() * 1e3,
        report.shards.len(),
        report.events_per_sec() / 1e6,
        report.total_stalls()
    );
}

fn cmd_replay(mut opts: Options) -> Result<(), Error> {
    let path = opts.require("trace")?;
    let shards: usize = opts.take_parsed("shards", 1)?;
    let top: usize = opts.take_parsed("top", 8)?;
    let interval = interval_from(&mut opts)?;
    let profiler = profiler_from(&mut opts)?;
    let seed: u64 = opts.take_parsed("seed", 51_966)?;
    opts.finish()?;

    let engine = ShardedEngine::new(EngineConfig::new(shards), interval, profiler, seed);
    let report = engine.run_results(TraceReader::open(&path)?)?;
    print_report(&report, top);
    Ok(())
}

fn cmd_bench(mut opts: Options) -> Result<(), Error> {
    let spec: StreamSpec = opts
        .require("stream")?
        .parse()
        .map_err(|e| usage_error(&format!("{e}")))?;
    let events: u64 = opts.take_parsed("events", 1_000_000)?;
    let shard_list = opts.take("shards").unwrap_or_else(|| "1,8".to_string());
    let shard_counts: Vec<usize> = shard_list
        .split(',')
        .map(|s| s.trim().parse())
        .collect::<Result<_, _>>()
        .map_err(|_| usage_error("--shards needs a comma-separated list of counts"))?;
    let interval = interval_from(&mut opts)?;
    let profiler = profiler_from(&mut opts)?;
    let seed: u64 = opts.take_parsed("seed", 51_966)?;
    opts.finish()?;

    println!(
        "bench {spec}: {events} events, {profiler}, interval {}, threshold {}",
        interval.interval_len(),
        interval.threshold_fraction()
    );
    let mut baseline = None;
    for &shards in &shard_counts {
        let engine = ShardedEngine::new(EngineConfig::new(shards), interval, profiler, seed);
        let report = engine.run(spec.events().take(events as usize))?;
        let rate = report.events_per_sec();
        let speedup = match baseline {
            None => {
                baseline = Some(rate);
                1.0
            }
            Some(base) => rate / base,
        };
        println!(
            "  {shards:>3} shard(s): {:>8.2} Mevents/s  ({:.1} ms, {:>4} stalls, {:.2}x)",
            rate / 1e6,
            report.elapsed.as_secs_f64() * 1e3,
            report.total_stalls(),
            speedup
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "record" => Options::parse(rest).and_then(cmd_record),
        "info" => Options::parse(rest).and_then(cmd_info),
        "replay" => Options::parse(rest).and_then(cmd_replay),
        "bench" => Options::parse(rest).and_then(cmd_bench),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mhp-pipeline: {e}");
            ExitCode::FAILURE
        }
    }
}
