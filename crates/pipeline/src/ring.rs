//! Bounded single-producer/single-consumer ring channel for batch handoff.
//!
//! The sharded engine hands a whole sub-batch (thousands of events) across
//! this channel at a time, so the per-operation cost is amortised over the
//! batch. That lets us keep the crate's `#![forbid(unsafe_code)]` guarantee:
//! each slot is a `Mutex<Option<T>>`, and the SPSC protocol (the producer
//! only ever touches the `tail` slot, the consumer only the `head` slot,
//! and the atomic counters fence the ownership handoff) means those slot
//! locks are never contended in practice.
//!
//! Semantics match what the dispatch plane needs:
//!
//! - [`Sender::try_send`] returns the value back on a full ring or a dead
//!   consumer, so the caller can count a stall and fall back to blocking.
//! - [`Sender::send`] parks on a condvar until a slot frees, returning the
//!   value only if the consumer disconnected.
//! - [`Receiver::recv`] drains every message that was sent before the
//!   producer disconnected, then reports [`RecvError::Disconnected`].
//! - Dropping either end wakes the peer immediately.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Error returned by [`Sender::try_send`]; carries the value back.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The ring is at capacity. Retry later or fall back to [`Sender::send`].
    Full(T),
    /// The receiver was dropped; no further send can succeed.
    Disconnected(T),
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// The sender was dropped and the ring is drained.
    Disconnected,
}

/// Error returned by [`Receiver::recv`] once the channel is dead and dry.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

struct Shared<T> {
    slots: Vec<Mutex<Option<T>>>,
    /// Monotonic count of completed pushes (not reduced modulo capacity).
    tail: AtomicU64,
    /// Monotonic count of completed pops.
    head: AtomicU64,
    sender_alive: AtomicBool,
    receiver_alive: AtomicBool,
    /// Guards nothing by itself; exists so the condvars have a lock to pair
    /// with. State lives in the atomics above.
    park: Mutex<()>,
    /// Signalled when a slot frees up or the receiver disconnects.
    producer_cv: Condvar,
    /// Signalled when a message lands or the sender disconnects.
    consumer_cv: Condvar,
}

impl<T> Shared<T> {
    fn len(&self) -> u64 {
        self.tail.load(Ordering::Acquire) - self.head.load(Ordering::Acquire)
    }
}

/// Producing half of the ring. Not cloneable: strictly single-producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Consuming half of the ring. Not cloneable: strictly single-consumer.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ring::Sender")
            .field("len", &self.shared.len())
            .field("capacity", &self.shared.slots.len())
            .finish()
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ring::Receiver")
            .field("len", &self.shared.len())
            .field("capacity", &self.shared.slots.len())
            .finish()
    }
}

/// Create a bounded SPSC ring holding at most `capacity` messages.
///
/// # Panics
///
/// Panics if `capacity` is zero; a rendezvous ring has no slot to park a
/// batch in and the engine never asks for one.
pub fn ring<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "ring capacity must be at least 1");
    let shared = Arc::new(Shared {
        slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        tail: AtomicU64::new(0),
        head: AtomicU64::new(0),
        sender_alive: AtomicBool::new(true),
        receiver_alive: AtomicBool::new(true),
        park: Mutex::new(()),
        producer_cv: Condvar::new(),
        consumer_cv: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Upper bound on a single park. The protocol re-checks state on every
/// wakeup, so this is pure robustness against a lost notify, not a
/// correctness requirement.
const PARK_TIMEOUT: Duration = Duration::from_millis(50);

impl<T> Sender<T> {
    /// Attempt to enqueue without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let shared = &self.shared;
        if !shared.receiver_alive.load(Ordering::Acquire) {
            return Err(TrySendError::Disconnected(value));
        }
        let tail = shared.tail.load(Ordering::Relaxed);
        if tail - shared.head.load(Ordering::Acquire) >= shared.slots.len() as u64 {
            return Err(TrySendError::Full(value));
        }
        let slot = (tail % shared.slots.len() as u64) as usize;
        *shared.slots[slot].lock().expect("ring slot poisoned") = Some(value);
        shared.tail.store(tail + 1, Ordering::Release);
        drop(shared.park.lock().expect("ring park poisoned"));
        shared.consumer_cv.notify_one();
        Ok(())
    }

    /// Enqueue, parking until a slot frees. Returns the value back only if
    /// the receiver disconnected before the message could be enqueued.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut value = value;
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(v)) => return Err(v),
                Err(TrySendError::Full(v)) => {
                    value = v;
                    let shared = &self.shared;
                    let guard = shared.park.lock().expect("ring park poisoned");
                    // Re-check under the lock so a concurrent pop's notify
                    // cannot slip between the check and the wait.
                    if shared.len() >= shared.slots.len() as u64
                        && shared.receiver_alive.load(Ordering::Acquire)
                    {
                        let _ = shared
                            .producer_cv
                            .wait_timeout(guard, PARK_TIMEOUT)
                            .expect("ring park poisoned");
                    }
                }
            }
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.len() as usize
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True while the receiving half is still alive.
    pub fn receiver_alive(&self) -> bool {
        self.shared.receiver_alive.load(Ordering::Acquire)
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.shared.sender_alive.store(false, Ordering::Release);
        drop(self.shared.park.lock().expect("ring park poisoned"));
        self.shared.consumer_cv.notify_one();
    }
}

impl<T> Receiver<T> {
    /// Attempt to dequeue without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &self.shared;
        let head = shared.head.load(Ordering::Relaxed);
        if shared.tail.load(Ordering::Acquire) == head {
            if !shared.sender_alive.load(Ordering::Acquire) {
                // Re-check: the sender may have pushed between the tail
                // load and the alive load.
                if shared.tail.load(Ordering::Acquire) == head {
                    return Err(TryRecvError::Disconnected);
                }
            } else {
                return Err(TryRecvError::Empty);
            }
        }
        let slot = (head % shared.slots.len() as u64) as usize;
        let value = shared.slots[slot]
            .lock()
            .expect("ring slot poisoned")
            .take()
            .expect("ring protocol violation: published slot was empty");
        shared.head.store(head + 1, Ordering::Release);
        drop(shared.park.lock().expect("ring park poisoned"));
        shared.producer_cv.notify_one();
        Ok(value)
    }

    /// Dequeue, parking until a message arrives. Drains messages already
    /// queued even after the sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        loop {
            match self.try_recv() {
                Ok(value) => return Ok(value),
                Err(TryRecvError::Disconnected) => return Err(RecvError),
                Err(TryRecvError::Empty) => {
                    let shared = &self.shared;
                    let guard = shared.park.lock().expect("ring park poisoned");
                    if shared.len() == 0 && shared.sender_alive.load(Ordering::Acquire) {
                        let _ = shared
                            .consumer_cv
                            .wait_timeout(guard, PARK_TIMEOUT)
                            .expect("ring park poisoned");
                    }
                }
            }
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.len() as usize
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receiver_alive.store(false, Ordering::Release);
        drop(self.shared.park.lock().expect("ring park poisoned"));
        self.shared.producer_cv.notify_one();
    }
}

impl<T> Iterator for Receiver<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn round_trips_in_order() {
        let (tx, rx) = ring::<u32>(4);
        for i in 0..4 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(tx.try_send(99), Err(TrySendError::Full(99)));
        for i in 0..4 {
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn capacity_one_alternates() {
        let (tx, rx) = ring::<&'static str>(1);
        tx.try_send("a").unwrap();
        assert_eq!(tx.try_send("b"), Err(TrySendError::Full("b")));
        assert_eq!(rx.try_recv(), Ok("a"));
        tx.try_send("b").unwrap();
        assert_eq!(rx.try_recv(), Ok("b"));
    }

    #[test]
    fn receiver_drop_fails_sends() {
        let (tx, rx) = ring::<u8>(2);
        drop(rx);
        assert_eq!(tx.try_send(7), Err(TrySendError::Disconnected(7)));
        assert_eq!(tx.send(7), Err(7));
        assert!(!tx.receiver_alive());
    }

    #[test]
    fn sender_drop_drains_then_disconnects() {
        let (tx, rx) = ring::<u8>(4);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocking_send_waits_for_space() {
        let (tx, rx) = ring::<u64>(1);
        tx.try_send(0).unwrap();
        let producer = thread::spawn(move || {
            for i in 1..64 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..64 {
            got.push(rx.recv().unwrap());
        }
        producer.join().unwrap();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn cross_thread_stress_preserves_order() {
        let (tx, rx) = ring::<u64>(8);
        let n = 10_000u64;
        let producer = thread::spawn(move || {
            for i in 0..n {
                tx.send(i).unwrap();
            }
        });
        let mut expected = 0;
        for value in rx {
            assert_eq!(value, expected);
            expected += 1;
        }
        assert_eq!(expected, n);
        producer.join().unwrap();
    }

    #[test]
    fn len_tracks_depth() {
        let (tx, rx) = ring::<u8>(3);
        assert!(tx.is_empty() && rx.is_empty());
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.try_recv().unwrap();
        assert_eq!(rx.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = ring::<u8>(0);
    }
}
