//! The binary trace format: durable capture of a profiling event stream.
//!
//! A trace decouples *capture* from *processing*: a benchmark's event stream
//! is recorded once and can then be replayed deterministically through any
//! profiler configuration, any number of shards, or a throughput bench —
//! the same shape as production profiling backends that ship pprof-style
//! payloads between a collector and its consumers.
//!
//! ## Layout
//!
//! ```text
//! header   := magic[8] = "MHPTRC\r\n"  version:u16le  kind:u8  flags:u8  reserved:u32le
//! chunk    := payload_len:u32le  record_count:u32le  crc32:u32le  payload[payload_len]
//! payload  := record*            (exactly record_count records)
//! record   := varint(zigzag(pc - prev_pc))  varint(value)
//! end      := 12 zero bytes      (a chunk header with payload_len = record_count = crc = 0)
//! ```
//!
//! * All integers are little-endian; varints are LEB128 over `u64`.
//! * PCs are delta-encoded against the previous record **within the same
//!   chunk** (`prev_pc` starts at 0 per chunk), zig-zag mapped so nearby
//!   PCs — the common case in instruction streams — cost one byte.
//! * Each chunk carries a CRC32 (IEEE, reflected) over its payload, so
//!   corruption is localized to a chunk and detected before any record of
//!   that chunk is surfaced.
//! * The explicit all-zero end marker distinguishes a complete trace from
//!   one whose tail was lost: a reader that hits EOF before the marker
//!   reports [`Error::Truncated`] even if the loss fell exactly on a chunk
//!   boundary. EOF *inside* a chunk (a torn write, a connection cut
//!   mid-transfer) is the distinct [`Error::UnexpectedEof`], so recovery
//!   logic can tell "tail missing" from "stream died mid-record".

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use mhp_core::Tuple;
use mhp_trace::StreamKind;

use crate::error::Error;

/// First eight bytes of every trace. The `\r\n` tail catches ASCII-mode
/// transfer mangling, like PNG's magic does.
pub const MAGIC: [u8; 8] = *b"MHPTRC\r\n";

/// Current (and only) format version.
pub const FORMAT_VERSION: u16 = 1;

/// Default number of events buffered into one chunk.
pub const DEFAULT_CHUNK_EVENTS: usize = 1 << 16;

/// Largest chunk payload a reader will accept, in bytes (64 MiB).
///
/// A record costs at most 20 payload bytes (two maximal varints), so this
/// admits chunks of ~3.3M worst-case events — far beyond any real writer —
/// while bounding the allocation an adversarial or corrupted header can
/// demand. Headers declaring more fail with [`Error::ChunkTooLarge`]
/// *before* any buffer is allocated.
pub const MAX_CHUNK_BYTES: usize = 1 << 26;

/// Bytes in a chunk header: `payload_len:u32 record_count:u32 crc32:u32`.
pub const CHUNK_HEADER_BYTES: usize = 12;

/// What the recorded tuples mean. Profilers do not care, but tooling uses
/// this to label output and pick sensible defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// `<load PC, value>` events.
    Value,
    /// `<branch PC, target PC>` events.
    Edge,
    /// Tuples with no declared interpretation.
    Raw,
}

impl TraceKind {
    /// The kind's lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Value => "value",
            TraceKind::Edge => "edge",
            TraceKind::Raw => "raw",
        }
    }

    fn to_byte(self) -> u8 {
        match self {
            TraceKind::Value => 0,
            TraceKind::Edge => 1,
            TraceKind::Raw => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, Error> {
        match b {
            0 => Ok(TraceKind::Value),
            1 => Ok(TraceKind::Edge),
            2 => Ok(TraceKind::Raw),
            other => Err(Error::UnknownKind(other)),
        }
    }
}

impl From<StreamKind> for TraceKind {
    fn from(kind: StreamKind) -> Self {
        match kind {
            StreamKind::Value => TraceKind::Value,
            StreamKind::Edge => TraceKind::Edge,
        }
    }
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// --- CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) ----------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 checksum (IEEE, as used by zlib/PNG/Ethernet) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// --- varint / zigzag -----------------------------------------------------

fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint from `payload` starting at `*pos`; `None` on
/// malformed or exhausted input.
fn read_varint(payload: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = payload.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow u64
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// --- chunk-level encode/decode -------------------------------------------
//
// One chunk is the unit shared between the on-disk trace format and the
// `mhp-server` ingest wire protocol: a client frames each batch of events as
// exactly one chunk, so the CRC and the delta compression travel over TCP
// unchanged.

/// Appends one record (PC delta against `prev_pc`, then the value) to
/// `payload` and returns the new previous PC.
#[inline]
fn push_record(payload: &mut Vec<u8>, prev_pc: u64, tuple: Tuple) -> u64 {
    let pc = tuple.pc().as_u64();
    let delta = pc.wrapping_sub(prev_pc) as i64;
    push_varint(payload, zigzag(delta));
    push_varint(payload, tuple.value().as_u64());
    pc
}

/// The 12-byte chunk header for a finished payload.
fn chunk_header(payload: &[u8], record_count: u32) -> [u8; CHUNK_HEADER_BYTES] {
    let mut header = [0u8; CHUNK_HEADER_BYTES];
    header[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..8].copy_from_slice(&record_count.to_le_bytes());
    header[8..12].copy_from_slice(&crc32(payload).to_le_bytes());
    header
}

/// Validates a chunk header's declared sizes before anything is allocated.
///
/// Rejects payloads over [`MAX_CHUNK_BYTES`] and record counts that cannot
/// fit in the declared payload (every record costs at least 2 bytes), so a
/// hostile header bounded by `u32` fields can demand at most
/// [`MAX_CHUNK_BYTES`] of memory.
fn validate_chunk_header(payload_len: u64, record_count: u32, chunk: u64) -> Result<(), Error> {
    if payload_len > MAX_CHUNK_BYTES as u64 {
        return Err(Error::ChunkTooLarge {
            chunk,
            declared: payload_len,
        });
    }
    if u64::from(record_count) * 2 > payload_len {
        return Err(Error::ChunkDecode { chunk });
    }
    Ok(())
}

/// Decodes `record_count` records from a CRC-verified payload, appending
/// them to `events` (cleared first). Taking the output buffer lets the
/// ingest hot paths (trace replay, server chunk ingest) reuse one
/// allocation across chunks.
fn decode_chunk_payload_into(
    payload: &[u8],
    record_count: u32,
    chunk: u64,
    events: &mut Vec<Tuple>,
) -> Result<(), Error> {
    events.clear();
    events.reserve(record_count as usize);
    let mut pos = 0usize;
    let mut prev_pc = 0u64;
    for _ in 0..record_count {
        let (delta, value) = match (
            read_varint(payload, &mut pos),
            read_varint(payload, &mut pos),
        ) {
            (Some(d), Some(v)) => (d, v),
            _ => return Err(Error::ChunkDecode { chunk }),
        };
        let pc = prev_pc.wrapping_add(unzigzag(delta) as u64);
        prev_pc = pc;
        events.push(Tuple::new(pc, value));
    }
    if pos != payload.len() {
        // Extra undecoded bytes: count and payload disagree.
        return Err(Error::ChunkDecode { chunk });
    }
    Ok(())
}

/// Encodes `events` as one self-contained chunk (header + payload), exactly
/// as [`TraceWriter`] would flush it.
///
/// This is the unit the `mhp-server` wire protocol ships per ingest request:
/// the delta encoding restarts at PC 0 and the CRC covers the payload, so a
/// chunk is independently decodable and corruption-checked wherever it
/// lands.
///
/// # Examples
///
/// ```
/// use mhp_core::Tuple;
/// use mhp_pipeline::format::{decode_chunk, encode_chunk};
///
/// let events = vec![Tuple::new(0x400100, 7), Tuple::new(0x400108, 9)];
/// let bytes = encode_chunk(&events);
/// let (decoded, consumed) = decode_chunk(&bytes).unwrap();
/// assert_eq!(decoded, events);
/// assert_eq!(consumed, bytes.len());
/// ```
pub fn encode_chunk(events: &[Tuple]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(events.len() * 3);
    let mut prev_pc = 0u64;
    for &tuple in events {
        prev_pc = push_record(&mut payload, prev_pc, tuple);
    }
    let header = chunk_header(&payload, events.len() as u32);
    let mut chunk = Vec::with_capacity(CHUNK_HEADER_BYTES + payload.len());
    chunk.extend_from_slice(&header);
    chunk.extend_from_slice(&payload);
    chunk
}

/// Decodes one chunk from the front of `bytes`, returning its events and the
/// number of bytes consumed.
///
/// Applies the full adversarial-input gauntlet before touching the payload:
/// an empty input yields [`Error::Truncated`], a partial header or payload
/// yields [`Error::UnexpectedEof`] (the chunk is torn), implausible
/// declared sizes yield [`Error::ChunkTooLarge`] or [`Error::ChunkDecode`]
/// without allocating, and payload corruption yields [`Error::CrcMismatch`].
/// An all-zero header (the trace end marker) decodes as a zero-record chunk.
pub fn decode_chunk(bytes: &[u8]) -> Result<(Vec<Tuple>, usize), Error> {
    let mut events = Vec::new();
    let consumed = decode_chunk_into(bytes, &mut events)?;
    Ok((events, consumed))
}

/// [`decode_chunk`], but decoding into a caller-owned buffer (cleared
/// first) and returning only the bytes consumed.
///
/// This is the allocation-free form the server's ingest loop uses: one
/// `Vec<Tuple>` lives for the whole connection and every chunk decodes into
/// it, instead of allocating a fresh vector per request.
///
/// # Errors
///
/// Exactly as [`decode_chunk`]. On error the buffer contents are
/// unspecified (but always safe to reuse for the next call).
pub fn decode_chunk_into(bytes: &[u8], events: &mut Vec<Tuple>) -> Result<usize, Error> {
    if bytes.len() < CHUNK_HEADER_BYTES {
        // No bytes at all is a clean boundary; a partial header is a torn
        // chunk — the distinction callers use to tell "stream ended" from
        // "stream died mid-chunk".
        return Err(if bytes.is_empty() {
            Error::Truncated {
                context: "chunk header",
            }
        } else {
            Error::UnexpectedEof {
                context: "chunk header",
            }
        });
    }
    let payload_len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as u64;
    let record_count = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let expected_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    validate_chunk_header(payload_len, record_count, 0)?;
    let payload_len = payload_len as usize;
    let rest = &bytes[CHUNK_HEADER_BYTES..];
    if rest.len() < payload_len {
        return Err(Error::UnexpectedEof {
            context: "chunk payload",
        });
    }
    let payload = &rest[..payload_len];
    let actual_crc = crc32(payload);
    if actual_crc != expected_crc {
        return Err(Error::CrcMismatch {
            chunk: 0,
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    decode_chunk_payload_into(payload, record_count, 0, events)?;
    Ok(CHUNK_HEADER_BYTES + payload_len)
}

/// Total bytes (header plus declared payload) the chunk at the front of
/// `bytes` occupies — what decoding it would return as consumed — computed
/// from the header alone, without touching the payload (no CRC, no record
/// decode).
///
/// This is the cheap pre-check for callers that require a buffer to hold
/// exactly one chunk: comparing the result against the buffer length
/// rejects trailing garbage *before* any record reaches a profiler, so the
/// resulting protocol error cannot leave state half-mutated behind a
/// request the client will retry.
///
/// # Errors
///
/// The header subset of [`decode_chunk_into`]'s gauntlet:
/// [`Error::Truncated`] / [`Error::UnexpectedEof`] for a missing or partial
/// header, [`Error::ChunkTooLarge`] / [`Error::ChunkDecode`] for
/// implausible declared sizes. Payload-level damage (a short payload, a CRC
/// mismatch) is *not* detected here — [`ChunkDecoder::open`] catches it,
/// still before any record is decoded.
pub fn declared_chunk_len(bytes: &[u8]) -> Result<usize, Error> {
    if bytes.len() < CHUNK_HEADER_BYTES {
        return Err(if bytes.is_empty() {
            Error::Truncated {
                context: "chunk header",
            }
        } else {
            Error::UnexpectedEof {
                context: "chunk header",
            }
        });
    }
    let payload_len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as u64;
    let record_count = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    validate_chunk_header(payload_len, record_count, 0)?;
    Ok(CHUNK_HEADER_BYTES + payload_len as usize)
}

/// A resumable decoder over one chunk: the caller pulls records a sub-run
/// at a time instead of receiving the whole chunk as one `Vec<Tuple>`.
///
/// This is what lets the sharded engine *partition while decoding*: each
/// sub-run is routed straight into per-shard batches (sized to the batch
/// cap and clipped at interval boundaries), so the chunk is never
/// materialized in one flat buffer and then re-scanned.
///
/// [`open`](Self::open) runs the same adversarial-input gauntlet as
/// [`decode_chunk_into`] — header validation and the payload CRC are
/// checked *before* any record is decoded, so a corrupt chunk is rejected
/// up front rather than half-ingested. A record-level inconsistency
/// (varint damage the CRC-guarded payload cannot express in practice) can
/// still surface mid-stream from [`decode_some`](Self::decode_some).
///
/// # Examples
///
/// ```
/// use mhp_core::Tuple;
/// use mhp_pipeline::format::{encode_chunk, ChunkDecoder};
///
/// let events = vec![Tuple::new(0x400100, 7), Tuple::new(0x400108, 9)];
/// let bytes = encode_chunk(&events);
/// let mut decoder = ChunkDecoder::open(&bytes).unwrap();
/// let mut got = Vec::new();
/// while decoder.remaining() > 0 {
///     decoder.decode_some(1, |t| got.push(t)).unwrap();
/// }
/// decoder.finish().unwrap();
/// assert_eq!(got, events);
/// assert_eq!(decoder.consumed(), bytes.len());
/// ```
#[derive(Debug)]
pub struct ChunkDecoder<'a> {
    payload: &'a [u8],
    pos: usize,
    remaining: usize,
    prev_pc: u64,
}

impl<'a> ChunkDecoder<'a> {
    /// Validates the chunk header and payload CRC at the front of `bytes`
    /// and returns a decoder positioned at the first record.
    ///
    /// # Errors
    ///
    /// Exactly as [`decode_chunk_into`]: [`Error::Truncated`] /
    /// [`Error::UnexpectedEof`] for torn input, [`Error::ChunkTooLarge`] /
    /// [`Error::ChunkDecode`] for implausible declared sizes and
    /// [`Error::CrcMismatch`] for payload corruption.
    pub fn open(bytes: &'a [u8]) -> Result<Self, Error> {
        if bytes.len() < CHUNK_HEADER_BYTES {
            return Err(if bytes.is_empty() {
                Error::Truncated {
                    context: "chunk header",
                }
            } else {
                Error::UnexpectedEof {
                    context: "chunk header",
                }
            });
        }
        let payload_len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as u64;
        let record_count = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        let expected_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        validate_chunk_header(payload_len, record_count, 0)?;
        let payload_len = payload_len as usize;
        let rest = &bytes[CHUNK_HEADER_BYTES..];
        if rest.len() < payload_len {
            return Err(Error::UnexpectedEof {
                context: "chunk payload",
            });
        }
        let payload = &rest[..payload_len];
        let actual_crc = crc32(payload);
        if actual_crc != expected_crc {
            return Err(Error::CrcMismatch {
                chunk: 0,
                expected: expected_crc,
                actual: actual_crc,
            });
        }
        Ok(ChunkDecoder {
            payload,
            pos: 0,
            remaining: record_count as usize,
            prev_pc: 0,
        })
    }

    /// Records not yet decoded.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Total bytes this chunk occupies at the front of the input (header
    /// plus payload) — what [`decode_chunk_into`] returns as consumed.
    pub fn consumed(&self) -> usize {
        CHUNK_HEADER_BYTES + self.payload.len()
    }

    /// Decodes up to `max` records, feeding each tuple to `sink` in stream
    /// order, and returns how many were decoded
    /// (`min(max, self.remaining())`).
    ///
    /// # Errors
    ///
    /// [`Error::ChunkDecode`] if the payload runs out mid-record.
    pub fn decode_some(&mut self, max: usize, mut sink: impl FnMut(Tuple)) -> Result<usize, Error> {
        let take = max.min(self.remaining);
        for _ in 0..take {
            let (delta, value) = match (
                read_varint(self.payload, &mut self.pos),
                read_varint(self.payload, &mut self.pos),
            ) {
                (Some(d), Some(v)) => (d, v),
                _ => return Err(Error::ChunkDecode { chunk: 0 }),
            };
            let pc = self.prev_pc.wrapping_add(unzigzag(delta) as u64);
            self.prev_pc = pc;
            sink(Tuple::new(pc, value));
        }
        self.remaining -= take;
        Ok(take)
    }

    /// Verifies the payload was fully consumed once every record is
    /// decoded — the "trailing undecoded bytes" check
    /// [`decode_chunk_payload_into`] performs at the end.
    ///
    /// # Errors
    ///
    /// [`Error::ChunkDecode`] if records remain or payload bytes are left
    /// over.
    pub fn finish(&self) -> Result<(), Error> {
        if self.remaining != 0 || self.pos != self.payload.len() {
            return Err(Error::ChunkDecode { chunk: 0 });
        }
        Ok(())
    }
}

/// Decodes one chunk directly into per-shard sub-batches: record `t` lands
/// in `outs[shard_of(t, outs.len())]`, in stream order within each shard.
/// Every output buffer is cleared first; returns the bytes consumed.
///
/// Concatenating the sub-batches in shard order yields a permutation of
/// [`decode_chunk_into`]'s output, and tuple-stable partitioning means no
/// tuple ever appears in two sub-batches. This is the standalone form of
/// the engine's partition-while-decoding ingest
/// ([`EngineSession::ingest_chunk`](crate::EngineSession::ingest_chunk)),
/// kept separate so the property is testable without spinning up workers.
///
/// # Errors
///
/// Exactly as [`decode_chunk_into`].
///
/// # Panics
///
/// Panics if `outs` is empty — there is no shard to route to.
pub fn decode_chunk_partitioned(bytes: &[u8], outs: &mut [Vec<Tuple>]) -> Result<usize, Error> {
    assert!(
        !outs.is_empty(),
        "decode_chunk_partitioned needs at least one shard buffer"
    );
    let shards = outs.len();
    for out in outs.iter_mut() {
        out.clear();
    }
    let mut decoder = ChunkDecoder::open(bytes)?;
    let remaining = decoder.remaining();
    decoder.decode_some(remaining, |tuple| {
        outs[crate::engine::shard_of(tuple, shards)].push(tuple);
    })?;
    decoder.finish()?;
    Ok(decoder.consumed())
}

// --- writer --------------------------------------------------------------

/// Streams tuples into the binary trace format.
///
/// Events are buffered into chunks of [`chunk_events`](Self::chunk_events)
/// records; each full chunk is varint-encoded, checksummed and flushed.
/// **Call [`finish`](Self::finish)** — it writes the trailing partial chunk
/// and the end-of-trace marker; a dropped writer leaves a trace that
/// readers will (correctly) reject as truncated.
///
/// # Examples
///
/// ```
/// use mhp_core::Tuple;
/// use mhp_pipeline::{TraceKind, TraceReader, TraceWriter};
///
/// let mut writer = TraceWriter::new(Vec::new(), TraceKind::Value);
/// writer.write_event(Tuple::new(0x400100, 7)).unwrap();
/// writer.write_event(Tuple::new(0x400108, 9)).unwrap();
/// let bytes = writer.finish().unwrap();
///
/// let reader = TraceReader::new(bytes.as_slice()).unwrap();
/// let events: Vec<Tuple> = reader.collect::<Result<_, _>>().unwrap();
/// assert_eq!(events, vec![Tuple::new(0x400100, 7), Tuple::new(0x400108, 9)]);
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    kind: TraceKind,
    chunk_events: usize,
    payload: Vec<u8>,
    chunk_records: u32,
    prev_pc: u64,
    events: u64,
    chunks: u64,
    header_written: bool,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates a trace file at `path` (buffered).
    pub fn create(path: impl AsRef<Path>, kind: TraceKind) -> Result<Self, Error> {
        Ok(TraceWriter::new(BufWriter::new(File::create(path)?), kind))
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `sink` in a trace writer; the header is written lazily with
    /// the first chunk (or by [`finish`](Self::finish) for empty traces).
    pub fn new(sink: W, kind: TraceKind) -> Self {
        TraceWriter {
            sink,
            kind,
            chunk_events: DEFAULT_CHUNK_EVENTS,
            payload: Vec::new(),
            chunk_records: 0,
            prev_pc: 0,
            events: 0,
            chunks: 0,
            header_written: false,
        }
    }

    /// Sets the number of events per chunk (min 1). Smaller chunks localize
    /// corruption and bound replay memory; larger chunks compress deltas
    /// better and amortize the 12-byte chunk header further.
    pub fn with_chunk_events(mut self, chunk_events: usize) -> Self {
        self.chunk_events = chunk_events.max(1);
        self
    }

    /// Events per chunk.
    pub fn chunk_events(&self) -> usize {
        self.chunk_events
    }

    /// Events written so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Chunks flushed so far (not counting the buffered partial chunk).
    pub fn chunks_written(&self) -> u64 {
        self.chunks
    }

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors when a full chunk is flushed.
    pub fn write_event(&mut self, tuple: Tuple) -> Result<(), Error> {
        self.prev_pc = push_record(&mut self.payload, self.prev_pc, tuple);
        self.chunk_records += 1;
        self.events += 1;
        if self.chunk_records as usize >= self.chunk_events {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends every event from an iterator.
    pub fn write_all(&mut self, events: impl IntoIterator<Item = Tuple>) -> Result<(), Error> {
        for tuple in events {
            self.write_event(tuple)?;
        }
        Ok(())
    }

    /// Flushes the trailing chunk, writes the end-of-trace marker and
    /// returns the sink.
    pub fn finish(mut self) -> Result<W, Error> {
        self.write_header_if_needed()?;
        if self.chunk_records > 0 {
            self.flush_chunk()?;
        }
        self.sink.write_all(&[0u8; CHUNK_HEADER_BYTES])?;
        self.sink.flush()?;
        Ok(self.sink)
    }

    fn write_header_if_needed(&mut self) -> Result<(), io::Error> {
        if self.header_written {
            return Ok(());
        }
        self.sink.write_all(&MAGIC)?;
        self.sink.write_all(&FORMAT_VERSION.to_le_bytes())?;
        self.sink.write_all(&[self.kind.to_byte(), 0])?;
        self.sink.write_all(&0u32.to_le_bytes())?;
        self.header_written = true;
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), Error> {
        self.write_header_if_needed()?;
        self.sink
            .write_all(&chunk_header(&self.payload, self.chunk_records))?;
        self.sink.write_all(&self.payload)?;
        self.payload.clear();
        self.chunk_records = 0;
        self.prev_pc = 0;
        self.chunks += 1;
        Ok(())
    }
}

// --- reader --------------------------------------------------------------

/// Decodes a binary trace back into its event stream.
///
/// Iterates `Result<Tuple, Error>`: decoding is streaming and chunk-at-a-
/// time, so a multi-gigabyte trace replays in constant memory, and a CRC or
/// structure error surfaces at the first affected chunk. After any error
/// the iterator fuses (yields `None`).
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    source: R,
    kind: TraceKind,
    version: u16,
    /// Decoded events of the current chunk, in reverse (pop order). Drained
    /// by iteration and refilled in place, so one allocation serves the
    /// whole trace.
    pending: Vec<Tuple>,
    /// Reused raw-payload buffer, resized (not reallocated, once warm) to
    /// each chunk's payload length.
    payload_buf: Vec<u8>,
    chunks_read: u64,
    events_read: u64,
    finished: bool,
    failed: bool,
}

impl TraceReader<BufReader<File>> {
    /// Opens a trace file (buffered).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, Error> {
        TraceReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the trace header.
    ///
    /// # Errors
    ///
    /// [`Error::BadMagic`], [`Error::UnsupportedVersion`],
    /// [`Error::UnknownKind`], [`Error::Truncated`] or I/O errors.
    pub fn new(mut source: R) -> Result<Self, Error> {
        let mut header = [0u8; 16];
        read_exact_classified(&mut source, &mut header, "header", false)?;
        if header[..8] != MAGIC {
            return Err(Error::BadMagic);
        }
        let version = u16::from_le_bytes([header[8], header[9]]);
        if version != FORMAT_VERSION {
            return Err(Error::UnsupportedVersion(version));
        }
        let kind = TraceKind::from_byte(header[10])?;
        Ok(TraceReader {
            source,
            kind,
            version,
            pending: Vec::new(),
            payload_buf: Vec::new(),
            chunks_read: 0,
            events_read: 0,
            finished: false,
            failed: false,
        })
    }

    /// The event kind recorded in the header.
    pub fn kind(&self) -> TraceKind {
        self.kind
    }

    /// The trace's format version.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Chunks fully decoded so far.
    pub fn chunks_read(&self) -> u64 {
        self.chunks_read
    }

    /// Events yielded so far.
    pub fn events_read(&self) -> u64 {
        self.events_read
    }

    /// Decodes the remaining events into a vector.
    pub fn read_all(self) -> Result<Vec<Tuple>, Error> {
        self.collect()
    }

    /// Loads the next chunk into `pending`. Returns `false` at the (valid)
    /// end of the trace.
    fn load_chunk(&mut self) -> Result<bool, Error> {
        loop {
            let mut chunk_header = [0u8; CHUNK_HEADER_BYTES];
            read_exact_classified(&mut self.source, &mut chunk_header, "chunk header", false)?;
            if chunk_header == [0u8; CHUNK_HEADER_BYTES] {
                // End-of-trace marker; anything after it is an error.
                let mut probe = [0u8; 1];
                match self.source.read(&mut probe)? {
                    0 => return Ok(false),
                    _ => return Err(Error::TrailingData),
                }
            }
            let payload_len = u64::from(u32::from_le_bytes(
                chunk_header[0..4].try_into().expect("4 bytes"),
            ));
            let record_count = u32::from_le_bytes(chunk_header[4..8].try_into().expect("4 bytes"));
            let expected_crc = u32::from_le_bytes(chunk_header[8..12].try_into().expect("4 bytes"));
            validate_chunk_header(payload_len, record_count, self.chunks_read)?;

            self.payload_buf.resize(payload_len as usize, 0);
            // The chunk header promised this payload: running out anywhere
            // inside it — even at byte zero — is a tear, not a boundary.
            read_exact_classified(
                &mut self.source,
                &mut self.payload_buf,
                "chunk payload",
                true,
            )?;
            let actual_crc = crc32(&self.payload_buf);
            if actual_crc != expected_crc {
                return Err(Error::CrcMismatch {
                    chunk: self.chunks_read,
                    expected: expected_crc,
                    actual: actual_crc,
                });
            }

            decode_chunk_payload_into(
                &self.payload_buf,
                record_count,
                self.chunks_read,
                &mut self.pending,
            )?;
            self.chunks_read += 1;
            if self.pending.is_empty() {
                // A legal but pointless empty chunk; keep scanning.
                continue;
            }
            self.pending.reverse();
            return Ok(true);
        }
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Tuple, Error>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(tuple) = self.pending.pop() {
            self.events_read += 1;
            return Some(Ok(tuple));
        }
        if self.finished || self.failed {
            return None;
        }
        match self.load_chunk() {
            Ok(true) => {
                let tuple = self.pending.pop().expect("loaded chunk is non-empty");
                self.events_read += 1;
                Some(Ok(tuple))
            }
            Ok(false) => {
                self.finished = true;
                None
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Reads exactly `buf.len()` bytes, classifying how the input ran out:
/// EOF *before the first byte* of the structure means the stream stopped
/// cleanly between structures ([`Error::Truncated`] — e.g. only the
/// end-of-trace marker is missing), while EOF *after* the structure had
/// begun means it tore mid-write ([`Error::UnexpectedEof`]). Set
/// `torn_from_start` for structures whose presence is already promised by
/// an earlier header (a chunk's payload): for those even a zero-byte read
/// is a tear, never a clean boundary.
fn read_exact_classified(
    source: &mut impl Read,
    buf: &mut [u8],
    context: &'static str,
    torn_from_start: bool,
) -> Result<(), Error> {
    let mut filled = 0;
    while filled < buf.len() {
        match source.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 && !torn_from_start {
                    Error::Truncated { context }
                } else {
                    Error::UnexpectedEof { context }
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(Error::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(events: &[Tuple], chunk_events: usize) -> Vec<Tuple> {
        let mut writer =
            TraceWriter::new(Vec::new(), TraceKind::Raw).with_chunk_events(chunk_events);
        writer.write_all(events.iter().copied()).unwrap();
        let bytes = writer.finish().unwrap();
        TraceReader::new(bytes.as_slice())
            .unwrap()
            .read_all()
            .unwrap()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varint_round_trips_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        assert_eq!(round_trip(&[], 4), Vec::<Tuple>::new());
    }

    #[test]
    fn events_round_trip_across_chunk_sizes() {
        let events: Vec<Tuple> = (0..1000u64)
            .map(|i| Tuple::new(0x40_0000 + (i % 37) * 4, i * 31 % 257))
            .collect();
        for chunk_events in [1, 7, 256, 1000, 5000] {
            assert_eq!(
                round_trip(&events, chunk_events),
                events,
                "chunk {chunk_events}"
            );
        }
    }

    #[test]
    fn extreme_pc_jumps_round_trip() {
        let events = vec![
            Tuple::new(u64::MAX, u64::MAX),
            Tuple::new(0, 0),
            Tuple::new(1 << 63, 42),
            Tuple::new(3, 1),
        ];
        assert_eq!(round_trip(&events, 2), events);
    }

    #[test]
    fn header_records_kind_and_version() {
        let bytes = TraceWriter::new(Vec::new(), TraceKind::Edge)
            .finish()
            .unwrap();
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.kind(), TraceKind::Edge);
        assert_eq!(reader.version(), FORMAT_VERSION);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = TraceWriter::new(Vec::new(), TraceKind::Raw)
            .finish()
            .unwrap();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            TraceReader::new(bytes.as_slice()),
            Err(Error::BadMagic)
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = TraceWriter::new(Vec::new(), TraceKind::Raw)
            .finish()
            .unwrap();
        bytes[8] = 0xFE;
        assert!(matches!(
            TraceReader::new(bytes.as_slice()),
            Err(Error::UnsupportedVersion(0xFE))
        ));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut bytes = TraceWriter::new(Vec::new(), TraceKind::Raw)
            .finish()
            .unwrap();
        bytes[10] = 99;
        assert!(matches!(
            TraceReader::new(bytes.as_slice()),
            Err(Error::UnknownKind(99))
        ));
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let mut writer = TraceWriter::new(Vec::new(), TraceKind::Raw);
        writer
            .write_all((0..100u64).map(|i| Tuple::new(i, i)))
            .unwrap();
        let mut bytes = writer.finish().unwrap();
        // Flip a bit inside the (single) chunk payload.
        let payload_start = 16 + CHUNK_HEADER_BYTES;
        bytes[payload_start + 10] ^= 0x04;
        let result: Result<Vec<Tuple>, Error> =
            TraceReader::new(bytes.as_slice()).unwrap().collect();
        assert!(matches!(result, Err(Error::CrcMismatch { chunk: 0, .. })));
    }

    #[test]
    fn truncation_is_detected_mid_chunk_and_at_boundary() {
        let mut writer = TraceWriter::new(Vec::new(), TraceKind::Raw).with_chunk_events(10);
        writer
            .write_all((0..40u64).map(|i| Tuple::new(i, i)))
            .unwrap();
        let bytes = writer.finish().unwrap();
        // A cut mid-way through the stream lands inside a chunk: torn.
        let mid: Result<Vec<Tuple>, Error> = TraceReader::new(&bytes[..bytes.len() / 2])
            .unwrap()
            .collect();
        assert!(matches!(mid, Err(Error::UnexpectedEof { .. })));
        // A cut exactly at the end-of-trace marker (drop the marker only)
        // ends on a chunk boundary: clean truncation, but still an error —
        // the marker proves the tail was not silently lost.
        let no_marker: Result<Vec<Tuple>, Error> =
            TraceReader::new(&bytes[..bytes.len() - CHUNK_HEADER_BYTES])
                .unwrap()
                .collect();
        assert!(matches!(no_marker, Err(Error::Truncated { .. })));
    }

    #[test]
    fn torn_and_clean_truncation_are_distinguished_at_every_cut() {
        // Sweep every possible truncation point of a small trace: the reader
        // must fail typed at each one, reporting Truncated exactly when the
        // cut falls on a structure boundary and UnexpectedEof when it falls
        // inside one (and never panic, whatever the cut).
        let mut writer = TraceWriter::new(Vec::new(), TraceKind::Raw).with_chunk_events(4);
        writer
            .write_all((0..12u64).map(|i| Tuple::new(i * 8, i)))
            .unwrap();
        let bytes = writer.finish().unwrap();
        // Structure boundaries: after the 16-byte trace header and after
        // each complete chunk (header + payload).
        let mut boundaries = vec![16usize];
        let mut pos = 16;
        while pos < bytes.len() - CHUNK_HEADER_BYTES {
            let payload_len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += CHUNK_HEADER_BYTES + payload_len;
            boundaries.push(pos);
        }
        for cut in 16..bytes.len() - 1 {
            let result: Result<Vec<Tuple>, Error> =
                TraceReader::new(&bytes[..cut]).unwrap().collect();
            let err = result.unwrap_err();
            if boundaries.contains(&cut) {
                assert!(
                    matches!(err, Error::Truncated { .. }),
                    "cut {cut}: boundary cut must be clean truncation, got {err}"
                );
            } else {
                assert!(
                    matches!(err, Error::UnexpectedEof { .. }),
                    "cut {cut}: mid-structure cut must be a tear, got {err}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_after_marker_are_rejected() {
        let mut writer = TraceWriter::new(Vec::new(), TraceKind::Raw);
        writer.write_event(Tuple::new(1, 1)).unwrap();
        let mut bytes = writer.finish().unwrap();
        bytes.push(0xAB);
        let result: Result<Vec<Tuple>, Error> =
            TraceReader::new(bytes.as_slice()).unwrap().collect();
        assert!(matches!(result, Err(Error::TrailingData)));
    }

    /// Builds a full trace whose single chunk has an arbitrary (possibly
    /// lying) header: `header ++ payload`, wrapped in trace header + marker.
    fn trace_with_raw_chunk(payload_len: u32, record_count: u32, payload: &[u8]) -> Vec<u8> {
        let mut bytes = TraceWriter::new(Vec::new(), TraceKind::Raw)
            .finish()
            .unwrap();
        bytes.truncate(16); // keep the trace header, drop the end marker
        bytes.extend_from_slice(&payload_len.to_le_bytes());
        bytes.extend_from_slice(&record_count.to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&[0u8; CHUNK_HEADER_BYTES]); // end marker
        bytes
    }

    #[test]
    fn zero_record_empty_chunk_is_indistinguishable_from_the_end_marker() {
        // crc32(&[]) == 0, so a 0-payload / 0-record chunk header is
        // all-zero — exactly the end-of-trace marker. The reader treats it
        // as such and must then reject the *real* marker as trailing data.
        let bytes = trace_with_raw_chunk(0, 0, &[]);
        let events: Result<Vec<Tuple>, Error> =
            TraceReader::new(bytes.as_slice()).unwrap().collect();
        assert!(matches!(events, Err(Error::TrailingData)));
    }

    #[test]
    fn reader_rejects_zero_record_chunk_with_nonempty_payload() {
        // Declares bytes but no records: the payload can never be consumed.
        let bytes = trace_with_raw_chunk(3, 0, &[1, 2, 3]);
        let events: Result<Vec<Tuple>, Error> =
            TraceReader::new(bytes.as_slice()).unwrap().collect();
        assert!(matches!(events, Err(Error::ChunkDecode { chunk: 0 })));
    }

    #[test]
    fn reader_rejects_overlong_declared_chunk_without_allocating() {
        // Declares a ~4 GiB payload. Must fail fast on the header alone —
        // before any buffer of that size is allocated or read.
        let bytes = trace_with_raw_chunk(u32::MAX, 1, &[]);
        let events: Result<Vec<Tuple>, Error> =
            TraceReader::new(bytes.as_slice()).unwrap().collect();
        assert!(matches!(
            events,
            Err(Error::ChunkTooLarge { chunk: 0, declared }) if declared == u64::from(u32::MAX)
        ));
    }

    #[test]
    fn reader_rejects_record_count_exceeding_payload_capacity() {
        // u32::MAX records cannot fit in an 8-byte payload (records are
        // >= 2 bytes each); reject from the header, never decode.
        let payload = [0x02u8; 8];
        let bytes = trace_with_raw_chunk(8, u32::MAX, &payload);
        let events: Result<Vec<Tuple>, Error> =
            TraceReader::new(bytes.as_slice()).unwrap().collect();
        assert!(matches!(events, Err(Error::ChunkDecode { chunk: 0 })));
    }

    #[test]
    fn reader_fuses_after_error() {
        let mut writer = TraceWriter::new(Vec::new(), TraceKind::Raw).with_chunk_events(4);
        writer
            .write_all((0..8u64).map(|i| Tuple::new(i, i)))
            .unwrap();
        let bytes = writer.finish().unwrap();
        let mut reader = TraceReader::new(&bytes[..bytes.len() - 20]).unwrap();
        let mut saw_error = false;
        for item in reader.by_ref() {
            if item.is_err() {
                saw_error = true;
            }
        }
        assert!(saw_error);
        assert!(reader.next().is_none());
    }

    #[test]
    fn delta_encoding_is_compact_for_clustered_pcs() {
        let mut writer = TraceWriter::new(Vec::new(), TraceKind::Raw);
        // 10K events over a 64-entry PC cluster with tiny values: ~2 bytes
        // per record once deltas stay small.
        writer
            .write_all((0..10_000u64).map(|i| Tuple::new(0x40_0000 + (i % 64) * 4, i % 4)))
            .unwrap();
        let bytes = writer.finish().unwrap();
        assert!(
            bytes.len() < 10_000 * 4,
            "10K clustered events took {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn standalone_chunks_round_trip() {
        let events: Vec<Tuple> = (0..500u64)
            .map(|i| Tuple::new(0x40_0000 + (i % 13) * 4, i % 7))
            .collect();
        let bytes = encode_chunk(&events);
        let (decoded, consumed) = decode_chunk(&bytes).unwrap();
        assert_eq!(decoded, events);
        assert_eq!(consumed, bytes.len());
        // Trailing bytes after the chunk are not consumed.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[1, 2, 3]);
        let (decoded, consumed) = decode_chunk(&padded).unwrap();
        assert_eq!(decoded, events);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn standalone_chunk_matches_writer_bytes() {
        let events: Vec<Tuple> = (0..100u64).map(|i| Tuple::new(i * 8, i)).collect();
        let mut writer =
            TraceWriter::new(Vec::new(), TraceKind::Raw).with_chunk_events(events.len());
        writer.write_all(events.iter().copied()).unwrap();
        let trace = writer.finish().unwrap();
        // The writer's (only) chunk sits between the 16-byte trace header and
        // the 12-byte end marker, byte-identical to the standalone encoding.
        let chunk = &trace[16..trace.len() - CHUNK_HEADER_BYTES];
        assert_eq!(chunk, encode_chunk(&events).as_slice());
    }

    #[test]
    fn standalone_chunk_decode_rejects_corruption_and_truncation() {
        let events: Vec<Tuple> = (0..50u64).map(|i| Tuple::new(i, i)).collect();
        let bytes = encode_chunk(&events);
        assert!(matches!(
            decode_chunk(&[]),
            Err(Error::Truncated {
                context: "chunk header"
            })
        ));
        assert!(matches!(
            decode_chunk(&bytes[..8]),
            Err(Error::UnexpectedEof {
                context: "chunk header"
            })
        ));
        assert!(matches!(
            decode_chunk(&bytes[..bytes.len() - 1]),
            Err(Error::UnexpectedEof {
                context: "chunk payload"
            })
        ));
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        assert!(matches!(
            decode_chunk(&corrupt),
            Err(Error::CrcMismatch { .. })
        ));
    }

    #[test]
    fn decode_chunk_into_reuses_the_buffer_across_chunks() {
        let first: Vec<Tuple> = (0..300u64).map(|i| Tuple::new(i * 4, i)).collect();
        let second: Vec<Tuple> = (0..7u64).map(|i| Tuple::new(i, 9)).collect();
        let mut events = Vec::new();
        let bytes = encode_chunk(&first);
        assert_eq!(decode_chunk_into(&bytes, &mut events).unwrap(), bytes.len());
        assert_eq!(events, first);
        let warm_capacity = events.capacity();
        // Decoding a smaller chunk into the same buffer replaces the
        // contents without growing (or shrinking) the allocation.
        let bytes = encode_chunk(&second);
        assert_eq!(decode_chunk_into(&bytes, &mut events).unwrap(), bytes.len());
        assert_eq!(events, second);
        assert_eq!(events.capacity(), warm_capacity);
        // Errors leave the buffer reusable.
        assert!(decode_chunk_into(&bytes[..4], &mut events).is_err());
        let bytes = encode_chunk(&first);
        assert_eq!(decode_chunk_into(&bytes, &mut events).unwrap(), bytes.len());
        assert_eq!(events, first);
    }

    #[test]
    fn empty_chunk_is_the_end_marker_encoding() {
        let bytes = encode_chunk(&[]);
        assert_eq!(bytes, vec![0u8; CHUNK_HEADER_BYTES]);
        let (decoded, consumed) = decode_chunk(&bytes).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(consumed, CHUNK_HEADER_BYTES);
    }

    #[test]
    fn oversized_declared_payload_is_rejected_without_allocation() {
        let mut bytes = vec![0u8; CHUNK_HEADER_BYTES];
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes()); // ~4 GiB declared
        assert!(matches!(
            decode_chunk(&bytes),
            Err(Error::ChunkTooLarge {
                chunk: 0,
                declared,
            }) if declared == u64::from(u32::MAX)
        ));
    }

    #[test]
    fn implausible_record_count_is_rejected_before_decoding() {
        // 4-byte payload cannot hold 3 records (>= 2 bytes each).
        let mut chunk = Vec::new();
        let payload = [0u8; 4];
        chunk.extend_from_slice(&4u32.to_le_bytes());
        chunk.extend_from_slice(&3u32.to_le_bytes());
        chunk.extend_from_slice(&crc32(&payload).to_le_bytes());
        chunk.extend_from_slice(&payload);
        assert!(matches!(
            decode_chunk(&chunk),
            Err(Error::ChunkDecode { chunk: 0 })
        ));
    }

    #[test]
    fn stream_kind_converts_to_trace_kind() {
        assert_eq!(TraceKind::from(StreamKind::Value), TraceKind::Value);
        assert_eq!(TraceKind::from(StreamKind::Edge), TraceKind::Edge);
    }

    #[test]
    fn chunk_decoder_matches_flat_decode_at_any_step_size() {
        let events: Vec<Tuple> = (0..537u64)
            .map(|i| Tuple::new(i.wrapping_mul(0x9E37), i % 13))
            .collect();
        let bytes = encode_chunk(&events);
        let mut flat = Vec::new();
        let consumed = decode_chunk_into(&bytes, &mut flat).unwrap();
        for step in [1usize, 7, 64, 537, 10_000] {
            let mut decoder = ChunkDecoder::open(&bytes).unwrap();
            assert_eq!(decoder.remaining(), events.len());
            let mut got = Vec::new();
            while decoder.remaining() > 0 {
                let n = decoder.decode_some(step, |t| got.push(t)).unwrap();
                assert_eq!(n, step.min(events.len() - (got.len() - n)));
            }
            decoder.finish().unwrap();
            assert_eq!(got, flat, "step {step}");
            assert_eq!(decoder.consumed(), consumed);
        }
    }

    #[test]
    fn chunk_decoder_runs_the_same_adversarial_gauntlet_as_flat_decode() {
        let events: Vec<Tuple> = (0..40u64).map(|i| Tuple::new(i * 8, i)).collect();
        let bytes = encode_chunk(&events);
        assert!(matches!(
            ChunkDecoder::open(&[]),
            Err(Error::Truncated { .. })
        ));
        assert!(matches!(
            ChunkDecoder::open(&bytes[..CHUNK_HEADER_BYTES - 1]),
            Err(Error::UnexpectedEof { .. })
        ));
        assert!(matches!(
            ChunkDecoder::open(&bytes[..bytes.len() - 1]),
            Err(Error::UnexpectedEof { .. })
        ));
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x08;
        assert!(matches!(
            ChunkDecoder::open(&corrupt),
            Err(Error::CrcMismatch { .. })
        ));
        // finish() before the payload is drained reports the inconsistency.
        let decoder = ChunkDecoder::open(&bytes).unwrap();
        assert!(matches!(decoder.finish(), Err(Error::ChunkDecode { .. })));
    }

    #[test]
    fn partitioned_decode_routes_by_shard_and_clears_buffers() {
        let events: Vec<Tuple> = (0..200u64).map(|i| Tuple::new(i * 16, i % 5)).collect();
        let bytes = encode_chunk(&events);
        let mut outs = vec![vec![Tuple::new(99, 99)]; 4];
        let consumed = decode_chunk_partitioned(&bytes, &mut outs).unwrap();
        assert_eq!(consumed, bytes.len());
        let mut total = 0;
        for (shard, out) in outs.iter().enumerate() {
            total += out.len();
            for &t in out {
                assert_eq!(crate::engine::shard_of(t, 4), shard);
            }
        }
        assert_eq!(total, events.len());
    }
}
