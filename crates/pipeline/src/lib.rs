//! # mhp-pipeline — sharded streaming ingestion with binary trace record/replay
//!
//! The paper's profilers (`mhp-core`) consume one event at a time on one
//! thread. This crate scales that up to the shape of a production profiling
//! backend, in two pieces:
//!
//! * **Binary traces** ([`format`]) — a compact, checksummed on-disk format
//!   for `<pc, value>` event streams ([`TraceWriter`] / [`TraceReader`]),
//!   so a workload is captured once and replayed deterministically through
//!   any profiler configuration.
//! * **Sharded ingestion** ([`engine`]) — a [`ShardedEngine`] that
//!   hash-partitions the stream across worker threads over per-shard
//!   bounded SPSC batch rings ([`ring`]), recycles batch buffers back from
//!   the workers, cuts intervals on the *global* event count, and merges the
//!   per-shard [`IntervalProfile`](mhp_core::IntervalProfile)s into output
//!   equal in meaning to a single-threaded run (see
//!   [`IntervalProfile::merge`](mhp_core::IntervalProfile::merge) for the
//!   exact semantics).
//!
//! The `mhp-pipeline` binary exposes both as `record`, `replay`, `bench`
//! and `info` subcommands.
//!
//! ## Quick example
//!
//! Record a synthetic workload to an in-memory trace, then replay it
//! through a 4-shard multi-hash engine:
//!
//! ```
//! use mhp_core::{IntervalConfig, MultiHashConfig};
//! use mhp_pipeline::{EngineConfig, ProfilerSpec, ShardedEngine, TraceReader, TraceWriter};
//! use mhp_trace::{Benchmark, StreamKind, StreamSpec};
//!
//! # fn main() -> Result<(), mhp_pipeline::Error> {
//! let spec = StreamSpec::new(Benchmark::Gcc, StreamKind::Value, 42);
//! let mut writer = TraceWriter::new(Vec::new(), spec.kind.into());
//! writer.write_all(spec.events().take(50_000))?;
//! let trace = writer.finish()?;
//!
//! let interval = IntervalConfig::new(10_000, 0.01)?;
//! let engine = ShardedEngine::new(
//!     EngineConfig::new(4),
//!     interval,
//!     ProfilerSpec::MultiHash(MultiHashConfig::best()),
//!     0xC0FFEE,
//! );
//! let report = engine.run_results(TraceReader::new(trace.as_slice())?)?;
//! assert_eq!(report.intervals, 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod engine;
pub mod error;
pub mod format;
pub mod ring;
pub mod telemetry;

pub use engine::{
    shard_of, EngineConfig, EngineReport, EngineSession, ProfilerSpec, ShardStats, ShardedEngine,
};
pub use error::Error;
pub use format::{
    crc32, declared_chunk_len, decode_chunk, decode_chunk_into, decode_chunk_partitioned,
    encode_chunk, ChunkDecoder, TraceKind, TraceReader, TraceWriter, CHUNK_HEADER_BYTES,
    DEFAULT_CHUNK_EVENTS, FORMAT_VERSION, MAGIC, MAX_CHUNK_BYTES,
};
pub use telemetry::{EngineTelemetry, RegistrySink};
