//! Typed errors for trace decoding and the sharded engine.

use std::fmt;
use std::io;

use mhp_core::{ConfigError, MergeError, SnapshotError};

/// Any failure a pipeline stage can produce: I/O, a malformed or corrupted
/// trace, an invalid profiler/engine configuration, or a merge conflict.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An underlying I/O failure while reading or writing a trace.
    Io(io::Error),
    /// The input does not start with the trace magic; it is not an
    /// `mhp-pipeline` trace at all.
    BadMagic,
    /// The trace was written by an incompatible format version.
    UnsupportedVersion(u16),
    /// The header names an event kind this build does not know.
    UnknownKind(u8),
    /// A chunk's payload does not match its recorded CRC32 — the trace was
    /// corrupted in storage or transit.
    CrcMismatch {
        /// Zero-based index of the corrupted chunk.
        chunk: u64,
        /// Checksum recorded in the chunk header.
        expected: u32,
        /// Checksum computed over the payload actually read.
        actual: u32,
    },
    /// The input ended *cleanly on a structure boundary* but before the
    /// stream was complete — typically a missing end-of-trace marker (every
    /// well-formed trace is terminated explicitly so silent tail loss is
    /// detectable). Contrast [`Error::UnexpectedEof`], which reports a tear
    /// *inside* a structure.
    Truncated {
        /// What was about to be read when the input ran out.
        context: &'static str,
    },
    /// The input ended *inside* a structure that had already begun — a torn
    /// write or a connection cut mid-chunk. Unlike [`Error::Truncated`]
    /// (clean stop between structures), the bytes present cannot possibly
    /// be a prefix of a valid stream resumption point: whatever produced
    /// them died mid-record.
    UnexpectedEof {
        /// What was being read when the input tore.
        context: &'static str,
    },
    /// A chunk payload failed to decode: a varint ran past the payload or
    /// the record count disagrees with the bytes present.
    ChunkDecode {
        /// Zero-based index of the malformed chunk.
        chunk: u64,
    },
    /// A chunk header declares a payload larger than
    /// [`MAX_CHUNK_BYTES`](crate::format::MAX_CHUNK_BYTES). Rejected before
    /// any allocation, so adversarial headers cannot trigger huge buffers.
    ChunkTooLarge {
        /// Zero-based index of the offending chunk.
        chunk: u64,
        /// The payload length the header declared.
        declared: u64,
    },
    /// Bytes follow the end-of-trace marker.
    TrailingData,
    /// A profiler configuration error while building shard profilers.
    Config(ConfigError),
    /// Per-shard interval profiles could not be merged.
    Merge(MergeError),
    /// The engine configuration itself is unusable (zero shards, zero
    /// queue capacity, ...).
    InvalidEngine(&'static str),
    /// A shard worker hung up mid-stream — it died (almost always a panic)
    /// while events were still being dispatched to it. The panic itself is
    /// surfaced, with its message, by `EngineSession::finish`.
    WorkerDied {
        /// Zero-based index of the dead shard.
        shard: usize,
    },
    /// A shard worker thread panicked; joined and reported at
    /// `EngineSession::finish` instead of poisoning the dispatching thread.
    WorkerPanicked {
        /// Zero-based index of the panicked shard.
        shard: usize,
        /// The panic payload's message (when it was a string).
        message: String,
    },
    /// Saving or restoring engine/profiler state failed; see the inner
    /// [`SnapshotError`] for whether the snapshot was damaged, from an
    /// incompatible version, or taken under a different configuration.
    Snapshot(SnapshotError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "trace i/o failed: {e}"),
            Error::BadMagic => write!(f, "not an mhp trace (bad magic)"),
            Error::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            Error::UnknownKind(k) => write!(f, "unknown trace event kind {k}"),
            Error::CrcMismatch {
                chunk,
                expected,
                actual,
            } => write!(
                f,
                "chunk {chunk} is corrupted: crc {actual:#010x} != recorded {expected:#010x}"
            ),
            Error::Truncated { context } => {
                write!(f, "trace is truncated (while reading {context})")
            }
            Error::UnexpectedEof { context } => {
                write!(f, "stream tore mid-structure (while reading {context})")
            }
            Error::ChunkDecode { chunk } => {
                write!(f, "chunk {chunk} payload is malformed")
            }
            Error::ChunkTooLarge { chunk, declared } => {
                write!(
                    f,
                    "chunk {chunk} declares an implausible {declared}-byte payload"
                )
            }
            Error::TrailingData => write!(f, "trailing bytes after end-of-trace marker"),
            Error::Config(e) => write!(f, "profiler configuration rejected: {e}"),
            Error::Merge(e) => write!(f, "shard merge failed: {e}"),
            Error::InvalidEngine(what) => write!(f, "invalid engine configuration: {what}"),
            Error::WorkerDied { shard } => {
                write!(f, "shard {shard} worker died mid-stream")
            }
            Error::WorkerPanicked { shard, message } => {
                write!(f, "shard {shard} worker panicked: {message}")
            }
            Error::Snapshot(e) => write!(f, "state snapshot failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::Merge(e) => Some(e),
            Error::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<MergeError> for Error {
    fn from(e: MergeError) -> Self {
        Error::Merge(e)
    }
}

impl From<SnapshotError> for Error {
    fn from(e: SnapshotError) -> Self {
        Error::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_nonempty() {
        let errors: Vec<Error> = vec![
            Error::Io(io::Error::other("x")),
            Error::BadMagic,
            Error::UnsupportedVersion(9),
            Error::UnknownKind(250),
            Error::CrcMismatch {
                chunk: 3,
                expected: 1,
                actual: 2,
            },
            Error::Truncated {
                context: "chunk header",
            },
            Error::UnexpectedEof {
                context: "chunk payload",
            },
            Error::ChunkDecode { chunk: 0 },
            Error::ChunkTooLarge {
                chunk: 1,
                declared: u64::MAX,
            },
            Error::TrailingData,
            Error::Config(ConfigError::ZeroTables),
            Error::Merge(MergeError::Empty),
            Error::InvalidEngine("zero shards"),
            Error::WorkerDied { shard: 3 },
            Error::WorkerPanicked {
                shard: 0,
                message: "index out of bounds".into(),
            },
            Error::Snapshot(SnapshotError::Unsupported),
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.chars().next().unwrap().is_uppercase(), "{msg}");
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<Error>();
    }

    #[test]
    fn sources_are_exposed() {
        use std::error::Error as _;
        assert!(Error::Config(ConfigError::ZeroTables).source().is_some());
        assert!(Error::BadMagic.source().is_none());
    }
}
