//! End-to-end record/replay equivalence: a workload recorded to the binary
//! trace format and replayed through the sharded engine must produce the
//! same profiles as feeding the live stream to a single-threaded
//! [`MultiHashProfiler`].
//!
//! Sharding a sketch-based profiler *reduces* aliasing (each shard's hash
//! tables see only that shard's tuples), so candidate sets are not
//! guaranteed identical for every workload — a tuple promoted only through
//! aliasing inflation in the serial run can legitimately be absent from a
//! shard's output. The pinned benchmark/seed/configuration pairs below were
//! chosen as representative workloads and, everything being deterministic
//! (fixed stream seed, fixed hash seed, tuple-stable partitioning, global
//! cuts), the equality asserted here is exact and stable run to run.

use mhp_core::{
    EventProfiler, IntervalConfig, IntervalProfile, MultiHashConfig, MultiHashProfiler, Tuple,
};
use mhp_pipeline::{EngineConfig, ProfilerSpec, ShardedEngine, TraceReader, TraceWriter};
use mhp_trace::{Benchmark, StreamKind, StreamSpec};

const EVENTS: usize = 60_000;
const INTERVAL_LEN: u64 = 10_000;
const THRESHOLD: f64 = 0.01;
const HASH_SEED: u64 = 0xC0FFEE;

fn record(spec: StreamSpec) -> Vec<u8> {
    let mut writer = TraceWriter::new(Vec::new(), spec.kind.into()).with_chunk_events(4096);
    writer
        .write_all(spec.events().take(EVENTS))
        .expect("vec write");
    writer.finish().expect("vec finish")
}

fn single_threaded(spec: StreamSpec) -> Vec<IntervalProfile> {
    let interval = IntervalConfig::new(INTERVAL_LEN, THRESHOLD).unwrap();
    let mut profiler =
        MultiHashProfiler::new(interval, MultiHashConfig::best(), HASH_SEED).unwrap();
    profiler.observe_all(spec.events().take(EVENTS))
}

fn candidate_sets(profiles: &[IntervalProfile]) -> Vec<Vec<(Tuple, u64)>> {
    profiles
        .iter()
        .map(|p| {
            let mut set: Vec<(Tuple, u64)> =
                p.candidates().iter().map(|c| (c.tuple, c.count)).collect();
            set.sort();
            set
        })
        .collect()
}

fn assert_sharded_replay_matches(spec: StreamSpec) {
    let trace = record(spec);
    let expected = single_threaded(spec);
    assert_eq!(expected.len(), (EVENTS as u64 / INTERVAL_LEN) as usize);
    assert!(
        expected.iter().any(|p| !p.candidates().is_empty()),
        "workload {spec} produced no candidates; the test would be vacuous"
    );

    let interval = IntervalConfig::new(INTERVAL_LEN, THRESHOLD).unwrap();
    for shards in [1usize, 2, 8] {
        let engine = ShardedEngine::new(
            EngineConfig::new(shards).with_batch_events(512),
            interval,
            ProfilerSpec::MultiHash(MultiHashConfig::best()),
            HASH_SEED,
        );
        let reader = TraceReader::new(trace.as_slice()).expect("recorded trace is valid");
        let report = engine.run_results(reader).expect("replay succeeds");

        assert_eq!(report.events, EVENTS as u64, "{spec} over {shards} shards");
        assert_eq!(
            candidate_sets(&report.profiles),
            candidate_sets(&expected),
            "candidate sets diverged for {spec} over {shards} shards"
        );
        // With one shard the whole profile (not just the candidate set) is
        // the single-threaded computation, bit for bit.
        if shards == 1 {
            assert_eq!(report.profiles, expected);
        }
    }
}

#[test]
fn sharded_replay_matches_single_threaded_burg() {
    assert_sharded_replay_matches(StreamSpec::new(Benchmark::Burg, StreamKind::Value, 42));
}

#[test]
fn sharded_replay_matches_single_threaded_li() {
    assert_sharded_replay_matches(StreamSpec::new(Benchmark::Li, StreamKind::Value, 7));
}
