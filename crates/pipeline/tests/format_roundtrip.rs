//! Property tests for the binary trace format: arbitrary event streams
//! round-trip byte-exactly, and every corruption mode is rejected with a
//! typed error rather than garbage data.

use mhp_core::Tuple;
use mhp_pipeline::{Error, TraceKind, TraceReader, TraceWriter};
use proptest::prelude::*;

fn encode(events: &[(u64, u64)], chunk_events: usize) -> Vec<u8> {
    let mut writer = TraceWriter::new(Vec::new(), TraceKind::Raw).with_chunk_events(chunk_events);
    writer
        .write_all(events.iter().map(|&(pc, value)| Tuple::new(pc, value)))
        .expect("writing to a Vec cannot fail");
    writer.finish().expect("finish on a Vec cannot fail")
}

fn decode(bytes: &[u8]) -> Result<Vec<Tuple>, Error> {
    TraceReader::new(bytes)?.read_all()
}

proptest! {
    #[test]
    fn round_trips_arbitrary_events(
        events in prop::collection::vec((any::<u64>(), any::<u64>()), 0..400),
        chunk_events in 1usize..64,
    ) {
        let bytes = encode(&events, chunk_events);
        let decoded = decode(&bytes).expect("well-formed trace must decode");
        let expected: Vec<Tuple> = events
            .iter()
            .map(|&(pc, value)| Tuple::new(pc, value))
            .collect();
        prop_assert_eq!(decoded, expected);
    }

    #[test]
    fn chunking_never_changes_the_stream(
        events in prop::collection::vec((0u64..1 << 20, 0u64..1 << 10), 1..200),
        chunk_a in 1usize..32,
        chunk_b in 32usize..300,
    ) {
        // Different chunk sizes produce different bytes but identical events.
        let a = decode(&encode(&events, chunk_a)).unwrap();
        let b = decode(&encode(&events, chunk_b)).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn any_truncation_is_rejected(
        events in prop::collection::vec((any::<u64>(), any::<u64>()), 1..100),
        chunk_events in 1usize..32,
        cut_fraction in 0u64..1000,
    ) {
        let bytes = encode(&events, chunk_events);
        // Cut anywhere strictly inside the trace (even mid-header). A cut on
        // a structure boundary is clean truncation; one inside a structure
        // is a torn stream — both must fail typed, never decode silently.
        let cut = 1 + (cut_fraction as usize * (bytes.len() - 2)) / 1000;
        let result = TraceReader::new(&bytes[..cut]).and_then(TraceReader::read_all);
        prop_assert!(
            matches!(
                result,
                Err(Error::Truncated { .. })
                    | Err(Error::UnexpectedEof { .. })
                    | Err(Error::ChunkDecode { .. })
            ),
            "cut at {} of {} gave {:?}",
            cut,
            bytes.len(),
            result
        );
    }

    #[test]
    fn payload_bitflips_are_rejected(
        events in prop::collection::vec((any::<u64>(), any::<u64>()), 8..100),
        byte_fraction in 0u64..1000,
        bit in 0u32..8,
    ) {
        // One chunk holds everything, so any flip past the 28 header bytes
        // (file header + chunk header) lands in CRC-protected payload.
        let mut bytes = encode(&events, 1 << 16);
        let payload_end = bytes.len() - 12; // end-of-trace marker
        let target = 28 + (byte_fraction as usize * (payload_end - 28 - 1)) / 1000;
        bytes[target] ^= 1 << bit;
        let result = TraceReader::new(bytes.as_slice()).and_then(TraceReader::read_all);
        prop_assert!(
            matches!(result, Err(Error::CrcMismatch { .. })),
            "flip at byte {} bit {} gave {:?}",
            target,
            bit,
            result
        );
    }
}

#[test]
fn corrupting_the_recorded_crc_itself_is_detected() {
    let mut bytes = encode(&[(1, 2), (3, 4)], 16);
    // Bytes 24..28 are the chunk's recorded CRC (16 file header + 8 into the
    // chunk header).
    bytes[24] ^= 0xFF;
    assert!(matches!(
        decode(&bytes),
        Err(Error::CrcMismatch { chunk: 0, .. })
    ));
}

#[test]
fn record_count_mismatch_is_a_decode_error() {
    let mut bytes = encode(&[(1, 1), (2, 2), (3, 3)], 16);
    // Bytes 20..24 are the chunk's record count; claim one extra record but
    // recompute nothing else — the CRC only covers the payload.
    let count = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    bytes[20..24].copy_from_slice(&(count + 1).to_le_bytes());
    assert!(matches!(
        decode(&bytes),
        Err(Error::ChunkDecode { chunk: 0 })
    ));
}
