//! Property tests for partition-while-decoding: `decode_chunk_partitioned`
//! must be a shard-ordered permutation of the flat `decode_chunk_into`
//! output with tuple-stable routing (no tuple in two shards), and the
//! engine's chunked ingest must match per-event pushes for all three
//! profiler specs.

use mhp_core::Tuple;
use mhp_pipeline::{
    decode_chunk_into, decode_chunk_partitioned, encode_chunk, shard_of, EngineConfig,
    ProfilerSpec, ShardedEngine,
};
use mhp_trace::{Benchmark, StreamKind, StreamSpec};
use proptest::prelude::*;

proptest! {
    #[test]
    fn partitioned_decode_is_a_shard_stable_permutation(
        events in prop::collection::vec((any::<u64>(), any::<u64>()), 0..500),
        shards in 1usize..9,
    ) {
        let tuples: Vec<Tuple> = events.iter().map(|&(pc, v)| Tuple::new(pc, v)).collect();
        let chunk = encode_chunk(&tuples);

        let mut flat = Vec::new();
        let consumed_flat = decode_chunk_into(&chunk, &mut flat).unwrap();
        let mut outs: Vec<Vec<Tuple>> = vec![Vec::new(); shards];
        let consumed = decode_chunk_partitioned(&chunk, &mut outs).unwrap();
        prop_assert_eq!(consumed, consumed_flat);

        // Tuple-stability: sub-batch `s` holds exactly the tuples that hash
        // to shard `s`, in stream order. Equality against the filtered flat
        // decode also proves no tuple ever lands in two sub-batches.
        for (shard, out) in outs.iter().enumerate() {
            let expected: Vec<Tuple> = flat
                .iter()
                .copied()
                .filter(|&t| shard_of(t, shards) == shard)
                .collect();
            prop_assert_eq!(out, &expected, "shard {} of {}", shard, shards);
        }

        // Concatenated in shard order, the sub-batches are a permutation of
        // the flat decode: same multiset, nothing lost or duplicated.
        let mut concat: Vec<Tuple> = outs.concat();
        let mut flat_sorted = flat;
        concat.sort();
        flat_sorted.sort();
        prop_assert_eq!(concat, flat_sorted);
    }
}

proptest! {
    // Each case spins up several multi-threaded engines; a few cases cover
    // the chunk-size/seed space without dominating the suite's runtime.
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn chunked_ingest_matches_per_event_push_for_every_spec(
        stream_seed in any::<u64>(),
        chunk_size in 50usize..400,
    ) {
        let events: Vec<Tuple> = StreamSpec::new(Benchmark::Li, StreamKind::Value, stream_seed)
            .events()
            .take(4_000)
            .collect();
        let interval = mhp_core::IntervalConfig::new(1_100, 0.02).unwrap();
        for spec in ["multi-hash", "single-hash", "perfect"] {
            let spec: ProfilerSpec = spec.parse().unwrap();
            let engine = ShardedEngine::new(
                EngineConfig::new(3).with_batch_events(128),
                interval,
                spec,
                0xBEEF,
            );

            let mut reference = engine.start().unwrap();
            reference.push_all(events.iter().copied()).unwrap();
            let expected = reference.finish().unwrap();

            let mut chunked = engine.start().unwrap();
            for run in events.chunks(chunk_size) {
                let chunk = encode_chunk(run);
                let consumed = chunked.ingest_chunk(&chunk).unwrap();
                prop_assert_eq!(consumed, chunk.len());
            }
            let report = chunked.finish().unwrap();
            prop_assert_eq!(&report.profiles, &expected.profiles, "{}", spec);
            prop_assert_eq!(report.events, expected.events);
            prop_assert_eq!(report.intervals, expected.intervals);
            // Routing statistics agree too: partition-while-decoding sends
            // every tuple to the same shard the per-event path does.
            for (a, b) in report.shards.iter().zip(expected.shards.iter()) {
                prop_assert_eq!(a.events, b.events);
            }
        }
    }
}
