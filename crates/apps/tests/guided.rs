//! End-to-end: hardware profiles driving the §2 optimization clients.
//!
//! The use model under test is §5.6.1's: the profile gathered in interval
//! *k* optimizes interval *k+1*. For each client we compare the multi-hash
//! profile against the perfect profile — a near-1 effectiveness *ratio* is
//! the whole point of the paper (a 7 KB hardware profile is as good as an
//! oracle for these optimizations).

use mhp_apps::{DelinquentLoadSet, FrequentValueTable, MultipathSelector, TraceFormer};
use mhp_cache::{access::AccessPattern, Cache, CacheConfig, MissEvents};
use mhp_core::{
    EventProfiler, IntervalConfig, IntervalProfile, MultiHashConfig, MultiHashProfiler,
    PerfectProfiler, Tuple,
};
use mhp_trace::Benchmark;

/// Runs both profilers over one interval of `events`, returning
/// (hardware profile, perfect profile) plus the *next* interval's events
/// for evaluation.
fn profile_one_interval(
    interval: IntervalConfig,
    events: &mut impl Iterator<Item = Tuple>,
) -> (IntervalProfile, IntervalProfile) {
    let mut hw = MultiHashProfiler::new(interval, MultiHashConfig::best(), 5).unwrap();
    let mut perfect = PerfectProfiler::new(interval);
    loop {
        let t = events.next().expect("stream is infinite");
        let h = hw.observe(t);
        let p = perfect.observe(t);
        match (h, p) {
            (Some(h), Some(p)) => return (h, p),
            (None, None) => {}
            _ => unreachable!("lockstep"),
        }
    }
}

#[test]
fn profiled_value_dictionary_matches_the_oracle() {
    let interval = IntervalConfig::new(20_000, 0.01).unwrap();
    let mut stream = Benchmark::Li.value_stream(11);
    let (hw, perfect) = profile_one_interval(interval, &mut stream);

    let dict_hw = FrequentValueTable::from_profile(&hw, 8);
    let dict_oracle = FrequentValueTable::from_profile(&perfect, 8);

    // Evaluate both dictionaries on the next interval.
    let next: Vec<Tuple> = (&mut stream).take(20_000).collect();
    let r_hw = dict_hw.evaluate(next.iter().copied()).ratio();
    let r_oracle = dict_oracle.evaluate(next.iter().copied()).ratio();

    assert!(
        r_oracle > 0.05,
        "oracle must find compressible values ({r_oracle})"
    );
    assert!(
        r_hw >= r_oracle * 0.9,
        "profiled dictionary ({r_hw:.3}) must be within 10% of the oracle ({r_oracle:.3})"
    );
}

#[test]
fn profiled_traces_cover_like_oracle_traces() {
    let interval = IntervalConfig::new(20_000, 0.01).unwrap();
    let mut stream = Benchmark::M88ksim.edge_stream(13);
    let (hw, perfect) = profile_one_interval(interval, &mut stream);

    let traces_hw = TraceFormer::from_profile(&hw).form_traces(16, 8);
    let traces_oracle = TraceFormer::from_profile(&perfect).form_traces(16, 8);

    let next: Vec<Tuple> = (&mut stream).take(20_000).collect();
    let c_hw = TraceFormer::coverage(&traces_hw, next.iter().copied());
    let c_oracle = TraceFormer::coverage(&traces_oracle, next.iter().copied());

    assert!(
        c_oracle > 0.02,
        "oracle traces must cover something ({c_oracle})"
    );
    assert!(
        c_hw >= c_oracle * 0.8,
        "profiled traces ({c_hw:.3}) must be within 20% of the oracle ({c_oracle:.3})"
    );
}

#[test]
fn profiled_hard_branches_cover_mispredictions() {
    // Fork selection needs the minority edges of biased branches above the
    // threshold, so it profiles finer than the other clients.
    let interval = IntervalConfig::new(20_000, 0.0025).unwrap();
    let mut stream = Benchmark::Go.edge_stream(17);
    let (hw, perfect) = profile_one_interval(interval, &mut stream);

    let sel_hw = MultipathSelector::from_profile(&hw);
    let sel_oracle = MultipathSelector::from_profile(&perfect);
    let picks_hw = sel_hw.select(4);
    let picks_oracle = sel_oracle.select(4);
    assert!(!picks_oracle.is_empty(), "some branches must be hard");

    let next: Vec<Tuple> = (&mut stream).take(20_000).collect();
    let c_hw = sel_hw.misprediction_coverage(&picks_hw, next.iter().copied());
    let c_oracle = sel_oracle.misprediction_coverage(&picks_oracle, next.iter().copied());

    assert!(
        c_hw >= c_oracle * 0.8,
        "profiled fork set ({c_hw:.3}) must be within 20% of the oracle ({c_oracle:.3})"
    );
}

#[test]
fn profiled_delinquent_loads_cover_most_misses() {
    // Misses from the demo access mixture through a 32 KB cache.
    let interval = IntervalConfig::new(10_000, 0.01).unwrap();
    let cache = Cache::new(CacheConfig::new(32 * 1024, 64, 4).unwrap());
    let mut misses = MissEvents::new(cache, AccessPattern::demo_mix(23).events());

    let (hw, perfect) = profile_one_interval(interval, &mut misses);
    let set_hw = DelinquentLoadSet::from_profile(&hw, 2);
    let set_oracle = DelinquentLoadSet::from_profile(&perfect, 2);

    // The two delinquent loads in demo_mix are the stream and the chase.
    assert!(set_oracle.contains(0x40_0200) || set_oracle.contains(0x40_0208));
    assert_eq!(
        set_hw.pcs(),
        set_oracle.pcs(),
        "7 KB of hardware matches the oracle"
    );

    let next: Vec<Tuple> = (&mut misses).take(10_000).collect();
    let cov = set_hw.coverage(next.iter().copied());
    assert!(
        cov.ratio() > 0.7,
        "two targeted loads should cover most misses ({:.3})",
        cov.ratio()
    );
}

#[test]
fn profile_error_translates_to_optimization_quality() {
    // A deliberately hopeless profiler (tiny sketch, no conservative
    // update) must produce a worse value dictionary than the best one —
    // profile accuracy is not an abstract metric.
    let interval = IntervalConfig::new(20_000, 0.002).unwrap();
    let mut stream_a = Benchmark::Gcc.value_stream(31);
    let mut stream_b = Benchmark::Gcc.value_stream(31);

    let (good, _) = profile_one_interval(interval, &mut stream_a);
    // Hopeless: 32 counters over 2 tables, plain update, no retaining.
    let mut bad_profiler = MultiHashProfiler::new(
        interval,
        MultiHashConfig::new(32, 2)
            .unwrap()
            .with_conservative_update(false)
            .with_retaining(false),
        5,
    )
    .unwrap();
    let bad = loop {
        if let Some(p) = bad_profiler.observe(stream_b.next().unwrap()) {
            break p;
        }
    };

    let dict_good = FrequentValueTable::from_profile(&good, 8);
    let dict_bad = FrequentValueTable::from_profile(&bad, 8);
    let next: Vec<Tuple> = (&mut stream_a).take(20_000).collect();
    let r_good = dict_good.evaluate(next.iter().copied()).ratio();
    let r_bad = dict_bad.evaluate(next.iter().copied()).ratio();
    assert!(
        r_good >= r_bad,
        "better profile must not yield a worse dictionary: good {r_good:.3} vs bad {r_bad:.3}"
    );
}
