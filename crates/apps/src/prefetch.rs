//! Delinquent-load targeting — the prefetching client (§2).
//!
//! *"In many cases a large percentage of data cache misses are caused by a
//! very small number of instructions. … Making use of a run-time profiling
//! scheme to identify troublesome loads and objects can potentially improve
//! the accuracy and efficiency of these techniques."*
//!
//! The miss profiler (see `mhp-cache::MissEvents`) produces
//! `<load PC, block>` tuples per miss; this module distills the profile
//! into the small set of *delinquent load PCs* a prefetcher or speculative
//! precomputation engine would target, and measures what fraction of
//! subsequent misses those PCs account for.

use std::collections::{HashMap, HashSet};

use mhp_core::{IntervalProfile, Tuple};

/// Coverage of a delinquent-load selection over a miss stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MissCoverage {
    /// Misses examined.
    pub misses: u64,
    /// Misses issued by a targeted load.
    pub covered: u64,
}

impl MissCoverage {
    /// Fraction of misses covered, in `[0, 1]`.
    pub fn ratio(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.covered as f64 / self.misses as f64
        }
    }
}

/// The set of load PCs responsible for the most profiled misses.
///
/// # Examples
///
/// ```
/// use mhp_apps::DelinquentLoadSet;
/// use mhp_core::{Candidate, IntervalConfig, IntervalProfile, Tuple};
/// let profile = IntervalProfile::from_candidates(
///     0,
///     IntervalConfig::short(),
///     vec![
///         Candidate::new(Tuple::new(0x200, 11), 600), // miss-heavy load
///         Candidate::new(Tuple::new(0x200, 12), 500), // same load, other block
///         Candidate::new(Tuple::new(0x300, 99), 120),
///     ],
/// );
/// let set = DelinquentLoadSet::from_profile(&profile, 1);
/// assert!(set.contains(0x200));
/// assert!(!set.contains(0x300));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelinquentLoadSet {
    pcs: Vec<u64>,
    lookup: HashSet<u64>,
}

impl DelinquentLoadSet {
    /// Distills the top `capacity` load PCs (by summed miss count) from a
    /// miss profile.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn from_profile(profile: &IntervalProfile, capacity: usize) -> Self {
        assert!(capacity > 0, "need room for at least one load");
        let mut by_pc: HashMap<u64, u64> = HashMap::new();
        for c in profile.candidates() {
            *by_pc.entry(c.tuple.pc().as_u64()).or_insert(0) += c.count;
        }
        let ranked = mhp_core::top_k_by_count(by_pc.into_iter().collect(), capacity);
        let pcs: Vec<u64> = ranked.into_iter().map(|(pc, _)| pc).collect();
        let lookup = pcs.iter().copied().collect();
        DelinquentLoadSet { pcs, lookup }
    }

    /// Builds the set from explicit PCs (e.g. an oracle).
    pub fn from_pcs(pcs: impl IntoIterator<Item = u64>) -> Self {
        let pcs: Vec<u64> = pcs.into_iter().collect();
        let lookup = pcs.iter().copied().collect();
        DelinquentLoadSet { pcs, lookup }
    }

    /// The targeted PCs, most delinquent first.
    pub fn pcs(&self) -> &[u64] {
        &self.pcs
    }

    /// Number of targeted loads.
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// Returns `true` if no load is targeted.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// Whether load `pc` is targeted.
    pub fn contains(&self, pc: u64) -> bool {
        self.lookup.contains(&pc)
    }

    /// Measures what fraction of a miss stream the targeted loads account
    /// for.
    pub fn coverage(&self, misses: impl IntoIterator<Item = Tuple>) -> MissCoverage {
        let mut stats = MissCoverage::default();
        for m in misses {
            stats.misses += 1;
            if self.contains(m.pc().as_u64()) {
                stats.covered += 1;
            }
        }
        stats
    }
}

/// Outcome of running an access stream with next-line prefetching enabled
/// for a set of targeted loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefetchOutcome {
    /// Accesses simulated.
    pub accesses: u64,
    /// Misses without any prefetching (baseline).
    pub baseline_misses: u64,
    /// Misses with prefetching enabled.
    pub prefetched_misses: u64,
    /// Prefetch fills issued.
    pub prefetches_issued: u64,
}

impl PrefetchOutcome {
    /// Fraction of baseline misses eliminated, in `[0, 1]` (can be negative
    /// if prefetching pollutes the cache).
    pub fn miss_reduction(&self) -> f64 {
        if self.baseline_misses == 0 {
            0.0
        } else {
            1.0 - self.prefetched_misses as f64 / self.baseline_misses as f64
        }
    }
}

/// A degree-`d` next-line prefetcher that fires only on misses from
/// targeted loads — the simplest §2 prefetching client. Closing the loop:
/// a profiled [`DelinquentLoadSet`] becomes an actual miss reduction.
///
/// # Examples
///
/// ```
/// use mhp_apps::{DelinquentLoadSet, NextLinePrefetcher};
/// use mhp_cache::{access::AccessPattern, Cache, CacheConfig};
/// let mut pattern = AccessPattern::new(1);
/// pattern.stream(0x42, 0x100000, 64, 1 << 22, 1.0); // sequential stream
/// let targets = DelinquentLoadSet::from_pcs([0x42]);
/// let prefetcher = NextLinePrefetcher::new(targets, 4);
/// let config = CacheConfig::new(32 * 1024, 64, 4).unwrap();
/// let outcome = prefetcher.evaluate(
///     || Cache::new(config),
///     || AccessPattern::new(1).stream(0x42, 0x100000, 64, 1 << 22, 1.0).clone().events().take(50_000),
/// );
/// assert!(outcome.miss_reduction() > 0.7, "sequential streams prefetch well");
/// ```
#[derive(Debug, Clone)]
pub struct NextLinePrefetcher {
    targets: DelinquentLoadSet,
    degree: u64,
}

impl NextLinePrefetcher {
    /// Creates a prefetcher firing `degree` next-line fills on each targeted
    /// miss.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0`.
    pub fn new(targets: DelinquentLoadSet, degree: u64) -> Self {
        assert!(degree > 0, "prefetch degree must be positive");
        NextLinePrefetcher { targets, degree }
    }

    /// The targeted loads.
    pub fn targets(&self) -> &DelinquentLoadSet {
        &self.targets
    }

    /// Runs the same access stream twice — once bare, once with prefetching
    /// — against fresh caches from `make_cache`, and reports the outcome.
    pub fn evaluate<C, S, I>(&self, mut make_cache: C, mut make_stream: S) -> PrefetchOutcome
    where
        C: FnMut() -> mhp_cache::Cache,
        S: FnMut() -> I,
        I: Iterator<Item = mhp_cache::MemAccess>,
    {
        // Baseline pass.
        let mut baseline = make_cache();
        for a in make_stream() {
            baseline.access(a.addr);
        }
        // Prefetching pass.
        let mut cache = make_cache();
        let block = cache.config().block_bytes() as u64;
        let mut prefetches = 0u64;
        for a in make_stream() {
            let missed = cache.access(a.addr).is_miss();
            if missed && self.targets.contains(a.pc) {
                for d in 1..=self.degree {
                    if cache.fill(a.addr.wrapping_add(d * block)) {
                        prefetches += 1;
                    }
                }
            }
        }
        PrefetchOutcome {
            accesses: baseline.stats().accesses,
            baseline_misses: baseline.stats().misses,
            prefetched_misses: cache.stats().misses,
            prefetches_issued: prefetches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhp_core::{Candidate, IntervalConfig};

    fn profile(misses: &[(u64, u64, u64)]) -> IntervalProfile {
        IntervalProfile::from_candidates(
            0,
            IntervalConfig::short(),
            misses
                .iter()
                .map(|&(pc, b, n)| Candidate::new(Tuple::new(pc, b), n))
                .collect(),
        )
    }

    #[test]
    fn miss_counts_are_summed_per_pc() {
        let p = profile(&[(0x1, 10, 300), (0x1, 11, 300), (0x2, 20, 500)]);
        let set = DelinquentLoadSet::from_profile(&p, 1);
        assert_eq!(set.pcs(), &[0x1], "0x1 totals 600 > 500");
    }

    #[test]
    fn capacity_limits_the_set() {
        let p = profile(&[(1, 0, 30), (2, 0, 20), (3, 0, 10)]);
        let set = DelinquentLoadSet::from_profile(&p, 2);
        assert_eq!(set.len(), 2);
        assert!(set.contains(1) && set.contains(2) && !set.contains(3));
    }

    #[test]
    fn coverage_over_a_miss_stream() {
        let set = DelinquentLoadSet::from_pcs([0xA]);
        let misses = vec![
            Tuple::new(0xA, 1),
            Tuple::new(0xA, 2),
            Tuple::new(0xB, 3),
            Tuple::new(0xA, 4),
        ];
        let cov = set.coverage(misses);
        assert_eq!(cov.misses, 4);
        assert_eq!(cov.covered, 3);
        assert!((cov.ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_has_zero_ratio() {
        let set = DelinquentLoadSet::from_pcs([1]);
        assert_eq!(set.coverage(std::iter::empty()).ratio(), 0.0);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let p = profile(&[(9, 0, 100), (3, 0, 100)]);
        let set = DelinquentLoadSet::from_profile(&p, 1);
        assert_eq!(set.pcs(), &[3]);
    }

    #[test]
    #[should_panic(expected = "at least one load")]
    fn zero_capacity_panics() {
        DelinquentLoadSet::from_profile(&profile(&[(1, 0, 1)]), 0);
    }

    mod prefetcher {
        use super::super::*;
        use mhp_cache::{access::AccessPattern, Cache, CacheConfig};

        fn cache() -> Cache {
            Cache::new(CacheConfig::new(16 * 1024, 64, 4).unwrap())
        }

        #[test]
        fn sequential_stream_misses_collapse() {
            let targets = DelinquentLoadSet::from_pcs([0x42]);
            let p = NextLinePrefetcher::new(targets, 4);
            let outcome = p.evaluate(cache, || {
                let mut pat = AccessPattern::new(1);
                pat.stream(0x42, 0x100000, 64, 1 << 22, 1.0);
                pat.events().take(50_000)
            });
            assert!(outcome.baseline_misses > 40_000, "streams miss constantly");
            assert!(
                outcome.miss_reduction() > 0.7,
                "next-line prefetch must eliminate most stream misses, got {:.2}",
                outcome.miss_reduction()
            );
        }

        #[test]
        fn pointer_chase_gains_nothing() {
            let targets = DelinquentLoadSet::from_pcs([0x7]);
            let p = NextLinePrefetcher::new(targets, 2);
            let outcome = p.evaluate(cache, || {
                let mut pat = AccessPattern::new(2);
                pat.chase(0x7, 0x100000, 1 << 21, 1.0);
                pat.events().take(30_000)
            });
            assert!(
                outcome.miss_reduction() < 0.1,
                "irregular chases defeat next-line prefetching, got {:.2}",
                outcome.miss_reduction()
            );
        }

        #[test]
        fn untargeted_loads_trigger_no_prefetches() {
            let targets = DelinquentLoadSet::from_pcs([0x999]);
            let p = NextLinePrefetcher::new(targets, 4);
            let outcome = p.evaluate(cache, || {
                let mut pat = AccessPattern::new(3);
                pat.stream(0x42, 0x100000, 64, 1 << 22, 1.0);
                pat.events().take(10_000)
            });
            assert_eq!(outcome.prefetches_issued, 0);
            assert_eq!(outcome.baseline_misses, outcome.prefetched_misses);
        }

        #[test]
        #[should_panic(expected = "degree must be positive")]
        fn zero_degree_panics() {
            NextLinePrefetcher::new(DelinquentLoadSet::from_pcs([1]), 0);
        }
    }
}
