//! Trace formation — the instruction-fetch client (§2).
//!
//! *"By dynamically extracting and ordering code that is frequently
//! executed, instruction fetch can be made much more efficient. In order to
//! find the frequently executed code and to determine the best layout, a
//! hardware profiling table is needed"* (§2, citing Rotenberg's trace
//! cache). This module builds straight-line traces by greedily chaining
//! each block to its hottest profiled successor, then measures how much of
//! a subsequent edge stream the formed traces cover.

use std::collections::{HashMap, HashSet};

use mhp_core::{IntervalProfile, Tuple};

/// One formed trace: the ordered list of edges it embeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    edges: Vec<Tuple>,
}

impl Trace {
    /// The edges of the trace, in control-flow order.
    pub fn edges(&self) -> &[Tuple] {
        &self.edges
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` for an empty trace (never produced by the former).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The PC the trace starts at.
    pub fn entry(&self) -> u64 {
        self.edges[0].pc().as_u64()
    }
}

/// Builds traces from an edge profile.
///
/// The profile's `<branch pc, target pc>` candidates induce a successor
/// graph; the former repeatedly seeds a trace at the hottest unused edge
/// and extends it through each block's hottest profiled outgoing edge,
/// stopping at `max_edges`, on a cycle, or when no profiled successor
/// exists.
///
/// # Examples
///
/// ```
/// use mhp_apps::TraceFormer;
/// use mhp_core::{Candidate, IntervalConfig, IntervalProfile, Tuple};
/// // A hot loop: A -> B -> A.
/// let profile = IntervalProfile::from_candidates(
///     0,
///     IntervalConfig::short(),
///     vec![
///         Candidate::new(Tuple::new(0xA, 0xB), 900),
///         Candidate::new(Tuple::new(0xB, 0xA), 880),
///     ],
/// );
/// let former = TraceFormer::from_profile(&profile);
/// let traces = former.form_traces(8, 4);
/// assert_eq!(traces[0].entry(), 0xA);
/// assert_eq!(traces[0].len(), 2, "stops when the loop closes");
/// ```
#[derive(Debug, Clone)]
pub struct TraceFormer {
    /// Hottest successor edge per source PC.
    successors: HashMap<u64, (u64, u64)>, // pc -> (target, count)
    /// All profiled edges, hottest first (trace seeds).
    ranked_edges: Vec<Tuple>,
    /// Membership set for coverage queries.
    profiled: HashSet<Tuple>,
}

impl TraceFormer {
    /// Builds the successor graph from an edge profile.
    pub fn from_profile(profile: &IntervalProfile) -> Self {
        let mut successors: HashMap<u64, (u64, u64)> = HashMap::new();
        for c in profile.candidates() {
            let pc = c.tuple.pc().as_u64();
            let target = c.tuple.value().as_u64();
            let entry = successors.entry(pc).or_insert((target, c.count));
            if c.count > entry.1 || (c.count == entry.1 && target < entry.0) {
                *entry = (target, c.count);
            }
        }
        let ranked_edges: Vec<Tuple> = profile.tuples().collect();
        let profiled = ranked_edges.iter().copied().collect();
        TraceFormer {
            successors,
            ranked_edges,
            profiled,
        }
    }

    /// Forms up to `max_traces` traces of at most `max_edges` edges each.
    /// Each profiled edge belongs to at most one trace.
    pub fn form_traces(&self, max_edges: usize, max_traces: usize) -> Vec<Trace> {
        assert!(max_edges > 0 && max_traces > 0, "degenerate trace budget");
        let mut used: HashSet<Tuple> = HashSet::new();
        let mut traces = Vec::new();
        for &seed in &self.ranked_edges {
            if traces.len() == max_traces {
                break;
            }
            if used.contains(&seed) {
                continue;
            }
            let mut edges = vec![seed];
            used.insert(seed);
            let mut visited_pcs: HashSet<u64> = [seed.pc().as_u64()].into();
            let mut at = seed.value().as_u64();
            while edges.len() < max_edges {
                if !visited_pcs.insert(at) {
                    break; // loop closed
                }
                let Some(&(target, _)) = self.successors.get(&at) else {
                    break; // fall off the profiled region
                };
                let edge = Tuple::new(at, target);
                if used.contains(&edge) {
                    break; // merges into an existing trace
                }
                used.insert(edge);
                edges.push(edge);
                at = target;
            }
            traces.push(Trace { edges });
        }
        traces
    }

    /// Fraction of a dynamic edge stream covered by `traces` (edges that
    /// lie inside any formed trace), in `[0, 1]`.
    pub fn coverage(traces: &[Trace], events: impl IntoIterator<Item = Tuple>) -> f64 {
        let in_traces: HashSet<Tuple> = traces
            .iter()
            .flat_map(|t| t.edges.iter().copied())
            .collect();
        let mut total = 0u64;
        let mut covered = 0u64;
        for e in events {
            total += 1;
            if in_traces.contains(&e) {
                covered += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            covered as f64 / total as f64
        }
    }

    /// Whether `edge` was in the profile at all.
    pub fn knows(&self, edge: Tuple) -> bool {
        self.profiled.contains(&edge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhp_core::{Candidate, IntervalConfig};

    fn profile(edges: &[(u64, u64, u64)]) -> IntervalProfile {
        IntervalProfile::from_candidates(
            0,
            IntervalConfig::short(),
            edges
                .iter()
                .map(|&(pc, t, n)| Candidate::new(Tuple::new(pc, t), n))
                .collect(),
        )
    }

    #[test]
    fn chains_follow_the_hottest_successor() {
        // A -> B (hot) and A -> C (cold); B -> D.
        let p = profile(&[(0xA, 0xB, 900), (0xA, 0xC, 200), (0xB, 0xD, 800)]);
        let former = TraceFormer::from_profile(&p);
        let traces = former.form_traces(8, 1);
        let edges: Vec<(u64, u64)> = traces[0]
            .edges()
            .iter()
            .map(|e| (e.pc().as_u64(), e.value().as_u64()))
            .collect();
        assert_eq!(edges, vec![(0xA, 0xB), (0xB, 0xD)]);
    }

    #[test]
    fn loops_terminate_traces() {
        let p = profile(&[(1, 2, 500), (2, 3, 490), (3, 1, 480)]);
        let former = TraceFormer::from_profile(&p);
        let traces = former.form_traces(100, 1);
        assert_eq!(traces[0].len(), 3, "the cycle is traversed exactly once");
    }

    #[test]
    fn max_edges_bounds_trace_length() {
        let p = profile(&[(1, 2, 500), (2, 3, 490), (3, 4, 480), (4, 5, 470)]);
        let former = TraceFormer::from_profile(&p);
        let traces = former.form_traces(2, 1);
        assert_eq!(traces[0].len(), 2);
    }

    #[test]
    fn edges_are_not_shared_between_traces() {
        let p = profile(&[(1, 2, 500), (2, 3, 490), (7, 2, 400)]);
        let former = TraceFormer::from_profile(&p);
        let traces = former.form_traces(8, 3);
        let mut seen = HashSet::new();
        for t in &traces {
            for &e in t.edges() {
                assert!(seen.insert(e), "edge {e} appears in two traces");
            }
        }
    }

    #[test]
    fn coverage_measures_dynamic_stream() {
        let p = profile(&[(1, 2, 500), (2, 3, 490)]);
        let former = TraceFormer::from_profile(&p);
        let traces = former.form_traces(8, 1);
        let stream = vec![
            Tuple::new(1, 2),
            Tuple::new(2, 3),
            Tuple::new(1, 2),
            Tuple::new(9, 9), // off-trace
        ];
        let cov = TraceFormer::coverage(&traces, stream);
        assert!((cov - 0.75).abs() < 1e-12);
    }

    #[test]
    fn coverage_of_empty_stream_is_zero() {
        assert_eq!(TraceFormer::coverage(&[], std::iter::empty()), 0.0);
    }

    #[test]
    fn hotter_profiles_yield_better_coverage() {
        // The point of the exercise: a profile that found the hot loop
        // covers more of the stream than one that found only noise.
        let hot = profile(&[(1, 2, 900), (2, 1, 890)]);
        let cold = profile(&[(50, 51, 120)]);
        let stream: Vec<Tuple> = (0..100)
            .flat_map(|_| [Tuple::new(1, 2), Tuple::new(2, 1)])
            .chain([Tuple::new(50, 51)])
            .collect();
        let t_hot = TraceFormer::from_profile(&hot).form_traces(8, 2);
        let t_cold = TraceFormer::from_profile(&cold).form_traces(8, 2);
        assert!(
            TraceFormer::coverage(&t_hot, stream.iter().copied())
                > TraceFormer::coverage(&t_cold, stream.iter().copied())
        );
    }
}
