//! Multiple-path execution selection — the hard-branch client (§2).
//!
//! *"Multiple path execution tries to eliminate branch misprediction
//! penalties by executing down multiple paths. … this should not be done on
//! all branches, only those that are known to be problematic. Finding these
//! problematic branches is again a task that can be performed by a hardware
//! profiler."*
//!
//! From an edge profile, per-branch statistics (both outgoing edges'
//! frequencies) give each branch's *bias*; low-bias branches are the
//! hard-to-predict ones worth forking. The selector picks the most
//! mispredicting branches under a fork budget and reports how many
//! (profile-estimated) mispredictions the selection covers.

use std::collections::HashMap;

use mhp_core::{IntervalProfile, Tuple};

/// Aggregated profile statistics for one static branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchStats {
    /// The branch PC.
    pub pc: u64,
    /// Executions observed in the profile (sum over its edges).
    pub executions: u64,
    /// Executions of the most frequent target.
    pub majority: u64,
}

impl BranchStats {
    /// The branch's bias: probability of the majority target, in
    /// `[0.5, 1.0]` for two-way branches (can be lower for indirect fans).
    pub fn bias(&self) -> f64 {
        if self.executions == 0 {
            1.0
        } else {
            self.majority as f64 / self.executions as f64
        }
    }

    /// Estimated mispredictions for an always-majority static predictor:
    /// the executions that did *not* go to the majority target.
    pub fn est_mispredicts(&self) -> u64 {
        self.executions - self.majority
    }
}

/// Selects fork-worthy branches from an edge profile.
///
/// # Examples
///
/// ```
/// use mhp_apps::MultipathSelector;
/// use mhp_core::{Candidate, IntervalConfig, IntervalProfile, Tuple};
/// let profile = IntervalProfile::from_candidates(
///     0,
///     IntervalConfig::short(),
///     vec![
///         // A 55/45 branch: hard.
///         Candidate::new(Tuple::new(0xA, 1), 550),
///         Candidate::new(Tuple::new(0xA, 2), 450),
///         // A 99/1 branch: easy.
///         Candidate::new(Tuple::new(0xB, 1), 990),
///         Candidate::new(Tuple::new(0xB, 2), 10),
///     ],
/// );
/// let selector = MultipathSelector::from_profile(&profile);
/// let picks = selector.select(1);
/// assert_eq!(picks[0].pc, 0xA);
/// ```
#[derive(Debug, Clone)]
pub struct MultipathSelector {
    branches: Vec<BranchStats>,
}

impl MultipathSelector {
    /// Aggregates an edge profile into per-branch statistics.
    pub fn from_profile(profile: &IntervalProfile) -> Self {
        let mut by_pc: HashMap<u64, (u64, u64)> = HashMap::new(); // (executions, majority)
        for c in profile.candidates() {
            let entry = by_pc.entry(c.tuple.pc().as_u64()).or_insert((0, 0));
            entry.0 += c.count;
            entry.1 = entry.1.max(c.count);
        }
        let mut branches: Vec<BranchStats> = by_pc
            .into_iter()
            .map(|(pc, (executions, majority))| BranchStats {
                pc,
                executions,
                majority,
            })
            .collect();
        // Most mispredicting first; deterministic tie-break.
        branches.sort_unstable_by(|a, b| {
            b.est_mispredicts()
                .cmp(&a.est_mispredicts())
                .then(a.pc.cmp(&b.pc))
        });
        MultipathSelector { branches }
    }

    /// All profiled branches, most mispredicting first.
    pub fn branches(&self) -> &[BranchStats] {
        &self.branches
    }

    /// Picks up to `budget` branches worth forking (those with estimated
    /// mispredictions, hardest first).
    pub fn select(&self, budget: usize) -> Vec<BranchStats> {
        self.branches
            .iter()
            .filter(|b| b.est_mispredicts() > 0)
            .take(budget)
            .copied()
            .collect()
    }

    /// Evaluates a selection against a dynamic edge stream: the fraction of
    /// actual mispredictions whose branch was selected. A misprediction is
    /// an event that does not follow its branch's dynamic-majority target
    /// (an always-majority static predictor), with the majority learned
    /// from the evaluation stream itself so the metric is profile-agnostic.
    pub fn misprediction_coverage(
        &self,
        selection: &[BranchStats],
        events: impl IntoIterator<Item = Tuple>,
    ) -> f64 {
        let selected: std::collections::HashSet<u64> = selection.iter().map(|b| b.pc).collect();
        // First pass over the events to find each branch's dynamic majority
        // target, then count non-majority events as mispredictions.
        let collected: Vec<Tuple> = events.into_iter().collect();
        let mut counts: HashMap<(u64, u64), u64> = HashMap::new();
        for e in &collected {
            *counts
                .entry((e.pc().as_u64(), e.value().as_u64()))
                .or_insert(0) += 1;
        }
        let mut majority: HashMap<u64, (u64, u64)> = HashMap::new(); // pc -> (target, count)
        for (&(pc, target), &n) in &counts {
            let entry = majority.entry(pc).or_insert((target, n));
            if n > entry.1 || (n == entry.1 && target < entry.0) {
                *entry = (target, n);
            }
        }
        let mut mispredicts = 0u64;
        let mut covered = 0u64;
        for e in &collected {
            let pc = e.pc().as_u64();
            let (maj, _) = majority[&pc];
            if e.value().as_u64() != maj {
                mispredicts += 1;
                if selected.contains(&pc) {
                    covered += 1;
                }
            }
        }
        if mispredicts == 0 {
            0.0
        } else {
            covered as f64 / mispredicts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhp_core::{Candidate, IntervalConfig};

    fn profile(edges: &[(u64, u64, u64)]) -> IntervalProfile {
        IntervalProfile::from_candidates(
            0,
            IntervalConfig::short(),
            edges
                .iter()
                .map(|&(pc, t, n)| Candidate::new(Tuple::new(pc, t), n))
                .collect(),
        )
    }

    #[test]
    fn bias_and_mispredicts_are_computed_per_branch() {
        let p = profile(&[(0xA, 1, 700), (0xA, 2, 300)]);
        let s = MultipathSelector::from_profile(&p);
        let b = s.branches()[0];
        assert_eq!(b.executions, 1000);
        assert_eq!(b.majority, 700);
        assert!((b.bias() - 0.7).abs() < 1e-12);
        assert_eq!(b.est_mispredicts(), 300);
    }

    #[test]
    fn hard_branches_rank_first() {
        let p = profile(&[
            (0xA, 1, 550),
            (0xA, 2, 450), // 450 mispredicts
            (0xB, 1, 990),
            (0xB, 2, 10), // 10 mispredicts
        ]);
        let s = MultipathSelector::from_profile(&p);
        assert_eq!(s.branches()[0].pc, 0xA);
        let picks = s.select(1);
        assert_eq!(picks.len(), 1);
        assert_eq!(picks[0].pc, 0xA);
    }

    #[test]
    fn perfectly_biased_branches_are_never_selected() {
        let p = profile(&[(0xC, 1, 500)]); // single edge: bias 1.0
        let s = MultipathSelector::from_profile(&p);
        assert!(s.select(10).is_empty());
    }

    #[test]
    fn coverage_counts_covered_mispredictions() {
        let p = profile(&[(0xA, 1, 550), (0xA, 2, 450), (0xB, 1, 990), (0xB, 2, 10)]);
        let s = MultipathSelector::from_profile(&p);
        let picks = s.select(1); // only 0xA
                                 // Stream: 0xA mispredicts twice (target 2), 0xB once (target 2).
        let stream = vec![
            Tuple::new(0xA, 1),
            Tuple::new(0xA, 1),
            Tuple::new(0xA, 2),
            Tuple::new(0xA, 2),
            Tuple::new(0xA, 1),
            Tuple::new(0xB, 1),
            Tuple::new(0xB, 1),
            Tuple::new(0xB, 2),
        ];
        let cov = s.misprediction_coverage(&picks, stream);
        assert!((cov - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_with_no_mispredictions_is_zero() {
        let p = profile(&[(0xA, 1, 100)]);
        let s = MultipathSelector::from_profile(&p);
        let cov = s.misprediction_coverage(&[], vec![Tuple::new(0xA, 1); 5]);
        assert_eq!(cov, 0.0);
    }

    #[test]
    fn budget_limits_the_selection() {
        let p = profile(&[
            (1, 1, 60),
            (1, 2, 40),
            (2, 1, 60),
            (2, 2, 40),
            (3, 1, 60),
            (3, 2, 40),
        ]);
        let s = MultipathSelector::from_profile(&p);
        assert_eq!(s.select(2).len(), 2);
        assert_eq!(s.select(10).len(), 3);
    }
}
