//! Frequent-value table — the value-based-optimization client (§2).
//!
//! Zhang et al. (ASPLOS 2000, cited by the paper) found that ~50 % of
//! memory accesses are dominated by a handful of distinct values and built
//! a value-centric compressed cache around them — *"but do not detail how
//! those values can be captured dynamically. A hardware profiler could be
//! used to capture this information."* This module is that missing piece:
//! it distills a value profile into the small value dictionary such a cache
//! would load, and measures how much of a subsequent stream the dictionary
//! covers.

use std::collections::HashMap;

use mhp_core::{IntervalProfile, Tuple};

/// How well a frequent-value dictionary covered an access stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompressionStats {
    /// Events examined.
    pub accesses: u64,
    /// Events whose value was in the dictionary (compressible).
    pub compressible: u64,
}

impl CompressionStats {
    /// Fraction of accesses compressible, in `[0, 1]`.
    pub fn ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.compressible as f64 / self.accesses as f64
        }
    }
}

/// A dictionary of the `N` most frequent load values, distilled from a
/// value profile.
///
/// The profile's candidates are `<pc, value>` tuples; the dictionary sums
/// counts per *value* across PCs (the cache compresses by value, not by
/// instruction) and keeps the top `N`.
///
/// # Examples
///
/// ```
/// use mhp_apps::FrequentValueTable;
/// use mhp_core::{Candidate, IntervalConfig, IntervalProfile, Tuple};
/// let profile = IntervalProfile::from_candidates(
///     0,
///     IntervalConfig::short(),
///     vec![
///         Candidate::new(Tuple::new(0x10, 0), 900),  // value 0 from pc 0x10
///         Candidate::new(Tuple::new(0x20, 0), 400),  // value 0 again
///         Candidate::new(Tuple::new(0x30, 7), 800),
///         Candidate::new(Tuple::new(0x40, 9), 100),
///     ],
/// );
/// let fvc = FrequentValueTable::from_profile(&profile, 2);
/// assert!(fvc.contains(0));  // 1300 combined
/// assert!(fvc.contains(7));  // 800
/// assert!(!fvc.contains(9)); // cut by the size limit
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentValueTable {
    values: Vec<u64>,
}

impl FrequentValueTable {
    /// Distills the top `capacity` values from `profile`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — a zero-entry dictionary is a
    /// configuration bug, not a meaningful table.
    pub fn from_profile(profile: &IntervalProfile, capacity: usize) -> Self {
        assert!(capacity > 0, "dictionary needs at least one entry");
        let mut by_value: HashMap<u64, u64> = HashMap::new();
        for c in profile.candidates() {
            *by_value.entry(c.tuple.value().as_u64()).or_insert(0) += c.count;
        }
        // Hottest first; deterministic tie-break on the value itself.
        let ranked = mhp_core::top_k_by_count(by_value.into_iter().collect(), capacity);
        FrequentValueTable {
            values: ranked.into_iter().map(|(v, _)| v).collect(),
        }
    }

    /// Builds a dictionary from explicit values (e.g. a perfect oracle).
    pub fn from_values(values: impl IntoIterator<Item = u64>) -> Self {
        FrequentValueTable {
            values: values.into_iter().collect(),
        }
    }

    /// The dictionary contents, hottest first.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Number of dictionary entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether `value` is in the dictionary (compressible).
    pub fn contains(&self, value: u64) -> bool {
        self.values.contains(&value)
    }

    /// Measures dictionary coverage over a value-event stream.
    pub fn evaluate(&self, events: impl IntoIterator<Item = Tuple>) -> CompressionStats {
        let mut stats = CompressionStats::default();
        for t in events {
            stats.accesses += 1;
            if self.contains(t.value().as_u64()) {
                stats.compressible += 1;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhp_core::{Candidate, IntervalConfig};

    fn profile(cands: &[(u64, u64, u64)]) -> IntervalProfile {
        IntervalProfile::from_candidates(
            0,
            IntervalConfig::short(),
            cands
                .iter()
                .map(|&(pc, v, n)| Candidate::new(Tuple::new(pc, v), n))
                .collect(),
        )
    }

    #[test]
    fn values_are_summed_across_pcs() {
        let p = profile(&[(1, 42, 300), (2, 42, 300), (3, 7, 500)]);
        let fvc = FrequentValueTable::from_profile(&p, 1);
        assert_eq!(fvc.values(), &[42], "42 totals 600 > 500");
    }

    #[test]
    fn capacity_cuts_the_tail() {
        let p = profile(&[(1, 1, 500), (2, 2, 400), (3, 3, 300)]);
        let fvc = FrequentValueTable::from_profile(&p, 2);
        assert_eq!(fvc.len(), 2);
        assert!(fvc.contains(1) && fvc.contains(2) && !fvc.contains(3));
    }

    #[test]
    fn evaluate_counts_coverage() {
        let fvc = FrequentValueTable::from_values([5, 9]);
        let events = vec![
            Tuple::new(1, 5),
            Tuple::new(1, 9),
            Tuple::new(1, 5),
            Tuple::new(1, 3),
        ];
        let stats = fvc.evaluate(events);
        assert_eq!(stats.accesses, 4);
        assert_eq!(stats.compressible, 3);
        assert!((stats.ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_has_zero_ratio() {
        let fvc = FrequentValueTable::from_values([1]);
        assert_eq!(fvc.evaluate(std::iter::empty()).ratio(), 0.0);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let p = profile(&[(1, 9, 100), (2, 3, 100)]);
        let fvc = FrequentValueTable::from_profile(&p, 1);
        assert_eq!(fvc.values(), &[3], "equal counts: smaller value wins");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        FrequentValueTable::from_profile(&profile(&[(1, 1, 1)]), 0);
    }
}
