//! # mhp-apps — run-time optimization clients
//!
//! §2 of *"Catching Accurate Profiles in Hardware"* motivates the profiler
//! with four hardware optimizations. This crate implements a working client
//! for each, consuming [`IntervalProfile`](mhp_core::IntervalProfile)s —
//! so any profiler behind the [`EventProfiler`](mhp_core::EventProfiler)
//! trait (multi-hash, single-hash, perfect, stratified) can drive them, and
//! the *quality of the profile* translates directly into measurable
//! optimization effectiveness:
//!
//! | §2 motivation | client | profile consumed | effectiveness metric |
//! |---|---|---|---|
//! | value-based optimization (frequent-value cache) | [`FrequentValueTable`] | value profile | fraction of loads compressible |
//! | trace formation | [`TraceFormer`] | edge profile | fraction of dynamic edges inside formed traces |
//! | multiple-path execution | [`MultipathSelector`] | edge profile | mispredictions covered under a fork budget |
//! | cache replacement / prefetching | [`DelinquentLoadSet`] | miss profile (see `mhp-cache`) | fraction of misses from targeted loads |
//!
//! Each client exposes a `from_profile` constructor and an evaluation
//! method over a subsequent event stream — the paper's use model of
//! *"use the accumulator table information gathered during one profile
//! interval to optimize behavior in the next profile interval"* (§5.6.1).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod fvc;
mod multipath;
mod prefetch;
mod trace_form;

pub use fvc::{CompressionStats, FrequentValueTable};
pub use multipath::{BranchStats, MultipathSelector};
pub use prefetch::{DelinquentLoadSet, MissCoverage, NextLinePrefetcher, PrefetchOutcome};
pub use trace_form::{Trace, TraceFormer};
