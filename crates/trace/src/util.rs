//! Deterministic pseudo-randomness shared by the workload generators.
//!
//! Everything in `mhp-trace` is reproducible from a seed: the same seed
//! always yields the same event stream, so experiments (and their error
//! numbers) are repeatable run to run.

/// A 64-bit split-mix generator: tiny, fast, and statistically adequate for
/// workload synthesis.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Uniform value in `0..bound` (multiply-shift; `bound > 0`).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A stateless 64-bit finalizer (the split-mix output function). Used to
/// derive per-PC attributes deterministically from `(seed, pc)` without
/// storing per-PC state.
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes two words into one (for keyed per-entity attributes).
#[inline]
pub fn hash2(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b ^ 0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    fn next_below_covers_the_range() {
        let mut rng = SplitMix64::new(4);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.next_below(8) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all 8 values should appear in 1000 draws"
        );
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn next_f64_mean_is_near_half() {
        let mut rng = SplitMix64::new(6);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn hash2_is_order_sensitive() {
        assert_ne!(hash2(1, 2), hash2(2, 1));
        assert_eq!(hash2(1, 2), hash2(1, 2));
    }

    #[test]
    fn mix64_has_no_trivial_fixed_point_at_small_inputs() {
        for x in 1..100u64 {
            assert_ne!(mix64(x), x);
        }
    }
}
