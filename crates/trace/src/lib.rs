//! # mhp-trace — workload substrate for the Multi-Hash profiler
//!
//! The paper gathers its profiling events from SPEC binaries instrumented
//! with ATOM on Alpha hardware. This crate is the synthetic replacement
//! (documented in the repository's `DESIGN.md`):
//!
//! * [`workload`] / [`edge`] — statistically calibrated value- and
//!   edge-profiling event generators built on a frequency **band model**
//!   plus a Zipf noise tail, with phase and burst machinery for the
//!   inter-interval dynamics of Figure 6;
//! * [`benchmarks`] — the paper's eight benchmarks (burg, deltablue, gcc,
//!   go, li, m88ksim, sis, vortex), each a calibrated spec;
//! * [`sim`] — a toy instrumented CPU (ATOM stand-in): a small register
//!   machine whose interpreter emits `<pc, value>` and `<pc, target>`
//!   events through profiling hooks;
//! * [`sampler`] / [`util`] — Zipf and alias-method samplers and the
//!   deterministic RNG everything is seeded from.
//!
//! ## Quick example
//!
//! ```
//! use mhp_trace::Benchmark;
//! let events: Vec<_> = Benchmark::Gcc.value_stream(42).take(10_000).collect();
//! assert_eq!(events.len(), 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod benchmarks;
pub mod edge;
pub mod sampler;
pub mod sim;
pub mod stream;
pub mod util;
pub mod workload;

pub use benchmarks::Benchmark;
pub use edge::{EdgeWorkload, EdgeWorkloadSpec};
pub use stream::{EventStream, StreamKind, StreamSpec};
pub use workload::{BandSpec, ValueWorkload, ValueWorkloadSpec};
