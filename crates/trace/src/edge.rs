//! Synthetic edge-profiling workloads.
//!
//! An edge event is a `<branch PC, target PC>` tuple (§3). Edge streams
//! differ from value streams in two ways the paper calls out (§6.4.2): each
//! static branch produces at most a handful of distinct tuples (two for a
//! conditional, a bounded fan-out for an indirect jump), so the profiler
//! *"will see fewer distinct tuples than value profiling"* — there is no
//! streaming noise component.
//!
//! [`EdgeWorkload`] reuses the band model of
//! [`ValueWorkload`](crate::workload::ValueWorkload): band members are hot
//! *branches* whose dynamic frequency is log-spaced within the band; each
//! branch splits its mass between a taken edge and a fall-through edge with a
//! per-branch bias, so a single hot branch can contribute one or two
//! candidate edges. The noise tail draws cold branches from a Zipf
//! distribution; a configurable fraction are indirect jumps with a wide
//! target fan-out.

use mhp_core::Tuple;

use crate::sampler::{DiscreteSampler, ZipfSampler};
use crate::util::{hash2, SplitMix64};
use crate::workload::BandSpec;

/// Branch-bias buckets used for band members, assigned round-robin by
/// member index so every band contains both strongly biased and
/// hard-to-predict branches (the §2 multipath premise).
const BIASES: [f64; 4] = [0.99, 0.95, 0.85, 0.70];

/// Full specification of a synthetic edge-profiling workload.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeWorkloadSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Branches whose *taken edge* sits above the short-config threshold.
    pub hot: BandSpec,
    /// Branches whose taken edge sits between the two thresholds.
    pub mid: BandSpec,
    /// Near-miss branches below every threshold.
    pub warm: BandSpec,
    /// Size of the cold-branch population.
    pub noise_branches: usize,
    /// Zipf skew of cold-branch selection.
    pub noise_theta: f64,
    /// Rank shift applied to the noise Zipf (flattens the head).
    pub noise_rank_offset: usize,
    /// Fraction of cold branches that are indirect jumps.
    pub indirect_fraction: f64,
    /// Distinct targets per indirect jump.
    pub indirect_targets: usize,
    /// Number of program phases (1 = none).
    pub phases: usize,
    /// Events per phase.
    pub phase_len: u64,
    /// Probability that a band branch keeps its identity across phases.
    pub stable_fraction: f64,
    /// Burst groups rotating the hot band (1 = none).
    pub burst_groups: usize,
    /// Events per burst.
    pub burst_len: u64,
    /// Fraction of the hot band that rotates between burst groups.
    pub rotating_fraction: f64,
}

impl EdgeWorkloadSpec {
    /// Total band mass (fraction of the stream in band branches).
    pub fn band_mass(&self) -> f64 {
        self.hot.total_mass() + self.mid.total_mass() + self.warm.total_mass()
    }

    /// Total number of band branches.
    pub fn band_members(&self) -> usize {
        self.hot.count + self.mid.count + self.warm.count
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (see the assertions).
    pub fn validate(&self) {
        assert!(
            self.band_mass() < 0.9,
            "{}: band mass {:.2} leaves too little noise",
            self.name,
            self.band_mass()
        );
        assert!(
            self.noise_branches > 0,
            "{}: need noise branches",
            self.name
        );
        assert!(
            (0.0..=1.0).contains(&self.indirect_fraction)
                && (0.0..=1.0).contains(&self.stable_fraction),
            "{}: probabilities out of range",
            self.name
        );
        assert!(
            self.indirect_targets > 0,
            "{}: indirect jumps need targets",
            self.name
        );
        assert!(
            self.phases >= 1 && self.burst_groups >= 1,
            "{}: degenerate",
            self.name
        );
        assert!(
            self.phases == 1 || self.phase_len > 0,
            "{}: phased workload needs phase_len",
            self.name
        );
        assert!(
            self.burst_groups == 1 || self.burst_len > 0,
            "{}: bursting workload needs burst_len",
            self.name
        );
        assert!(
            (0.0..=1.0).contains(&self.rotating_fraction),
            "{}: rotating fraction out of range",
            self.name
        );
    }
}

/// An infinite, deterministic iterator of `<branch PC, target PC>` events.
///
/// # Examples
///
/// ```
/// use mhp_trace::edge::{EdgeWorkload, EdgeWorkloadSpec};
/// use mhp_trace::workload::BandSpec;
/// let spec = EdgeWorkloadSpec {
///     name: "demo",
///     hot: BandSpec { count: 3, freq_min: 0.02, freq_max: 0.05 },
///     mid: BandSpec::EMPTY,
///     warm: BandSpec::EMPTY,
///     noise_branches: 100,
///     noise_theta: 0.8,
///     noise_rank_offset: 40,
///     indirect_fraction: 0.1,
///     indirect_targets: 16,
///     phases: 1,
///     phase_len: 0,
///     stable_fraction: 1.0,
///     burst_groups: 1,
///     burst_len: 0,
///     rotating_fraction: 1.0,
/// };
/// let events: Vec<_> = EdgeWorkload::new(spec, 1).take(100).collect();
/// assert_eq!(events.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct EdgeWorkload {
    spec: EdgeWorkloadSpec,
    seed: u64,
    rng: SplitMix64,
    samplers: Vec<DiscreteSampler>,
    noise_zipf: ZipfSampler,
    member_count: usize,
    event_idx: u64,
}

impl EdgeWorkload {
    /// Creates the workload from its spec and a stream seed.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`EdgeWorkloadSpec::validate`].
    pub fn new(spec: EdgeWorkloadSpec, seed: u64) -> Self {
        spec.validate();
        let mut freqs = Vec::with_capacity(spec.band_members());
        for i in 0..spec.hot.count {
            freqs.push(spec.hot.freq(i));
        }
        for i in 0..spec.mid.count {
            freqs.push(spec.mid.freq(i));
        }
        for i in 0..spec.warm.count {
            freqs.push(spec.warm.freq(i));
        }
        let noise_mass = 1.0 - freqs.iter().sum::<f64>();
        let samplers = (0..spec.burst_groups)
            .map(|group| {
                let mut weights: Vec<f64> = freqs
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| {
                        let rotating_count =
                            (spec.hot.count as f64 * spec.rotating_fraction).round() as usize;
                        let rotating = spec.burst_groups > 1 && i < rotating_count;
                        if !rotating {
                            f
                        } else if i % spec.burst_groups == group {
                            // Boost the in-burst rate so the long-run
                            // frequency matches the spec.
                            f * spec.burst_groups as f64
                        } else {
                            0.0
                        }
                    })
                    .collect();
                weights.push(noise_mass);
                DiscreteSampler::from_weights(&weights)
            })
            .collect();
        let noise_zipf = ZipfSampler::with_offset(
            spec.noise_branches,
            spec.noise_theta,
            spec.noise_rank_offset,
        );
        EdgeWorkload {
            seed,
            rng: SplitMix64::new(hash2(seed, 0xED6E)),
            samplers,
            noise_zipf,
            member_count: spec.band_members(),
            event_idx: 0,
            spec,
        }
    }

    /// The workload's spec.
    pub fn spec(&self) -> &EdgeWorkloadSpec {
        &self.spec
    }

    fn current_phase(&self) -> u64 {
        if self.spec.phases <= 1 {
            0
        } else {
            (self.event_idx / self.spec.phase_len) % self.spec.phases as u64
        }
    }

    fn current_group(&self) -> usize {
        if self.spec.burst_groups <= 1 {
            0
        } else {
            ((self.event_idx / self.spec.burst_len) % self.spec.burst_groups as u64) as usize
        }
    }

    fn member_pc(&self, i: usize) -> u64 {
        let stable = {
            let roll = hash2(self.seed ^ 0x57AB1E, i as u64);
            (roll as f64 / u64::MAX as f64) < self.spec.stable_fraction
        };
        let phase_eff = if stable { 0 } else { self.current_phase() };
        0x0040_0000 + (phase_eff * self.member_count as u64 + i as u64) * 8
    }

    /// One event from a band branch: taken or fall-through edge.
    fn member_event(&mut self, i: usize) -> Tuple {
        let pc = self.member_pc(i);
        let bias = BIASES[i % BIASES.len()];
        let target = if self.rng.next_f64() < bias {
            // Taken: a branch-specific displacement.
            pc + 16 + (hash2(self.seed ^ 0x7D7, pc) % 4096) * 4
        } else {
            pc + 8 // fall-through
        };
        Tuple::new(pc, target)
    }

    /// One event from a cold branch.
    fn noise_event(&mut self) -> Tuple {
        let rank = self.noise_zipf.sample(&mut self.rng) as u64;
        let pc = 0x0100_0000 + rank * 8;
        let class_roll = hash2(self.seed ^ 0x1AD1, pc) as f64 / u64::MAX as f64;
        let target = if class_roll < self.spec.indirect_fraction {
            // Indirect jump: uniform over a bounded target set.
            let t = self.rng.next_below(self.spec.indirect_targets as u64);
            0x0200_0000 + hash2(self.seed ^ 0x7, pc) % 65_536 + t * 8
        } else {
            // Conditional: a fixed 70/30 split for cold branches.
            if self.rng.next_f64() < 0.7 {
                pc + 16 + (hash2(self.seed ^ 0x7D7, pc) % 4096) * 4
            } else {
                pc + 8
            }
        };
        Tuple::new(pc, target)
    }
}

impl Iterator for EdgeWorkload {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        let group = self.current_group();
        let idx = self.samplers[group].sample(&mut self.rng);
        let tuple = if idx < self.member_count {
            self.member_event(idx)
        } else {
            self.noise_event()
        };
        self.event_idx += 1;
        Some(tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn demo_spec() -> EdgeWorkloadSpec {
        EdgeWorkloadSpec {
            name: "demo",
            hot: BandSpec {
                count: 4,
                freq_min: 0.014,
                freq_max: 0.03,
            },
            mid: BandSpec {
                count: 15,
                freq_min: 0.0014,
                freq_max: 0.006,
            },
            warm: BandSpec {
                count: 30,
                freq_min: 0.0001,
                freq_max: 0.0008,
            },
            noise_branches: 2_000,
            noise_theta: 0.8,
            noise_rank_offset: 40,
            indirect_fraction: 0.05,
            indirect_targets: 64,
            phases: 1,
            phase_len: 0,
            stable_fraction: 1.0,
            burst_groups: 1,
            burst_len: 0,
            rotating_fraction: 1.0,
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let a: Vec<Tuple> = EdgeWorkload::new(demo_spec(), 5).take(500).collect();
        let b: Vec<Tuple> = EdgeWorkload::new(demo_spec(), 5).take(500).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn each_branch_has_bounded_fanout() {
        let mut targets_by_pc: HashMap<u64, HashSet<u64>> = HashMap::new();
        for t in EdgeWorkload::new(demo_spec(), 7).take(200_000) {
            targets_by_pc
                .entry(t.pc().as_u64())
                .or_default()
                .insert(t.value().as_u64());
        }
        for (pc, targets) in &targets_by_pc {
            assert!(
                targets.len() <= 64,
                "branch {pc:#x} has {} targets (> indirect fan-out)",
                targets.len()
            );
        }
    }

    #[test]
    fn distinct_edges_saturate_with_stream_length() {
        // Unlike value profiling there is no streaming component: the distinct
        // count must flatten out.
        let distinct_at = |n: usize| {
            EdgeWorkload::new(demo_spec(), 3)
                .take(n)
                .collect::<HashSet<_>>()
                .len()
        };
        let d_small = distinct_at(50_000);
        let d_large = distinct_at(500_000);
        assert!(
            (d_large as f64) < (d_small as f64) * 3.0,
            "edge distinct counts should saturate: {d_small} -> {d_large}"
        );
    }

    #[test]
    fn hot_edges_are_frequent() {
        let n = 200_000;
        let mut counts: HashMap<Tuple, u64> = HashMap::new();
        for t in EdgeWorkload::new(demo_spec(), 9).take(n) {
            *counts.entry(t).or_insert(0) += 1;
        }
        let max = counts.values().max().copied().unwrap() as f64 / n as f64;
        // Hottest branch 3% * bias at least 0.70 -> >= 2%.
        assert!(max > 0.015, "hottest edge frequency {max}");
    }

    #[test]
    fn biased_branches_emit_both_edges() {
        let mut targets: HashMap<u64, HashSet<u64>> = HashMap::new();
        let wl = EdgeWorkload::new(demo_spec(), 9);
        let hot_limit = 0x0040_0000 + 8 * 4;
        for t in wl.take(100_000) {
            if t.pc().as_u64() < hot_limit {
                targets
                    .entry(t.pc().as_u64())
                    .or_default()
                    .insert(t.value().as_u64());
            }
        }
        for (pc, ts) in &targets {
            assert_eq!(
                ts.len(),
                2,
                "hot branch {pc:#x} should show taken + fall-through"
            );
        }
    }

    #[test]
    fn phases_remap_unstable_branches() {
        let mut spec = demo_spec();
        spec.phases = 2;
        spec.phase_len = 20_000;
        spec.stable_fraction = 0.0;
        let mut wl = EdgeWorkload::new(spec, 1);
        let band_pcs = |it: &mut dyn Iterator<Item = Tuple>| -> HashSet<u64> {
            it.map(|t| t.pc().as_u64())
                .filter(|&p| p < 0x0100_0000)
                .collect()
        };
        let first = band_pcs(&mut (&mut wl).take(20_000));
        let second = band_pcs(&mut (&mut wl).take(20_000));
        assert!(first.intersection(&second).count() == 0);
    }

    #[test]
    #[should_panic(expected = "band mass")]
    fn overweight_bands_rejected() {
        let mut spec = demo_spec();
        spec.hot = BandSpec {
            count: 100,
            freq_min: 0.02,
            freq_max: 0.02,
        };
        EdgeWorkload::new(spec, 1);
    }
}
