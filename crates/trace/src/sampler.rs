//! Discrete sampling: Walker's alias method and Zipf-distributed ranks.
//!
//! Program events are famously skewed — a few static instructions dominate
//! dynamic execution. The workload models draw PCs from a Zipf(θ)
//! distribution over the active working set, which reproduces both the small
//! number of candidate tuples and the long noise tail the paper's Figures 4
//! and 5 report. The alias method gives O(1) draws, which matters when
//! generating tens of millions of events.

use crate::util::SplitMix64;

/// An O(1) sampler over an arbitrary discrete distribution (Walker's alias
/// method).
///
/// # Examples
///
/// ```
/// use mhp_trace::sampler::DiscreteSampler;
/// use mhp_trace::util::SplitMix64;
/// let sampler = DiscreteSampler::from_weights(&[1.0, 0.0, 3.0]);
/// let mut rng = SplitMix64::new(1);
/// for _ in 0..100 {
///     let i = sampler.sample(&mut rng);
///     assert!(i == 0 || i == 2, "zero-weight item must never be drawn");
/// }
/// ```
#[derive(Debug, Clone)]
pub struct DiscreteSampler {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl DiscreteSampler {
    /// Builds the alias tables from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn from_weights(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "weight {w} invalid");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");
        let n = weights.len();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for &i in large.iter().chain(small.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        DiscreteSampler { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Returns `true` if the sampler has no categories (never true for a
    /// constructed sampler).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    #[inline]
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let i = rng.next_below(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// A Zipf(θ) rank sampler: rank `r` (0-based) is drawn with probability
/// proportional to `1 / (r + 1)^theta`.
///
/// # Examples
///
/// ```
/// use mhp_trace::sampler::ZipfSampler;
/// use mhp_trace::util::SplitMix64;
/// let zipf = ZipfSampler::new(100, 1.0);
/// let mut rng = SplitMix64::new(2);
/// let mut rank0 = 0;
/// for _ in 0..10_000 {
///     if zipf.sample(&mut rng) == 0 {
///         rank0 += 1;
///     }
/// }
/// // Rank 0 carries ~1/H_100 ~= 19% of the mass.
/// assert!(rank0 > 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    inner: DiscreteSampler,
    theta: f64,
}

impl ZipfSampler {
    /// Creates a Zipf sampler over `n` ranks with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        ZipfSampler::with_offset(n, theta, 0)
    }

    /// Creates a *shifted* Zipf sampler: rank `r` is drawn with probability
    /// proportional to `1 / (r + 1 + offset)^theta`. Shifting flattens the
    /// head — useful for noise populations that should pressure the hash
    /// tables without any single member crossing a candidate threshold.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn with_offset(n: usize, theta: f64, offset: usize) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(theta >= 0.0 && theta.is_finite(), "theta {theta} invalid");
        let weights: Vec<f64> = (0..n)
            .map(|r| 1.0 / ((r + 1 + offset) as f64).powf(theta))
            .collect();
        ZipfSampler {
            inner: DiscreteSampler::from_weights(&weights),
            theta,
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Returns `true` if the sampler has no ranks (never true for a
    /// constructed sampler).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one rank (0 = most frequent).
    #[inline]
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        self.inner.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_method_matches_weights_statistically() {
        let sampler = DiscreteSampler::from_weights(&[1.0, 2.0, 7.0]);
        let mut rng = SplitMix64::new(11);
        let n = 100_000;
        let mut counts = [0u64; 3];
        for _ in 0..n {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let freqs: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((freqs[0] - 0.1).abs() < 0.01, "f0={}", freqs[0]);
        assert!((freqs[1] - 0.2).abs() < 0.01, "f1={}", freqs[1]);
        assert!((freqs[2] - 0.7).abs() < 0.01, "f2={}", freqs[2]);
    }

    #[test]
    fn single_category_always_sampled() {
        let sampler = DiscreteSampler::from_weights(&[5.0]);
        let mut rng = SplitMix64::new(1);
        for _ in 0..10 {
            assert_eq!(sampler.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_weights_panic() {
        DiscreteSampler::from_weights(&[]);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn negative_weight_panics() {
        DiscreteSampler::from_weights(&[1.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "all be zero")]
    fn all_zero_weights_panic() {
        DiscreteSampler::from_weights(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let zipf = ZipfSampler::new(1_000, 1.0);
        let mut rng = SplitMix64::new(13);
        let n = 100_000;
        let mut rank0 = 0u64;
        let mut rank_last = 0u64;
        for _ in 0..n {
            match zipf.sample(&mut rng) {
                0 => rank0 += 1,
                999 => rank_last += 1,
                _ => {}
            }
        }
        assert!(
            rank0 > 100 * rank_last.max(1),
            "rank0={rank0} last={rank_last}"
        );
        // H_1000 ~= 7.49, so rank 0 should carry ~13% of mass.
        let f0 = rank0 as f64 / n as f64;
        assert!((f0 - 0.1335).abs() < 0.02, "f0={f0}");
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let zipf = ZipfSampler::new(10, 0.0);
        let mut rng = SplitMix64::new(17);
        let n = 100_000;
        let mut counts = vec![0u64; 10];
        for _ in 0..n {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / n as f64;
            assert!((f - 0.1).abs() < 0.01, "f={f}");
        }
    }

    #[test]
    fn higher_theta_concentrates_more() {
        let mild = ZipfSampler::new(100, 0.5);
        let steep = ZipfSampler::new(100, 1.5);
        let mut rng_a = SplitMix64::new(19);
        let mut rng_b = SplitMix64::new(19);
        let n = 50_000;
        let top_mild = (0..n).filter(|_| mild.sample(&mut rng_a) == 0).count();
        let top_steep = (0..n).filter(|_| steep.sample(&mut rng_b) == 0).count();
        assert!(top_steep > top_mild);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_zero_ranks_panics() {
        ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn offset_flattens_the_head() {
        let plain = ZipfSampler::new(1_000, 0.7);
        let shifted = ZipfSampler::with_offset(1_000, 0.7, 50);
        let mut rng_a = SplitMix64::new(23);
        let mut rng_b = SplitMix64::new(23);
        let n = 50_000;
        let top_plain = (0..n).filter(|_| plain.sample(&mut rng_a) == 0).count();
        let top_shifted = (0..n).filter(|_| shifted.sample(&mut rng_b) == 0).count();
        assert!(
            top_shifted * 4 < top_plain,
            "shifted head {top_shifted} should be far below plain {top_plain}"
        );
    }
}
