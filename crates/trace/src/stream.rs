//! Stream adapters: one uniform handle over every workload this crate can
//! synthesize.
//!
//! The record/replay pipeline (`mhp-pipeline`) and the figure harness both
//! need to turn "benchmark × profile kind × seed" into a concrete event
//! iterator without caring whether that is a [`ValueWorkload`] or an
//! [`EdgeWorkload`]. [`StreamSpec`] is that triple, and
//! [`StreamSpec::events`] materializes it as a single iterator type.

use std::fmt;
use std::str::FromStr;

use mhp_core::Tuple;

use crate::benchmarks::Benchmark;
use crate::edge::EdgeWorkload;
use crate::workload::ValueWorkload;

/// Which of the paper's two profile kinds a stream carries.
///
/// Value streams emit `<load PC, value>` tuples; edge streams emit
/// `<branch PC, target PC>` tuples. The profilers are agnostic — this only
/// selects the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StreamKind {
    /// Load-value profiling events.
    Value,
    /// Branch-edge profiling events.
    Edge,
}

impl StreamKind {
    /// Both kinds, value first.
    pub const ALL: [StreamKind; 2] = [StreamKind::Value, StreamKind::Edge];

    /// The kind's lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            StreamKind::Value => "value",
            StreamKind::Edge => "edge",
        }
    }
}

impl fmt::Display for StreamKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown stream kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownStreamKindError(pub String);

impl fmt::Display for UnknownStreamKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown stream kind {:?} (expected value or edge)",
            self.0
        )
    }
}

impl std::error::Error for UnknownStreamKindError {}

impl FromStr for StreamKind {
    type Err = UnknownStreamKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        StreamKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == s)
            .ok_or_else(|| UnknownStreamKindError(s.to_string()))
    }
}

/// A fully determined event stream: benchmark, profile kind, and seed.
///
/// The same spec always reproduces the same infinite stream, which is what
/// makes trace recording and replay verifiable end to end.
///
/// # Examples
///
/// ```
/// use mhp_trace::{Benchmark, StreamKind, StreamSpec};
/// let spec = StreamSpec::new(Benchmark::Gcc, StreamKind::Value, 42);
/// let a: Vec<_> = spec.events().take(1_000).collect();
/// let b: Vec<_> = spec.events().take(1_000).collect();
/// assert_eq!(a, b);
/// assert_eq!(spec.to_string(), "gcc:value:42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamSpec {
    /// The benchmark model generating events.
    pub benchmark: Benchmark,
    /// Value or edge profiling.
    pub kind: StreamKind,
    /// Generator seed.
    pub seed: u64,
}

impl StreamSpec {
    /// Creates a stream spec.
    pub fn new(benchmark: Benchmark, kind: StreamKind, seed: u64) -> Self {
        StreamSpec {
            benchmark,
            kind,
            seed,
        }
    }

    /// Materializes the (infinite) event stream this spec names.
    pub fn events(&self) -> EventStream {
        match self.kind {
            StreamKind::Value => EventStream::Value(self.benchmark.value_stream(self.seed)),
            StreamKind::Edge => EventStream::Edge(self.benchmark.edge_stream(self.seed)),
        }
    }
}

impl fmt::Display for StreamSpec {
    /// Round-trippable `benchmark:kind:seed` form (the CLI's trace naming).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.benchmark, self.kind, self.seed)
    }
}

/// Error returned when parsing a malformed [`StreamSpec`] string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStreamSpecError(pub String);

impl fmt::Display for ParseStreamSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid stream spec {:?} (expected benchmark:kind:seed, e.g. gcc:value:42)",
            self.0
        )
    }
}

impl std::error::Error for ParseStreamSpecError {}

impl FromStr for StreamSpec {
    type Err = ParseStreamSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseStreamSpecError(s.to_string());
        let mut parts = s.split(':');
        let benchmark = parts.next().and_then(|p| p.parse().ok()).ok_or_else(err)?;
        let kind = parts.next().and_then(|p| p.parse().ok()).ok_or_else(err)?;
        let seed = parts.next().and_then(|p| p.parse().ok()).ok_or_else(err)?;
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(StreamSpec::new(benchmark, kind, seed))
    }
}

/// A materialized workload stream — value or edge — behind one iterator
/// type, so pipeline stages need no generics over the workload family.
#[derive(Debug, Clone)]
pub enum EventStream {
    /// A value-profiling workload.
    Value(ValueWorkload),
    /// An edge-profiling workload.
    Edge(EdgeWorkload),
}

impl Iterator for EventStream {
    type Item = Tuple;

    #[inline]
    fn next(&mut self) -> Option<Tuple> {
        match self {
            EventStream::Value(w) => w.next(),
            EventStream::Edge(w) => w.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_display_and_parse() {
        for benchmark in Benchmark::ALL {
            for kind in StreamKind::ALL {
                let spec = StreamSpec::new(benchmark, kind, 1234);
                let parsed: StreamSpec = spec.to_string().parse().unwrap();
                assert_eq!(parsed, spec);
            }
        }
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "",
            "gcc",
            "gcc:value",
            "gcc:value:x",
            "nope:value:1",
            "gcc:maybe:1",
            "gcc:value:1:extra",
        ] {
            assert!(bad.parse::<StreamSpec>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn stream_kinds_parse_by_name() {
        assert_eq!("value".parse::<StreamKind>(), Ok(StreamKind::Value));
        assert_eq!("edge".parse::<StreamKind>(), Ok(StreamKind::Edge));
        assert!("branch".parse::<StreamKind>().is_err());
    }

    #[test]
    fn value_and_edge_streams_differ() {
        let value: Vec<_> = StreamSpec::new(Benchmark::Li, StreamKind::Value, 7)
            .events()
            .take(100)
            .collect();
        let edge: Vec<_> = StreamSpec::new(Benchmark::Li, StreamKind::Edge, 7)
            .events()
            .take(100)
            .collect();
        assert_ne!(value, edge);
    }

    #[test]
    fn event_stream_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<EventStream>();
    }
}
