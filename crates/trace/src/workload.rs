//! Synthetic value-profiling workloads.
//!
//! The profilers under test never see a program — only a stream of
//! `<pc, value>` tuples. What determines profiler error is the stream's
//! *statistics*: how many tuples sit above the candidate threshold, how much
//! near-threshold mass crowds the hash tables, how many effectively-unique
//! noise tuples dilute them (Figure 4), and how the candidate set drifts
//! between intervals (Figure 6).
//!
//! [`ValueWorkload`] synthesizes a stream with directly controllable
//! statistics via a **band model**:
//!
//! * a **hot band** of tuples with per-event frequency above the 1 %
//!   candidate threshold (log-spaced in `[freq_min, freq_max]`);
//! * a **mid band** between the 0.1 % and 1 % thresholds — candidates for
//!   the long interval configuration only;
//! * a **warm band** just *below* 0.1 % — never candidates, but hot enough
//!   to pressure the hash filters (the paper's main source of false
//!   positives);
//! * a **noise tail**: a Zipf-distributed population of cold PCs whose
//!   values either come from a small per-PC set or never repeat
//!   ("streaming"), the latter making the distinct-tuple count grow linearly
//!   with interval length exactly as Figure 4 observes.
//!
//! Band tuples are attached to *invariant* PCs (a dominant value plus a few
//! secondaries), mirroring how real value candidates arise. **Phases** remap
//! the unstable band members' PCs every `phase_len` events (Figure 6's
//! large-scale behaviour change); **bursts** rotate which hot-band members
//! are active on a much shorter period (the short-interval variation the
//! paper reports for m88ksim and vortex).

use mhp_core::Tuple;

use crate::sampler::{DiscreteSampler, ZipfSampler};
use crate::util::{hash2, SplitMix64};

/// A frequency band: `count` tuples whose long-run event frequencies are
/// log-spaced between `freq_min` and `freq_max` (fractions of the stream).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandSpec {
    /// Number of tuples in the band.
    pub count: usize,
    /// Lowest tuple frequency in the band (fraction of all events).
    pub freq_min: f64,
    /// Highest tuple frequency in the band (fraction of all events).
    pub freq_max: f64,
}

impl BandSpec {
    /// A band with no members.
    pub const EMPTY: BandSpec = BandSpec {
        count: 0,
        freq_min: 0.0,
        freq_max: 0.0,
    };

    /// The log-spaced frequency of member `i` (0-based, hottest first).
    ///
    /// # Panics
    ///
    /// Panics if `i >= count`.
    pub fn freq(&self, i: usize) -> f64 {
        assert!(i < self.count, "band member {i} out of range");
        if self.count == 1 {
            return (self.freq_min * self.freq_max).sqrt();
        }
        let t = i as f64 / (self.count - 1) as f64;
        self.freq_max * (self.freq_min / self.freq_max).powf(t)
    }

    /// Total event mass of the band.
    pub fn total_mass(&self) -> f64 {
        (0..self.count).map(|i| self.freq(i)).sum()
    }
}

/// Full specification of a synthetic value-profiling workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueWorkloadSpec {
    /// Human-readable name (benchmark name in the figure harness).
    pub name: &'static str,
    /// Tuples above the short-config threshold (1 %).
    pub hot: BandSpec,
    /// Tuples between the long-config (0.1 %) and short-config thresholds.
    pub mid: BandSpec,
    /// Near-miss tuples below every threshold (aliasing pressure).
    pub warm: BandSpec,
    /// Probability that a band PC produces its dominant value (the rest is
    /// split over three secondary values).
    pub dominant_prob: f64,
    /// Size of the cold-PC population behind the noise tail.
    pub noise_pcs: usize,
    /// Zipf skew of the noise-tail PC selection.
    pub noise_theta: f64,
    /// Rank shift applied to the noise Zipf (flattens the head so no single
    /// noise PC approaches a candidate threshold).
    pub noise_rank_offset: usize,
    /// Fraction of noise PCs whose values come from a small set; the rest
    /// are "streaming" PCs whose values never repeat.
    pub small_set_fraction: f64,
    /// Values per small-set noise PC.
    pub small_set_values: usize,
    /// Number of distinct program phases (1 = no phase behaviour).
    pub phases: usize,
    /// Events per phase.
    pub phase_len: u64,
    /// Probability that a band member keeps its identity across phases.
    pub stable_fraction: f64,
    /// Number of burst groups rotating the hot band (1 = no bursting).
    pub burst_groups: usize,
    /// Events per burst.
    pub burst_len: u64,
    /// Fraction of the hot band that participates in burst rotation; the
    /// rest stays active in every group. 1.0 = the whole hot band rotates.
    pub rotating_fraction: f64,
}

impl ValueWorkloadSpec {
    /// Total long-run event mass of all three bands (the rest is noise).
    pub fn band_mass(&self) -> f64 {
        self.hot.total_mass() + self.mid.total_mass() + self.warm.total_mass()
    }

    /// Total number of band members.
    pub fn band_members(&self) -> usize {
        self.hot.count + self.mid.count + self.warm.count
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the bands claim more than 90 % of the stream, leaving no
    /// room for noise, or if structural parameters are degenerate.
    pub fn validate(&self) {
        assert!(
            self.band_mass() < 0.9,
            "{}: band mass {:.2} leaves too little noise",
            self.name,
            self.band_mass()
        );
        assert!(self.noise_pcs > 0, "{}: need noise PCs", self.name);
        assert!(
            (0.0..=1.0).contains(&self.dominant_prob)
                && (0.0..=1.0).contains(&self.small_set_fraction)
                && (0.0..=1.0).contains(&self.stable_fraction),
            "{}: probabilities out of range",
            self.name
        );
        assert!(
            self.phases >= 1 && self.burst_groups >= 1,
            "{}: degenerate",
            self.name
        );
        assert!(
            self.phases == 1 || self.phase_len > 0,
            "{}: phased workload needs phase_len",
            self.name
        );
        assert!(
            self.burst_groups == 1 || self.burst_len > 0,
            "{}: bursting workload needs burst_len",
            self.name
        );
        assert!(
            (0.0..=1.0).contains(&self.rotating_fraction),
            "{}: rotating fraction out of range",
            self.name
        );
        assert!(
            self.small_set_values > 0,
            "{}: small sets need values",
            self.name
        );
    }
}

/// An infinite, deterministic iterator of `<pc, value>` profiling events.
///
/// # Examples
///
/// ```
/// use mhp_trace::workload::{BandSpec, ValueWorkload, ValueWorkloadSpec};
/// let spec = ValueWorkloadSpec {
///     name: "demo",
///     hot: BandSpec { count: 3, freq_min: 0.02, freq_max: 0.05 },
///     mid: BandSpec::EMPTY,
///     warm: BandSpec::EMPTY,
///     dominant_prob: 1.0,
///     noise_pcs: 100,
///     noise_theta: 0.8,
///     noise_rank_offset: 40,
///     small_set_fraction: 1.0,
///     small_set_values: 4,
///     phases: 1,
///     phase_len: 0,
///     stable_fraction: 1.0,
///     burst_groups: 1,
///     burst_len: 0,
///     rotating_fraction: 1.0,
/// };
/// let events: Vec<_> = ValueWorkload::new(spec, 1).take(1000).collect();
/// assert_eq!(events.len(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ValueWorkload {
    spec: ValueWorkloadSpec,
    seed: u64,
    rng: SplitMix64,
    /// One top-level sampler per burst group; entry `members` is the noise
    /// bucket.
    samplers: Vec<DiscreteSampler>,
    noise_zipf: ZipfSampler,
    member_freqs: Vec<f64>,
    event_idx: u64,
    fresh_counter: u64,
}

impl ValueWorkload {
    /// Creates the workload from its spec and a stream seed.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`ValueWorkloadSpec::validate`].
    pub fn new(spec: ValueWorkloadSpec, seed: u64) -> Self {
        spec.validate();
        let members = spec.band_members();
        let mut member_freqs = Vec::with_capacity(members);
        for i in 0..spec.hot.count {
            member_freqs.push(spec.hot.freq(i));
        }
        for i in 0..spec.mid.count {
            member_freqs.push(spec.mid.freq(i));
        }
        for i in 0..spec.warm.count {
            member_freqs.push(spec.warm.freq(i));
        }
        let noise_mass = 1.0 - member_freqs.iter().sum::<f64>();
        let samplers = (0..spec.burst_groups)
            .map(|group| {
                let mut weights: Vec<f64> = member_freqs
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| {
                        if !Self::member_active(&spec, i, group) {
                            0.0
                        } else if spec.burst_groups > 1 && Self::member_rotates(&spec, i) {
                            // A rotating member is only active 1/groups of
                            // the time; boost its in-burst rate so its
                            // long-run frequency matches the spec.
                            f * spec.burst_groups as f64
                        } else {
                            f
                        }
                    })
                    .collect();
                weights.push(noise_mass);
                DiscreteSampler::from_weights(&weights)
            })
            .collect();
        let noise_zipf =
            ZipfSampler::with_offset(spec.noise_pcs, spec.noise_theta, spec.noise_rank_offset);
        ValueWorkload {
            seed,
            rng: SplitMix64::new(hash2(seed, 0x5EED)),
            samplers,
            noise_zipf,
            member_freqs,
            event_idx: 0,
            fresh_counter: 0,
            spec,
        }
    }

    /// The workload's spec.
    pub fn spec(&self) -> &ValueWorkloadSpec {
        &self.spec
    }

    /// Whether hot-band member `i` participates in burst group `group`.
    /// Only the rotating prefix of the hot band rotates; everything else is
    /// always active.
    fn member_active(spec: &ValueWorkloadSpec, i: usize, group: usize) -> bool {
        if spec.burst_groups <= 1 || !Self::member_rotates(spec, i) {
            return true;
        }
        i % spec.burst_groups == group
    }

    /// Whether hot-band member `i` is part of the rotating prefix.
    fn member_rotates(spec: &ValueWorkloadSpec, i: usize) -> bool {
        i < (spec.hot.count as f64 * spec.rotating_fraction).round() as usize
    }

    /// Whether band member `i` keeps its PC identity across phases.
    fn member_stable(&self, i: usize) -> bool {
        let roll = hash2(self.seed ^ 0x57AB1E, i as u64);
        (roll as f64 / u64::MAX as f64) < self.spec.stable_fraction
    }

    fn current_phase(&self) -> u64 {
        if self.spec.phases <= 1 {
            0
        } else {
            (self.event_idx / self.spec.phase_len) % self.spec.phases as u64
        }
    }

    fn current_group(&self) -> usize {
        if self.spec.burst_groups <= 1 {
            0
        } else {
            ((self.event_idx / self.spec.burst_len) % self.spec.burst_groups as u64) as usize
        }
    }

    /// The PC of band member `i` in the current phase.
    fn member_pc(&self, i: usize) -> u64 {
        let phase_eff = if self.member_stable(i) {
            0
        } else {
            self.current_phase()
        };
        0x0040_0000 + (phase_eff * self.spec.band_members() as u64 + i as u64) * 8
    }

    /// Produces the value for band member `i` (dominant or a secondary).
    fn member_value(&mut self, pc: u64) -> u64 {
        let dominant = 0x100 + (hash2(self.seed ^ 0x7A1, pc) & 0xFFFF);
        if self.rng.next_f64() < self.spec.dominant_prob {
            dominant
        } else {
            let which = self.rng.next_below(3);
            0x1_0000 + dominant + which * 7
        }
    }

    /// Produces one noise event.
    fn noise_event(&mut self) -> Tuple {
        let rank = self.noise_zipf.sample(&mut self.rng) as u64;
        let pc = 0x0100_0000 + rank * 8;
        let class_roll = hash2(self.seed ^ 0xC1A55, pc) as f64 / u64::MAX as f64;
        let value = if class_roll < self.spec.small_set_fraction {
            // Small-set PC: one of `small_set_values` values.
            let v = self.rng.next_below(self.spec.small_set_values as u64);
            0x2_0000 + hash2(self.seed ^ 0x5E7, pc) % 1024 + v * 131
        } else {
            // Streaming PC: a value that never repeats.
            self.fresh_counter += 1;
            0x8000_0000 + self.fresh_counter
        };
        Tuple::new(pc, value)
    }
}

impl Iterator for ValueWorkload {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        let group = self.current_group();
        let idx = self.samplers[group].sample(&mut self.rng);
        let tuple = if idx < self.member_freqs.len() {
            let pc = self.member_pc(idx);
            let value = self.member_value(pc);
            Tuple::new(pc, value)
        } else {
            self.noise_event()
        };
        self.event_idx += 1;
        Some(tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn demo_spec() -> ValueWorkloadSpec {
        ValueWorkloadSpec {
            name: "demo",
            hot: BandSpec {
                count: 4,
                freq_min: 0.0125,
                freq_max: 0.028,
            },
            mid: BandSpec {
                count: 20,
                freq_min: 0.0013,
                freq_max: 0.006,
            },
            warm: BandSpec {
                count: 40,
                freq_min: 0.0001,
                freq_max: 0.0008,
            },
            dominant_prob: 0.9,
            noise_pcs: 5_000,
            noise_theta: 0.7,
            noise_rank_offset: 40,
            small_set_fraction: 0.6,
            small_set_values: 8,
            phases: 1,
            phase_len: 0,
            stable_fraction: 1.0,
            burst_groups: 1,
            burst_len: 0,
            rotating_fraction: 1.0,
        }
    }

    #[test]
    fn band_freq_is_log_spaced_and_monotone() {
        let band = BandSpec {
            count: 5,
            freq_min: 0.001,
            freq_max: 0.016,
        };
        assert!((band.freq(0) - 0.016).abs() < 1e-12);
        assert!((band.freq(4) - 0.001).abs() < 1e-12);
        for i in 1..5 {
            assert!(band.freq(i) < band.freq(i - 1));
        }
    }

    #[test]
    fn single_member_band_uses_geometric_mean() {
        let band = BandSpec {
            count: 1,
            freq_min: 0.01,
            freq_max: 0.04,
        };
        assert!((band.freq(0) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn empty_band_has_zero_mass() {
        assert_eq!(BandSpec::EMPTY.total_mass(), 0.0);
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let a: Vec<Tuple> = ValueWorkload::new(demo_spec(), 42).take(1000).collect();
        let b: Vec<Tuple> = ValueWorkload::new(demo_spec(), 42).take(1000).collect();
        let c: Vec<Tuple> = ValueWorkload::new(demo_spec(), 43).take(1000).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hot_band_frequencies_are_close_to_spec() {
        let spec = demo_spec();
        let n = 400_000usize;
        let mut counts: HashMap<Tuple, u64> = HashMap::new();
        for t in ValueWorkload::new(spec.clone(), 7).take(n) {
            *counts.entry(t).or_insert(0) += 1;
        }
        // The hottest tuple: member 0's dominant value. Expected frequency
        // freq(0) * dominant_prob = 0.028 * 0.9 = 2.52%.
        let max = counts.values().max().copied().unwrap();
        let observed = max as f64 / n as f64;
        assert!(
            (observed - 0.0252).abs() < 0.006,
            "hottest tuple frequency {observed} should be near 2.5%"
        );
    }

    #[test]
    fn candidate_counts_match_bands() {
        let spec = demo_spec();
        let n = 1_000_000usize;
        let mut counts: HashMap<Tuple, u64> = HashMap::new();
        for t in ValueWorkload::new(spec.clone(), 11).take(n) {
            *counts.entry(t).or_insert(0) += 1;
        }
        let at_1pct = counts.values().filter(|&&c| c >= n as u64 / 100).count();
        let at_01pct = counts.values().filter(|&&c| c >= n as u64 / 1000).count();
        // ~4 hot members above 1% (freq*0.9 >= 1.1%); allow sampling slack.
        assert!(
            (2..=7).contains(&at_1pct),
            "1% candidates {at_1pct}, expected about {}",
            spec.hot.count
        );
        // Hot + mid above 0.1%: 24 expected.
        assert!(
            (15..=35).contains(&at_01pct),
            "0.1% candidates {at_01pct}, expected about {}",
            spec.hot.count + spec.mid.count
        );
    }

    #[test]
    fn streaming_noise_grows_distinct_tuples_linearly() {
        let mut spec = demo_spec();
        spec.small_set_fraction = 0.0; // all noise streams
        let distinct_at = |n: usize| {
            ValueWorkload::new(spec.clone(), 3)
                .take(n)
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        let d10k = distinct_at(10_000);
        let d100k = distinct_at(100_000);
        let ratio = d100k as f64 / d10k as f64;
        assert!(
            ratio > 5.0,
            "distinct tuples should grow ~linearly: {d10k} -> {d100k}"
        );
    }

    #[test]
    fn small_set_noise_bounds_distinct_tuples() {
        let mut spec = demo_spec();
        spec.small_set_fraction = 1.0;
        spec.noise_pcs = 100;
        spec.small_set_values = 4;
        let distinct = ValueWorkload::new(spec, 5)
            .take(200_000)
            .collect::<std::collections::HashSet<_>>()
            .len();
        // Bounded by band tuples (4 per member) + 100 PCs * 4 values.
        assert!(
            distinct <= 64 * 4 + 400 + 10,
            "distinct {distinct} unbounded"
        );
    }

    #[test]
    fn phases_remap_unstable_members() {
        let mut spec = demo_spec();
        spec.phases = 2;
        spec.phase_len = 50_000;
        spec.stable_fraction = 0.0; // everything remaps
        let mut wl = ValueWorkload::new(spec, 9);
        let first: std::collections::HashSet<u64> =
            (&mut wl).take(50_000).map(|t| t.pc().as_u64()).collect();
        let second: std::collections::HashSet<u64> =
            (&mut wl).take(50_000).map(|t| t.pc().as_u64()).collect();
        // Band PCs (0x40_0000 range) must differ between phases.
        let band_first: Vec<u64> = first.iter().copied().filter(|&p| p < 0x0100_0000).collect();
        let band_second: std::collections::HashSet<u64> =
            second.into_iter().filter(|&p| p < 0x0100_0000).collect();
        assert!(!band_first.is_empty());
        assert!(
            band_first.iter().all(|p| !band_second.contains(p)),
            "unstable band PCs must change across phases"
        );
    }

    #[test]
    fn stable_members_survive_phase_changes() {
        let mut spec = demo_spec();
        spec.phases = 2;
        spec.phase_len = 50_000;
        spec.stable_fraction = 1.0; // nothing remaps
        let members = spec.band_members() as u64;
        let mut wl = ValueWorkload::new(spec, 9);
        // With full stability every band PC must stay inside the phase-0 PC
        // range in both phases (rare warm members may not appear in every
        // window, so set equality would be too strict).
        let phase0_end = 0x0040_0000 + members * 8;
        for window in 0..2 {
            let band_pcs: Vec<u64> = (&mut wl)
                .take(50_000)
                .map(|t| t.pc().as_u64())
                .filter(|&p| p < 0x0100_0000)
                .collect();
            assert!(!band_pcs.is_empty());
            for p in band_pcs {
                assert!(
                    p < phase0_end,
                    "window {window}: pc {p:#x} escaped the stable phase-0 range"
                );
            }
        }
    }

    #[test]
    fn bursts_rotate_hot_band_members() {
        let mut spec = demo_spec();
        spec.burst_groups = 2;
        spec.burst_len = 10_000;
        let wl = ValueWorkload::new(spec.clone(), 13);
        let mut wl = wl;
        // Group 0 active for first 10K events, group 1 for the next.
        let hot_pcs = |events: &mut dyn Iterator<Item = Tuple>| -> std::collections::HashSet<u64> {
            events
                .map(|t| t.pc().as_u64())
                .filter(|&p| p < 0x0040_0000 + 8 * spec.hot.count as u64)
                .collect()
        };
        let g0 = hot_pcs(&mut (&mut wl).take(10_000));
        let g1 = hot_pcs(&mut (&mut wl).take(10_000));
        assert!(!g0.is_empty() && !g1.is_empty());
        assert!(
            g0.intersection(&g1).count() == 0,
            "burst groups must be disjoint"
        );
    }

    #[test]
    #[should_panic(expected = "band mass")]
    fn overweight_bands_are_rejected() {
        let mut spec = demo_spec();
        spec.hot = BandSpec {
            count: 50,
            freq_min: 0.02,
            freq_max: 0.02,
        };
        ValueWorkload::new(spec, 1);
    }
}
