//! A toy instrumented CPU — the ATOM-replacement substrate.
//!
//! The paper gathers its event streams by instrumenting real binaries with
//! ATOM on Alpha hardware. That toolchain is not available here, so this
//! module provides the closest synthetic equivalent that exercises the same
//! code path: a small register machine whose interpreter calls
//! [`ProfilingHook`] callbacks on every executed load (`<pc, value>`) and
//! every control transfer (`<branch pc, target pc>`), exactly the two tuple
//! kinds the paper profiles.
//!
//! [`programs`] contains small kernels (array reduction, byte histogram,
//! linked-list walk, a bytecode interpreter loop) whose load-value and edge
//! behaviour mirrors the patterns that make value/edge profiling worthwhile:
//! loops loading invariant values, data-dependent branches, and dispatch
//! over a jump table.
//!
//! # Examples
//!
//! ```
//! use mhp_trace::sim::{programs, Machine, TupleCollector};
//! let program = programs::array_sum(64);
//! let mut machine = Machine::new(program);
//! let mut hook = TupleCollector::new();
//! machine.run(100_000, &mut hook).expect("program halts");
//! assert!(!hook.loads().is_empty());
//! assert!(!hook.edges().is_empty());
//! ```

pub mod asm;
mod isa;
mod machine;
pub mod programs;

pub use asm::{assemble, AsmError};
pub use isa::{Instr, Program, ProgramError, Reg, NUM_REGS};
pub use machine::{Machine, ProfilingHook, RunError, TupleCollector};
