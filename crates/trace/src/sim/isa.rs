//! The toy machine's instruction set and validated programs.

use std::error::Error;
use std::fmt;

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 16;

/// A register index (`0..NUM_REGS`).
pub type Reg = u8;

/// One machine instruction.
///
/// Addresses are word-granular (memory is an array of `u64` words). Control
/// transfers name absolute instruction indices within the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `dst = imm`
    LoadImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// `dst = mem[src]` — emits a load event `<pc, value>`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Register holding the word address.
        addr: Reg,
    },
    /// `mem[addr] = src`
    Store {
        /// Register holding the value to store.
        src: Reg,
        /// Register holding the word address.
        addr: Reg,
    },
    /// `dst = a + b` (wrapping)
    Add {
        /// Destination register.
        dst: Reg,
        /// First operand register.
        a: Reg,
        /// Second operand register.
        b: Reg,
    },
    /// `dst = a - b` (wrapping)
    Sub {
        /// Destination register.
        dst: Reg,
        /// First operand register.
        a: Reg,
        /// Second operand register.
        b: Reg,
    },
    /// `dst = a + imm` (wrapping, signed immediate)
    AddImm {
        /// Destination register.
        dst: Reg,
        /// Operand register.
        a: Reg,
        /// Signed immediate.
        imm: i64,
    },
    /// `dst = a % b` (`b == 0` is a run-time error)
    Rem {
        /// Destination register.
        dst: Reg,
        /// Dividend register.
        a: Reg,
        /// Divisor register.
        b: Reg,
    },
    /// Unconditional jump — emits an edge event.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Register-indirect jump — emits an edge event. The register holds an
    /// instruction index.
    JumpReg {
        /// Register holding the target instruction index.
        target: Reg,
    },
    /// Branch to `target` if `cond == 0`; emits an edge event for the path
    /// actually taken (taken target or fall-through).
    BranchIfZero {
        /// Condition register.
        cond: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// Branch to `target` if `a < b` (unsigned); emits an edge event.
    BranchIfLt {
        /// Left comparand.
        a: Reg,
        /// Right comparand.
        b: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// Stop execution.
    Halt,
}

/// A validation error for a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProgramError {
    /// The program contains no instructions.
    Empty,
    /// An instruction names a register `>= NUM_REGS`.
    BadRegister {
        /// Offending instruction index.
        at: usize,
        /// The register named.
        reg: Reg,
    },
    /// A branch or jump targets an instruction index outside the program.
    BadTarget {
        /// Offending instruction index.
        at: usize,
        /// The out-of-range target.
        target: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ProgramError::Empty => write!(f, "program has no instructions"),
            ProgramError::BadRegister { at, reg } => {
                write!(f, "instruction {at} names register {reg} (>= {NUM_REGS})")
            }
            ProgramError::BadTarget { at, target } => {
                write!(f, "instruction {at} targets out-of-range index {target}")
            }
        }
    }
}

impl Error for ProgramError {}

/// A validated instruction sequence plus its data-memory size.
///
/// # Examples
///
/// ```
/// use mhp_trace::sim::{Instr, Program};
/// let program = Program::new(
///     vec![Instr::LoadImm { dst: 0, imm: 7 }, Instr::Halt],
///     16,
/// )?;
/// assert_eq!(program.len(), 2);
/// # Ok::<(), mhp_trace::sim::ProgramError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
    memory_words: usize,
}

impl Program {
    /// Validates and wraps an instruction sequence with `memory_words` words
    /// of zero-initialized data memory.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if the program is empty, names an invalid
    /// register, or branches out of range.
    pub fn new(instrs: Vec<Instr>, memory_words: usize) -> Result<Self, ProgramError> {
        if instrs.is_empty() {
            return Err(ProgramError::Empty);
        }
        let len = instrs.len();
        let check_reg = |at: usize, reg: Reg| -> Result<(), ProgramError> {
            if (reg as usize) < NUM_REGS {
                Ok(())
            } else {
                Err(ProgramError::BadRegister { at, reg })
            }
        };
        let check_target = |at: usize, target: usize| -> Result<(), ProgramError> {
            if target < len {
                Ok(())
            } else {
                Err(ProgramError::BadTarget { at, target })
            }
        };
        for (at, instr) in instrs.iter().enumerate() {
            match *instr {
                Instr::LoadImm { dst, .. } => check_reg(at, dst)?,
                Instr::Load { dst, addr } => {
                    check_reg(at, dst)?;
                    check_reg(at, addr)?;
                }
                Instr::Store { src, addr } => {
                    check_reg(at, src)?;
                    check_reg(at, addr)?;
                }
                Instr::Add { dst, a, b } | Instr::Sub { dst, a, b } | Instr::Rem { dst, a, b } => {
                    check_reg(at, dst)?;
                    check_reg(at, a)?;
                    check_reg(at, b)?;
                }
                Instr::AddImm { dst, a, .. } => {
                    check_reg(at, dst)?;
                    check_reg(at, a)?;
                }
                Instr::Jump { target } => check_target(at, target)?,
                Instr::JumpReg { target } => check_reg(at, target)?,
                Instr::BranchIfZero { cond, target } => {
                    check_reg(at, cond)?;
                    check_target(at, target)?;
                }
                Instr::BranchIfLt { a, b, target } => {
                    check_reg(at, a)?;
                    check_reg(at, b)?;
                    check_target(at, target)?;
                }
                Instr::Halt => {}
            }
        }
        Ok(Program {
            instrs,
            memory_words,
        })
    }

    /// The instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the program has no instructions (never true for a
    /// validated program).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Words of data memory the program needs.
    pub fn memory_words(&self) -> usize {
        self.memory_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_program_rejected() {
        assert_eq!(Program::new(vec![], 0).unwrap_err(), ProgramError::Empty);
    }

    #[test]
    fn bad_register_rejected() {
        let err = Program::new(vec![Instr::LoadImm { dst: 16, imm: 0 }], 0).unwrap_err();
        assert_eq!(err, ProgramError::BadRegister { at: 0, reg: 16 });
    }

    #[test]
    fn bad_branch_target_rejected() {
        let err = Program::new(
            vec![Instr::BranchIfZero { cond: 0, target: 5 }, Instr::Halt],
            0,
        )
        .unwrap_err();
        assert_eq!(err, ProgramError::BadTarget { at: 0, target: 5 });
    }

    #[test]
    fn bad_jump_target_rejected() {
        let err = Program::new(vec![Instr::Jump { target: 1 }], 0).unwrap_err();
        assert_eq!(err, ProgramError::BadTarget { at: 0, target: 1 });
    }

    #[test]
    fn valid_program_accepted() {
        let p = Program::new(
            vec![
                Instr::LoadImm { dst: 0, imm: 1 },
                Instr::BranchIfZero { cond: 0, target: 0 },
                Instr::Halt,
            ],
            8,
        )
        .unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.memory_words(), 8);
    }

    #[test]
    fn errors_display_nonempty() {
        for err in [
            ProgramError::Empty,
            ProgramError::BadRegister { at: 1, reg: 99 },
            ProgramError::BadTarget { at: 2, target: 7 },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
