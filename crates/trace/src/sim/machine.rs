//! The interpreter with ATOM-style instrumentation hooks.

use std::error::Error;
use std::fmt;

use mhp_core::Tuple;

use super::isa::{Instr, Program};

/// Base "address" of the code segment: instruction index `i` is reported to
/// hooks as PC `CODE_BASE + 4*i`, mimicking a real text segment.
pub const CODE_BASE: u64 = 0x0040_0000;

/// Instrumentation callbacks, invoked synchronously as the machine executes
/// (the moral equivalent of ATOM's analysis routines).
pub trait ProfilingHook {
    /// Called for every executed load with the loading instruction's PC and
    /// the loaded value.
    fn on_load(&mut self, pc: u64, value: u64);

    /// Called for every executed control transfer (conditional branch taken
    /// *or* fall-through, jump, indirect jump) with the branch PC and the
    /// target PC.
    fn on_edge(&mut self, pc: u64, target: u64);
}

/// A hook that records every event as a tuple.
#[derive(Debug, Clone, Default)]
pub struct TupleCollector {
    loads: Vec<Tuple>,
    edges: Vec<Tuple>,
}

impl TupleCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        TupleCollector::default()
    }

    /// The collected `<pc, value>` load tuples, in execution order.
    pub fn loads(&self) -> &[Tuple] {
        &self.loads
    }

    /// The collected `<branch pc, target pc>` edge tuples, in execution
    /// order.
    pub fn edges(&self) -> &[Tuple] {
        &self.edges
    }

    /// Consumes the collector, returning `(loads, edges)`.
    pub fn into_parts(self) -> (Vec<Tuple>, Vec<Tuple>) {
        (self.loads, self.edges)
    }
}

impl ProfilingHook for TupleCollector {
    fn on_load(&mut self, pc: u64, value: u64) {
        self.loads.push(Tuple::new(pc, value));
    }

    fn on_edge(&mut self, pc: u64, target: u64) {
        self.edges.push(Tuple::new(pc, target));
    }
}

/// A run-time error raised by the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunError {
    /// A memory access was outside the program's data memory.
    MemoryOutOfBounds {
        /// The faulting PC (instruction index).
        at: usize,
        /// The word address accessed.
        addr: u64,
    },
    /// A `Rem` instruction divided by zero.
    DivisionByZero {
        /// The faulting PC (instruction index).
        at: usize,
    },
    /// A `JumpReg` targeted an instruction index outside the program.
    BadIndirectTarget {
        /// The faulting PC (instruction index).
        at: usize,
        /// The out-of-range target.
        target: u64,
    },
    /// The step budget ran out before `Halt`.
    OutOfFuel,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RunError::MemoryOutOfBounds { at, addr } => {
                write!(f, "instruction {at} accessed out-of-bounds word {addr}")
            }
            RunError::DivisionByZero { at } => write!(f, "instruction {at} divided by zero"),
            RunError::BadIndirectTarget { at, target } => {
                write!(f, "instruction {at} jumped to out-of-range index {target}")
            }
            RunError::OutOfFuel => write!(f, "step budget exhausted before halt"),
        }
    }
}

impl Error for RunError {}

/// The toy machine: registers, data memory and a program counter.
///
/// # Examples
///
/// ```
/// use mhp_trace::sim::{Instr, Machine, Program, TupleCollector};
/// let program = Program::new(
///     vec![
///         Instr::LoadImm { dst: 0, imm: 3 },  // addr = 3
///         Instr::Store { src: 0, addr: 0 },   // mem[3] = 3
///         Instr::Load { dst: 1, addr: 0 },    // r1 = mem[3]  (load event)
///         Instr::Halt,
///     ],
///     8,
/// )?;
/// let mut machine = Machine::new(program);
/// let mut hook = TupleCollector::new();
/// let steps = machine.run(100, &mut hook)?;
/// assert_eq!(steps, 4);
/// assert_eq!(hook.loads().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    program: Program,
    regs: [u64; super::isa::NUM_REGS],
    memory: Vec<u64>,
    pc: usize,
    halted: bool,
}

impl Machine {
    /// Creates a machine with zeroed registers and memory.
    pub fn new(program: Program) -> Self {
        let memory = vec![0; program.memory_words()];
        Machine {
            program,
            regs: [0; super::isa::NUM_REGS],
            memory,
            pc: 0,
            halted: false,
        }
    }

    /// Read access to the registers (for tests and result extraction).
    pub fn regs(&self) -> &[u64] {
        &self.regs
    }

    /// Read access to data memory.
    pub fn memory(&self) -> &[u64] {
        &self.memory
    }

    /// Mutable access to data memory, for pre-loading inputs.
    pub fn memory_mut(&mut self) -> &mut [u64] {
        &mut self.memory
    }

    /// Whether the machine has executed `Halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The PC that instrumentation hooks see for instruction index `i`.
    #[inline]
    pub fn hook_pc(i: usize) -> u64 {
        CODE_BASE + (i as u64) * 4
    }

    /// Runs until `Halt` or until `max_steps` instructions have executed,
    /// invoking `hook` on every load and control transfer. Returns the
    /// number of instructions executed.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] on an out-of-bounds access, division by zero,
    /// a wild indirect jump, or fuel exhaustion.
    pub fn run<H: ProfilingHook>(&mut self, max_steps: u64, hook: &mut H) -> Result<u64, RunError> {
        let mut steps = 0u64;
        while !self.halted {
            if steps == max_steps {
                return Err(RunError::OutOfFuel);
            }
            self.step(hook)?;
            steps += 1;
        }
        Ok(steps)
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Self::run), minus fuel.
    pub fn step<H: ProfilingHook>(&mut self, hook: &mut H) -> Result<(), RunError> {
        debug_assert!(!self.halted, "stepping a halted machine");
        let at = self.pc;
        let instr = self.program.instrs()[at];
        let mut next = at + 1;
        match instr {
            Instr::LoadImm { dst, imm } => self.regs[dst as usize] = imm,
            Instr::Load { dst, addr } => {
                let a = self.regs[addr as usize];
                let value = *self
                    .memory
                    .get(a as usize)
                    .ok_or(RunError::MemoryOutOfBounds { at, addr: a })?;
                self.regs[dst as usize] = value;
                hook.on_load(Self::hook_pc(at), value);
            }
            Instr::Store { src, addr } => {
                let a = self.regs[addr as usize];
                let slot = self
                    .memory
                    .get_mut(a as usize)
                    .ok_or(RunError::MemoryOutOfBounds { at, addr: a })?;
                *slot = self.regs[src as usize];
            }
            Instr::Add { dst, a, b } => {
                self.regs[dst as usize] = self.regs[a as usize].wrapping_add(self.regs[b as usize]);
            }
            Instr::Sub { dst, a, b } => {
                self.regs[dst as usize] = self.regs[a as usize].wrapping_sub(self.regs[b as usize]);
            }
            Instr::AddImm { dst, a, imm } => {
                self.regs[dst as usize] = self.regs[a as usize].wrapping_add(imm as u64);
            }
            Instr::Rem { dst, a, b } => {
                let divisor = self.regs[b as usize];
                if divisor == 0 {
                    return Err(RunError::DivisionByZero { at });
                }
                self.regs[dst as usize] = self.regs[a as usize] % divisor;
            }
            Instr::Jump { target } => {
                hook.on_edge(Self::hook_pc(at), Self::hook_pc(target));
                next = target;
            }
            Instr::JumpReg { target } => {
                let t = self.regs[target as usize];
                if t as usize >= self.program.len() {
                    return Err(RunError::BadIndirectTarget { at, target: t });
                }
                hook.on_edge(Self::hook_pc(at), Self::hook_pc(t as usize));
                next = t as usize;
            }
            Instr::BranchIfZero { cond, target } => {
                if self.regs[cond as usize] == 0 {
                    next = target;
                }
                hook.on_edge(Self::hook_pc(at), Self::hook_pc(next));
            }
            Instr::BranchIfLt { a, b, target } => {
                if self.regs[a as usize] < self.regs[b as usize] {
                    next = target;
                }
                hook.on_edge(Self::hook_pc(at), Self::hook_pc(next));
            }
            Instr::Halt => {
                self.halted = true;
                return Ok(());
            }
        }
        self.pc = next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::isa::{Instr, Program};
    use super::*;

    fn run_program(instrs: Vec<Instr>, mem: usize) -> (Machine, TupleCollector) {
        let program = Program::new(instrs, mem).unwrap();
        let mut machine = Machine::new(program);
        let mut hook = TupleCollector::new();
        machine.run(1_000_000, &mut hook).unwrap();
        (machine, hook)
    }

    #[test]
    fn arithmetic_works() {
        let (m, _) = run_program(
            vec![
                Instr::LoadImm { dst: 0, imm: 10 },
                Instr::LoadImm { dst: 1, imm: 3 },
                Instr::Add { dst: 2, a: 0, b: 1 },
                Instr::Sub { dst: 3, a: 0, b: 1 },
                Instr::Rem { dst: 4, a: 0, b: 1 },
                Instr::AddImm {
                    dst: 5,
                    a: 0,
                    imm: -4,
                },
                Instr::Halt,
            ],
            0,
        );
        assert_eq!(m.regs()[2], 13);
        assert_eq!(m.regs()[3], 7);
        assert_eq!(m.regs()[4], 1);
        assert_eq!(m.regs()[5], 6);
    }

    #[test]
    fn loads_emit_events_with_code_pcs() {
        let (_, hook) = run_program(
            vec![
                Instr::LoadImm { dst: 0, imm: 2 },
                Instr::LoadImm { dst: 1, imm: 42 },
                Instr::Store { src: 1, addr: 0 },
                Instr::Load { dst: 2, addr: 0 },
                Instr::Halt,
            ],
            4,
        );
        assert_eq!(hook.loads().len(), 1);
        let load = hook.loads()[0];
        assert_eq!(load.pc().as_u64(), CODE_BASE + 3 * 4);
        assert_eq!(load.value().as_u64(), 42);
    }

    #[test]
    fn branches_emit_edges_for_both_paths() {
        // Loop 3 times: branch taken twice (back edge), falls through once.
        let (_, hook) = run_program(
            vec![
                Instr::LoadImm { dst: 0, imm: 3 },
                Instr::AddImm {
                    dst: 0,
                    a: 0,
                    imm: -1,
                }, // 1: decrement
                Instr::LoadImm { dst: 1, imm: 0 },
                Instr::BranchIfLt {
                    a: 1,
                    b: 0,
                    target: 1,
                }, // 3: loop while 0 < r0
                Instr::Halt,
            ],
            0,
        );
        let branch_pc = Machine::hook_pc(3);
        let edges: Vec<_> = hook
            .edges()
            .iter()
            .filter(|t| t.pc().as_u64() == branch_pc)
            .collect();
        assert_eq!(edges.len(), 3);
        let taken = edges
            .iter()
            .filter(|t| t.value().as_u64() == Machine::hook_pc(1))
            .count();
        let fall = edges
            .iter()
            .filter(|t| t.value().as_u64() == Machine::hook_pc(4))
            .count();
        assert_eq!(taken, 2);
        assert_eq!(fall, 1);
    }

    #[test]
    fn jump_reg_dispatch_emits_varied_targets() {
        // r0 selects a target: run twice with different dispatch values.
        let program = vec![
            Instr::JumpReg { target: 0 }, // 0
            Instr::Halt,                  // 1
            Instr::Jump { target: 1 },    // 2
        ];
        for (sel, expected_target) in [(1u64, 1usize), (2, 2)] {
            let p = Program::new(program.clone(), 0).unwrap();
            let mut m = Machine::new(p);
            let mut hook = TupleCollector::new();
            m.regs[0] = sel;
            m.run(10, &mut hook).unwrap();
            assert_eq!(
                hook.edges()[0].value().as_u64(),
                Machine::hook_pc(expected_target)
            );
        }
    }

    #[test]
    fn out_of_bounds_load_errors() {
        let program = Program::new(
            vec![
                Instr::LoadImm { dst: 0, imm: 99 },
                Instr::Load { dst: 1, addr: 0 },
                Instr::Halt,
            ],
            4,
        )
        .unwrap();
        let mut m = Machine::new(program);
        let err = m.run(10, &mut TupleCollector::new()).unwrap_err();
        assert_eq!(err, RunError::MemoryOutOfBounds { at: 1, addr: 99 });
    }

    #[test]
    fn division_by_zero_errors() {
        let program =
            Program::new(vec![Instr::Rem { dst: 0, a: 1, b: 2 }, Instr::Halt], 0).unwrap();
        let mut m = Machine::new(program);
        let err = m.run(10, &mut TupleCollector::new()).unwrap_err();
        assert_eq!(err, RunError::DivisionByZero { at: 0 });
    }

    #[test]
    fn wild_indirect_jump_errors() {
        let program = Program::new(vec![Instr::JumpReg { target: 0 }, Instr::Halt], 0).unwrap();
        let mut m = Machine::new(program);
        m.regs[0] = 999;
        let err = m.run(10, &mut TupleCollector::new()).unwrap_err();
        assert_eq!(err, RunError::BadIndirectTarget { at: 0, target: 999 });
    }

    #[test]
    fn fuel_exhaustion_errors() {
        let program = Program::new(vec![Instr::Jump { target: 0 }], 0).unwrap();
        let mut m = Machine::new(program);
        let err = m.run(100, &mut TupleCollector::new()).unwrap_err();
        assert_eq!(err, RunError::OutOfFuel);
    }

    #[test]
    fn infinite_loop_counts_steps_exactly() {
        let program =
            Program::new(vec![Instr::LoadImm { dst: 0, imm: 1 }, Instr::Halt], 0).unwrap();
        let mut m = Machine::new(program);
        let steps = m.run(10, &mut TupleCollector::new()).unwrap();
        assert_eq!(steps, 2);
        assert!(m.is_halted());
    }
}
