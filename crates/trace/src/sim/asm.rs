//! A small text assembler for the toy ISA.
//!
//! Instrumented workloads are easier to author, review and test as text
//! than as `Instr` vectors. The syntax is one instruction per line,
//! `;`-comments, `label:` definitions, and a `.memory N` directive for the
//! data-memory size:
//!
//! ```text
//! ; sum an array of n words
//! .memory 128
//!     li   r0, 0        ; i
//!     li   r1, 128      ; n
//!     li   r2, 0        ; sum
//! loop:
//!     load r3, r0
//!     add  r2, r2, r3
//!     addi r0, r0, 1
//!     blt  r0, r1, loop
//!     halt
//! ```
//!
//! | mnemonic | operands | meaning |
//! |---|---|---|
//! | `li`    | `rD, imm`      | load immediate |
//! | `load`  | `rD, rA`       | `rD = mem[rA]` (emits a load event) |
//! | `store` | `rS, rA`       | `mem[rA] = rS` |
//! | `add` / `sub` / `rem` | `rD, rA, rB` | arithmetic |
//! | `addi`  | `rD, rA, imm`  | add signed immediate |
//! | `jmp`   | `label`        | unconditional jump |
//! | `jr`    | `rA`           | register-indirect jump |
//! | `beqz`  | `rA, label`    | branch if zero |
//! | `blt`   | `rA, rB, label`| branch if `rA < rB` |
//! | `halt`  |                | stop |

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use super::isa::{Instr, Program, ProgramError, Reg};
use super::programs::ProgramBuilder;

/// An assembly error, with the 1-based source line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// The kinds of assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmErrorKind {
    /// Unknown mnemonic.
    UnknownMnemonic(String),
    /// Wrong operand count or malformed operand list.
    BadOperands(String),
    /// A register operand did not parse (`r0`..`r15`).
    BadRegister(String),
    /// An immediate did not parse.
    BadImmediate(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A malformed directive.
    BadDirective(String),
    /// The assembled program failed ISA validation.
    Invalid(ProgramError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic {m:?}"),
            AsmErrorKind::BadOperands(s) => write!(f, "bad operands: {s}"),
            AsmErrorKind::BadRegister(s) => write!(f, "bad register {s:?} (expected r0..r15)"),
            AsmErrorKind::BadImmediate(s) => write!(f, "bad immediate {s:?}"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "label {l:?} defined twice"),
            AsmErrorKind::UndefinedLabel(l) => write!(f, "label {l:?} is never defined"),
            AsmErrorKind::BadDirective(d) => write!(f, "bad directive {d:?}"),
            AsmErrorKind::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl Error for AsmError {}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let err = || AsmError {
        line,
        kind: AsmErrorKind::BadRegister(tok.to_string()),
    };
    let rest = tok.strip_prefix('r').ok_or_else(err)?;
    let n: u8 = rest.parse().map_err(|_| err())?;
    if (n as usize) < super::isa::NUM_REGS {
        Ok(n)
    } else {
        Err(err())
    }
}

fn parse_imm_u64(tok: &str, line: usize) -> Result<u64, AsmError> {
    let err = || AsmError {
        line,
        kind: AsmErrorKind::BadImmediate(tok.to_string()),
    };
    if let Some(hex) = tok.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|_| err())
    } else {
        tok.parse().map_err(|_| err())
    }
}

fn parse_imm_i64(tok: &str, line: usize) -> Result<i64, AsmError> {
    let err = || AsmError {
        line,
        kind: AsmErrorKind::BadImmediate(tok.to_string()),
    };
    tok.parse().map_err(|_| err())
}

/// Assembles `source` into a validated [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown labels, or ISA-validation failures.
///
/// # Examples
///
/// ```
/// use mhp_trace::sim::asm::assemble;
/// let program = assemble(
///     "
///     .memory 4
///         li r0, 2
///         li r1, 42
///         store r1, r0
///         load r2, r0
///         halt
///     ",
/// )?;
/// assert_eq!(program.len(), 5);
/// # Ok::<(), mhp_trace::sim::asm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut builder = ProgramBuilder::new();
    let mut labels: HashMap<String, super::programs::Label> = HashMap::new();
    let mut defined: HashMap<String, usize> = HashMap::new(); // label -> def line
    let mut referenced: Vec<(String, usize)> = Vec::new();
    let mut memory_words = 0usize;

    let get_label = |builder: &mut ProgramBuilder,
                     labels: &mut HashMap<String, super::programs::Label>,
                     name: &str| {
        *labels
            .entry(name.to_string())
            .or_insert_with(|| builder.new_label())
    };

    for (line_idx, raw) in source.lines().enumerate() {
        let line_no = line_idx + 1;
        // Strip comments and whitespace.
        let code = raw.split(';').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        // Directives.
        if let Some(rest) = code.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("memory") => {
                    let tok = parts.next().ok_or_else(|| AsmError {
                        line: line_no,
                        kind: AsmErrorKind::BadDirective(code.to_string()),
                    })?;
                    memory_words = parse_imm_u64(tok, line_no)? as usize;
                }
                _ => {
                    return Err(AsmError {
                        line: line_no,
                        kind: AsmErrorKind::BadDirective(code.to_string()),
                    })
                }
            }
            continue;
        }
        // Label definitions (possibly followed by an instruction).
        let mut rest = code;
        while let Some(colon) = rest.find(':') {
            let (name, tail) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                break; // not a label; let the mnemonic parser complain
            }
            if defined.insert(name.to_string(), line_no).is_some() {
                return Err(AsmError {
                    line: line_no,
                    kind: AsmErrorKind::DuplicateLabel(name.to_string()),
                });
            }
            let label = get_label(&mut builder, &mut labels, name);
            builder.bind(label);
            rest = tail[1..].trim();
            if rest.is_empty() {
                break;
            }
        }
        if rest.is_empty() {
            continue;
        }
        // Instruction.
        let (mnemonic, operand_str) = match rest.split_once(char::is_whitespace) {
            Some((m, o)) => (m, o.trim()),
            None => (rest, ""),
        };
        let ops: Vec<&str> = if operand_str.is_empty() {
            Vec::new()
        } else {
            operand_str.split(',').map(str::trim).collect()
        };
        let bad_ops = |line: usize| AsmError {
            line,
            kind: AsmErrorKind::BadOperands(operand_str.to_string()),
        };
        match mnemonic {
            "li" => {
                let [d, imm] = ops[..] else {
                    return Err(bad_ops(line_no));
                };
                builder.push(Instr::LoadImm {
                    dst: parse_reg(d, line_no)?,
                    imm: parse_imm_u64(imm, line_no)?,
                });
            }
            "load" => {
                let [d, a] = ops[..] else {
                    return Err(bad_ops(line_no));
                };
                builder.push(Instr::Load {
                    dst: parse_reg(d, line_no)?,
                    addr: parse_reg(a, line_no)?,
                });
            }
            "store" => {
                let [s, a] = ops[..] else {
                    return Err(bad_ops(line_no));
                };
                builder.push(Instr::Store {
                    src: parse_reg(s, line_no)?,
                    addr: parse_reg(a, line_no)?,
                });
            }
            "add" | "sub" | "rem" => {
                let [d, a, b] = ops[..] else {
                    return Err(bad_ops(line_no));
                };
                let (dst, a, b) = (
                    parse_reg(d, line_no)?,
                    parse_reg(a, line_no)?,
                    parse_reg(b, line_no)?,
                );
                builder.push(match mnemonic {
                    "add" => Instr::Add { dst, a, b },
                    "sub" => Instr::Sub { dst, a, b },
                    _ => Instr::Rem { dst, a, b },
                });
            }
            "addi" => {
                let [d, a, imm] = ops[..] else {
                    return Err(bad_ops(line_no));
                };
                builder.push(Instr::AddImm {
                    dst: parse_reg(d, line_no)?,
                    a: parse_reg(a, line_no)?,
                    imm: parse_imm_i64(imm, line_no)?,
                });
            }
            "jmp" => {
                let [l] = ops[..] else {
                    return Err(bad_ops(line_no));
                };
                let label = get_label(&mut builder, &mut labels, l);
                referenced.push((l.to_string(), line_no));
                builder.jump(label);
            }
            "jr" => {
                let [a] = ops[..] else {
                    return Err(bad_ops(line_no));
                };
                builder.push(Instr::JumpReg {
                    target: parse_reg(a, line_no)?,
                });
            }
            "beqz" => {
                let [c, l] = ops[..] else {
                    return Err(bad_ops(line_no));
                };
                let cond = parse_reg(c, line_no)?;
                let label = get_label(&mut builder, &mut labels, l);
                referenced.push((l.to_string(), line_no));
                builder.branch_if_zero(cond, label);
            }
            "blt" => {
                let [a, b, l] = ops[..] else {
                    return Err(bad_ops(line_no));
                };
                let (a, b) = (parse_reg(a, line_no)?, parse_reg(b, line_no)?);
                let label = get_label(&mut builder, &mut labels, l);
                referenced.push((l.to_string(), line_no));
                builder.branch_if_lt(a, b, label);
            }
            "halt" => {
                if !ops.is_empty() {
                    return Err(bad_ops(line_no));
                }
                builder.push(Instr::Halt);
            }
            other => {
                return Err(AsmError {
                    line: line_no,
                    kind: AsmErrorKind::UnknownMnemonic(other.to_string()),
                })
            }
        }
    }

    // Undefined-label check (finish() would panic; report nicely instead).
    for (name, line) in &referenced {
        if !defined.contains_key(name) {
            return Err(AsmError {
                line: *line,
                kind: AsmErrorKind::UndefinedLabel(name.clone()),
            });
        }
    }

    builder.finish(memory_words).map_err(|e| AsmError {
        line: 0,
        kind: AsmErrorKind::Invalid(e),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Machine, TupleCollector};

    fn run(src: &str) -> Machine {
        let program = assemble(src).expect("assembles");
        let mut m = Machine::new(program);
        m.run(1_000_000, &mut TupleCollector::new()).expect("halts");
        m
    }

    #[test]
    fn assembles_and_runs_a_sum_loop() {
        let m = run("
            .memory 16
                li   r0, 0
                li   r1, 16
                li   r4, 3
            init:
                store r4, r0
                addi r0, r0, 1
                blt  r0, r1, init
                li   r0, 0
                li   r2, 0
            loop:
                load r3, r0
                add  r2, r2, r3
                addi r0, r0, 1
                blt  r0, r1, loop
                halt
        ");
        assert_eq!(m.regs()[2], 48); // 16 * 3
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = assemble("; only a comment\n\n   li r0, 1 ; trailing\nhalt\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn hex_immediates_parse() {
        let m = run("li r0, 0x10\nhalt");
        assert_eq!(m.regs()[0], 16);
    }

    #[test]
    fn negative_addi_parses() {
        let m = run("li r0, 10\naddi r0, r0, -3\nhalt");
        assert_eq!(m.regs()[0], 7);
    }

    #[test]
    fn label_on_its_own_line_binds_to_next_instruction() {
        let m = run("
            li r0, 2
        target:
            addi r0, r0, 5
            halt
        ");
        assert_eq!(m.regs()[0], 7);
    }

    #[test]
    fn forward_references_resolve() {
        let m = run("
            li r0, 0
            jmp skip
            li r0, 99
        skip:
            halt
        ");
        assert_eq!(m.regs()[0], 0);
    }

    #[test]
    fn jr_dispatch_works() {
        let m = run("
            li r0, 3
            jr r0
            halt        ; index 2 (skipped)
            li r1, 7    ; index 3
            halt
        ");
        assert_eq!(m.regs()[1], 7);
    }

    #[test]
    fn unknown_mnemonic_reports_the_line() {
        let err = assemble("li r0, 1\nfrobnicate r1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, AsmErrorKind::UnknownMnemonic(_)));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn bad_register_is_rejected() {
        let err = assemble("li r16, 1\nhalt").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadRegister(_)));
        let err = assemble("li x0, 1\nhalt").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadRegister(_)));
    }

    #[test]
    fn wrong_operand_count_is_rejected() {
        let err = assemble("add r0, r1\nhalt").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadOperands(_)));
        let err = assemble("halt r0").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadOperands(_)));
    }

    #[test]
    fn duplicate_label_is_rejected() {
        let err = assemble("a:\nli r0, 1\na:\nhalt").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(matches!(err.kind, AsmErrorKind::DuplicateLabel(_)));
    }

    #[test]
    fn undefined_label_is_rejected_with_reference_line() {
        let err = assemble("li r0, 1\njmp nowhere\nhalt").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, AsmErrorKind::UndefinedLabel(_)));
    }

    #[test]
    fn bad_directive_is_rejected() {
        let err = assemble(".stack 64\nhalt").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadDirective(_)));
        let err = assemble(".memory\nhalt").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadDirective(_)));
    }

    #[test]
    fn memory_directive_sizes_data_memory() {
        let p = assemble(".memory 64\nhalt").unwrap();
        assert_eq!(p.memory_words(), 64);
    }

    #[test]
    fn empty_program_fails_validation() {
        let err = assemble("; nothing\n").unwrap_err();
        assert!(matches!(
            err.kind,
            AsmErrorKind::Invalid(ProgramError::Empty)
        ));
    }
}
