//! A label-resolving program builder and a library of mini-kernels.
//!
//! The kernels are chosen to exhibit the behaviours that make hardware
//! profiling worthwhile (§2 of the paper):
//!
//! * [`array_sum`] — a reduction over data dominated by one value
//!   (frequent-value locality, the Zhang et al. motivation);
//! * [`byte_histogram`] — data-dependent branches plus read-modify-write
//!   loads whose values drift (profiling noise);
//! * [`linked_list_walk`] — pointer chasing: every load yields an address
//!   (the prefetching motivation);
//! * [`dispatch_loop`] — a bytecode-interpreter dispatch via an indirect
//!   jump (hot-edge / trace-formation motivation).

use super::isa::{Instr, Program, ProgramError, Reg};

/// A forward-referencable label inside a [`ProgramBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Builds programs with symbolic branch targets, resolving them at
/// [`finish`](ProgramBuilder::finish).
///
/// # Examples
///
/// ```
/// use mhp_trace::sim::programs::ProgramBuilder;
/// use mhp_trace::sim::Instr;
/// let mut b = ProgramBuilder::new();
/// let top = b.new_label();
/// b.bind(top);
/// b.push(Instr::AddImm { dst: 0, a: 0, imm: -1 });
/// b.push(Instr::LoadImm { dst: 1, imm: 0 });
/// b.branch_if_lt(1, 0, top); // loop while 0 < r0
/// b.push(Instr::Halt);
/// let program = b.finish(0)?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    labels: Vec<Option<usize>>,
    patches: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Current instruction index (where the next `push` will land).
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Allocates an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.instrs.len());
    }

    /// Appends a non-branching instruction; returns its index.
    pub fn push(&mut self, instr: Instr) -> usize {
        self.instrs.push(instr);
        self.instrs.len() - 1
    }

    /// Appends `Jump` to `label`.
    pub fn jump(&mut self, label: Label) -> usize {
        let at = self.push(Instr::Jump { target: 0 });
        self.patches.push((at, label));
        at
    }

    /// Appends `BranchIfZero` to `label`.
    pub fn branch_if_zero(&mut self, cond: Reg, label: Label) -> usize {
        let at = self.push(Instr::BranchIfZero { cond, target: 0 });
        self.patches.push((at, label));
        at
    }

    /// Appends `BranchIfLt` to `label`.
    pub fn branch_if_lt(&mut self, a: Reg, b: Reg, label: Label) -> usize {
        let at = self.push(Instr::BranchIfLt { a, b, target: 0 });
        self.patches.push((at, label));
        at
    }

    /// Resolves all labels and validates the program.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ProgramError`] if validation fails.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never bound.
    pub fn finish(mut self, memory_words: usize) -> Result<Program, ProgramError> {
        for (at, label) in self.patches {
            let target = self.labels[label.0].expect("unbound label referenced");
            match &mut self.instrs[at] {
                Instr::Jump { target: t }
                | Instr::BranchIfZero { target: t, .. }
                | Instr::BranchIfLt { target: t, .. } => *t = target,
                other => unreachable!("patched a non-branch {other:?}"),
            }
        }
        Program::new(self.instrs, memory_words)
    }
}

/// Sums an `n`-word array whose contents are mostly the value 5 with every
/// seventh word equal to 99 — a stream of highly invariant load values.
/// The sum is left in register 2.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn array_sum(n: u64) -> Program {
    assert!(n > 0, "array must be non-empty");
    let mut b = ProgramBuilder::new();
    // r0 = i, r1 = n, r4 = 7, r5 = 5, r6 = 99.
    b.push(Instr::LoadImm { dst: 0, imm: 0 });
    b.push(Instr::LoadImm { dst: 1, imm: n });
    b.push(Instr::LoadImm { dst: 4, imm: 7 });
    b.push(Instr::LoadImm { dst: 5, imm: 5 });
    b.push(Instr::LoadImm { dst: 6, imm: 99 });
    // Initialization loop.
    let init = b.new_label();
    let store99 = b.new_label();
    let init_next = b.new_label();
    b.bind(init);
    b.push(Instr::Rem { dst: 2, a: 0, b: 4 });
    b.branch_if_zero(2, store99);
    b.push(Instr::Store { src: 5, addr: 0 });
    b.jump(init_next);
    b.bind(store99);
    b.push(Instr::Store { src: 6, addr: 0 });
    b.bind(init_next);
    b.push(Instr::AddImm {
        dst: 0,
        a: 0,
        imm: 1,
    });
    b.branch_if_lt(0, 1, init);
    // Sum loop: r2 = sum.
    b.push(Instr::LoadImm { dst: 0, imm: 0 });
    b.push(Instr::LoadImm { dst: 2, imm: 0 });
    let sum = b.new_label();
    b.bind(sum);
    b.push(Instr::Load { dst: 3, addr: 0 });
    b.push(Instr::Add { dst: 2, a: 2, b: 3 });
    b.push(Instr::AddImm {
        dst: 0,
        a: 0,
        imm: 1,
    });
    b.branch_if_lt(0, 1, sum);
    b.push(Instr::Halt);
    b.finish(n as usize).expect("array_sum is well-formed")
}

/// Builds a histogram of `n` data words over 4 buckets. Data word `i` holds
/// `i % 4`; bucket counters live at `mem[n .. n+4]`. Exercises
/// data-dependent branches and loads whose values drift upward.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn byte_histogram(n: u64) -> Program {
    assert!(n > 0, "need data");
    let mut b = ProgramBuilder::new();
    // r0 = i, r1 = n, r4 = 4.
    b.push(Instr::LoadImm { dst: 0, imm: 0 });
    b.push(Instr::LoadImm { dst: 1, imm: n });
    b.push(Instr::LoadImm { dst: 4, imm: 4 });
    // Init: mem[i] = i % 4.
    let init = b.new_label();
    b.bind(init);
    b.push(Instr::Rem { dst: 2, a: 0, b: 4 });
    b.push(Instr::Store { src: 2, addr: 0 });
    b.push(Instr::AddImm {
        dst: 0,
        a: 0,
        imm: 1,
    });
    b.branch_if_lt(0, 1, init);
    // Histogram: cnt = mem[n + v]; cnt += 1; store back.
    b.push(Instr::LoadImm { dst: 0, imm: 0 });
    let hist = b.new_label();
    b.bind(hist);
    b.push(Instr::Load { dst: 3, addr: 0 }); // v = mem[i]
    b.push(Instr::Add { dst: 5, a: 3, b: 1 }); // bucket addr = n + v
    b.push(Instr::Load { dst: 6, addr: 5 }); // cnt = mem[bucket]
    b.push(Instr::AddImm {
        dst: 6,
        a: 6,
        imm: 1,
    });
    b.push(Instr::Store { src: 6, addr: 5 });
    b.push(Instr::AddImm {
        dst: 0,
        a: 0,
        imm: 1,
    });
    b.branch_if_lt(0, 1, hist);
    b.push(Instr::Halt);
    b.finish(n as usize + 4)
        .expect("byte_histogram is well-formed")
}

/// Builds an `n`-node circular linked list (`next(i) = (i + stride) % n`)
/// and chases it for `iters` hops. The final node index is left in
/// register 0. Every hop's load yields a pointer — the access pattern
/// prefetchers care about.
///
/// # Panics
///
/// Panics if `n == 0` or `stride == 0`.
pub fn linked_list_walk(n: u64, stride: u64, iters: u64) -> Program {
    assert!(n > 0 && stride > 0, "degenerate list");
    let mut b = ProgramBuilder::new();
    // r0 = i, r1 = n, r4 = stride.
    b.push(Instr::LoadImm { dst: 0, imm: 0 });
    b.push(Instr::LoadImm { dst: 1, imm: n });
    b.push(Instr::LoadImm {
        dst: 4,
        imm: stride,
    });
    // Init: mem[i] = (i + stride) % n.
    let init = b.new_label();
    b.bind(init);
    b.push(Instr::Add { dst: 2, a: 0, b: 4 });
    b.push(Instr::Rem { dst: 2, a: 2, b: 1 });
    b.push(Instr::Store { src: 2, addr: 0 });
    b.push(Instr::AddImm {
        dst: 0,
        a: 0,
        imm: 1,
    });
    b.branch_if_lt(0, 1, init);
    // Walk: r0 = current node, r5 = hop counter, r6 = iters.
    b.push(Instr::LoadImm { dst: 0, imm: 0 });
    b.push(Instr::LoadImm { dst: 5, imm: 0 });
    b.push(Instr::LoadImm { dst: 6, imm: iters });
    let walk = b.new_label();
    b.bind(walk);
    b.push(Instr::Load { dst: 0, addr: 0 }); // node = mem[node]
    b.push(Instr::AddImm {
        dst: 5,
        a: 5,
        imm: 1,
    });
    b.branch_if_lt(5, 6, walk);
    b.push(Instr::Halt);
    b.finish(n as usize)
        .expect("linked_list_walk is well-formed")
}

/// A bytecode-interpreter dispatch loop: `iters` iterations fetch an opcode
/// (`i % 4`) from a `data_len`-word code array and dispatch through a
/// register-indirect jump to one of four handlers, each bumping its own
/// counter (registers 9–12). The canonical hot-indirect-edge workload.
///
/// # Panics
///
/// Panics if `data_len == 0` or `iters == 0`.
pub fn dispatch_loop(data_len: u64, iters: u64) -> Program {
    assert!(data_len > 0 && iters > 0, "degenerate interpreter");
    let mut b = ProgramBuilder::new();
    // r0 = i, r1 = iters, r2 = data_len, r4 = 4.
    b.push(Instr::LoadImm { dst: 0, imm: 0 });
    b.push(Instr::LoadImm {
        dst: 2,
        imm: data_len,
    });
    b.push(Instr::LoadImm { dst: 4, imm: 4 });
    // Init: mem[i] = i % 4.
    let init = b.new_label();
    b.bind(init);
    b.push(Instr::Rem { dst: 3, a: 0, b: 4 });
    b.push(Instr::Store { src: 3, addr: 0 });
    b.push(Instr::AddImm {
        dst: 0,
        a: 0,
        imm: 1,
    });
    b.branch_if_lt(0, 2, init);
    // Main loop.
    b.push(Instr::LoadImm { dst: 0, imm: 0 });
    b.push(Instr::LoadImm { dst: 1, imm: iters });
    let top = b.new_label();
    let cont = b.new_label();
    b.bind(top);
    b.push(Instr::Rem { dst: 5, a: 0, b: 2 }); // idx = i % data_len
    b.push(Instr::Load { dst: 6, addr: 5 }); // op = mem[idx]
                                             // target = handler_base + 2*op; handler_base is patched below.
    b.push(Instr::Add { dst: 7, a: 6, b: 6 });
    let base_instr = b.push(Instr::LoadImm { dst: 8, imm: 0 }); // placeholder base
    b.push(Instr::Add { dst: 7, a: 7, b: 8 });
    b.push(Instr::JumpReg { target: 7 });
    // Handlers: 4 × (bump counter; jump cont).
    let handler_base = b.here();
    for h in 0..4u8 {
        b.push(Instr::AddImm {
            dst: 9 + h,
            a: 9 + h,
            imm: 1,
        });
        b.jump(cont);
    }
    b.bind(cont);
    b.push(Instr::AddImm {
        dst: 0,
        a: 0,
        imm: 1,
    });
    b.branch_if_lt(0, 1, top);
    b.push(Instr::Halt);
    let mut program = b
        .finish(data_len as usize)
        .expect("dispatch_loop is well-formed");
    // Patch the handler base now that its address is known.
    let mut instrs = program.instrs().to_vec();
    instrs[base_instr] = Instr::LoadImm {
        dst: 8,
        imm: handler_base as u64,
    };
    program = Program::new(instrs, data_len as usize).expect("patched program stays valid");
    program
}

/// Counts occurrences of a byte value in an `n`-word haystack (word `i`
/// holds `i % 7`, the needle is 3). The count is left in register 2.
/// A classic scan: highly biased comparison branches plus invariant loads.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn count_needle(n: u64) -> Program {
    assert!(n > 0, "haystack must be non-empty");
    let mut b = ProgramBuilder::new();
    // r0 = i, r1 = n, r4 = 7, r5 = needle (3).
    b.push(Instr::LoadImm { dst: 0, imm: 0 });
    b.push(Instr::LoadImm { dst: 1, imm: n });
    b.push(Instr::LoadImm { dst: 4, imm: 7 });
    b.push(Instr::LoadImm { dst: 5, imm: 3 });
    // Init: mem[i] = i % 7.
    let init = b.new_label();
    b.bind(init);
    b.push(Instr::Rem { dst: 2, a: 0, b: 4 });
    b.push(Instr::Store { src: 2, addr: 0 });
    b.push(Instr::AddImm {
        dst: 0,
        a: 0,
        imm: 1,
    });
    b.branch_if_lt(0, 1, init);
    // Scan: r2 = count.
    b.push(Instr::LoadImm { dst: 0, imm: 0 });
    b.push(Instr::LoadImm { dst: 2, imm: 0 });
    let scan = b.new_label();
    let next = b.new_label();
    b.bind(scan);
    b.push(Instr::Load { dst: 3, addr: 0 }); // v = mem[i]
    b.push(Instr::Sub { dst: 6, a: 3, b: 5 }); // v - needle
    let miss = b.new_label();
    // if v != needle skip the increment: the wrapping difference is
    // non-zero exactly when they differ (for v < needle it wraps huge).
    b.push(Instr::LoadImm { dst: 7, imm: 0 });
    b.branch_if_lt(7, 6, miss); // 0 < diff -> not equal
    b.push(Instr::AddImm {
        dst: 2,
        a: 2,
        imm: 1,
    });
    b.bind(miss);
    b.bind(next);
    b.push(Instr::AddImm {
        dst: 0,
        a: 0,
        imm: 1,
    });
    b.branch_if_lt(0, 1, scan);
    b.push(Instr::Halt);
    b.finish(n as usize).expect("count_needle is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Machine, TupleCollector};

    fn run(program: Program) -> (Machine, TupleCollector) {
        let mut machine = Machine::new(program);
        let mut hook = TupleCollector::new();
        machine.run(10_000_000, &mut hook).expect("program halts");
        (machine, hook)
    }

    #[test]
    fn array_sum_computes_the_right_total() {
        let n = 100u64;
        let (m, _) = run(array_sum(n));
        let nines = (0..n).filter(|i| i % 7 == 0).count() as u64;
        let expected = 99 * nines + 5 * (n - nines);
        assert_eq!(m.regs()[2], expected);
    }

    #[test]
    fn array_sum_loads_are_value_invariant() {
        let (_, hook) = run(array_sum(70));
        // 70 loads, values only 5 or 99; 5 dominates (60 of 70).
        assert_eq!(hook.loads().len(), 70);
        let fives = hook
            .loads()
            .iter()
            .filter(|t| t.value().as_u64() == 5)
            .count();
        assert_eq!(fives, 60);
    }

    #[test]
    fn byte_histogram_counts_correctly() {
        let n = 40u64;
        let (m, _) = run(byte_histogram(n));
        for bucket in 0..4 {
            assert_eq!(m.memory()[n as usize + bucket], 10);
        }
    }

    #[test]
    fn byte_histogram_counter_loads_drift() {
        let (_, hook) = run(byte_histogram(40));
        // The bucket-counter loads see values 0..9 — drifting, not invariant.
        let distinct: std::collections::HashSet<u64> =
            hook.loads().iter().map(|t| t.value().as_u64()).collect();
        assert!(
            distinct.len() >= 10,
            "distinct load values {}",
            distinct.len()
        );
    }

    #[test]
    fn linked_list_walk_ends_on_the_right_node() {
        let (m, hook) = run(linked_list_walk(10, 3, 7));
        // Start at 0; after 7 hops of +3 mod 10 -> 21 mod 10 = 1.
        assert_eq!(m.regs()[0], 1);
        // Walk loads: exactly `iters` of them from the same PC.
        let walk_loads = hook.loads();
        assert_eq!(walk_loads.len(), 7);
        let pcs: std::collections::HashSet<u64> =
            walk_loads.iter().map(|t| t.pc().as_u64()).collect();
        assert_eq!(pcs.len(), 1, "all walk loads issue from one instruction");
    }

    #[test]
    fn dispatch_loop_executes_all_handlers_evenly() {
        let iters = 400u64;
        let (m, _) = run(dispatch_loop(16, iters));
        for h in 0..4 {
            assert_eq!(m.regs()[9 + h], 100, "handler {h} count");
        }
    }

    #[test]
    fn dispatch_loop_emits_indirect_edges_to_four_targets() {
        let (_, hook) = run(dispatch_loop(16, 100));
        // Find the JumpReg PC: the edge source with 4 distinct targets.
        let mut by_pc: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
            std::collections::HashMap::new();
        for e in hook.edges() {
            by_pc
                .entry(e.pc().as_u64())
                .or_default()
                .insert(e.value().as_u64());
        }
        let max_fanout = by_pc.values().map(|s| s.len()).max().unwrap();
        assert_eq!(max_fanout, 4, "dispatch edge should have 4 targets");
    }

    #[test]
    fn count_needle_finds_all_occurrences() {
        let n = 70u64;
        let (m, hook) = run(count_needle(n));
        // i % 7 == 3 for 10 of 70 words.
        assert_eq!(m.regs()[2], 10);
        assert_eq!(hook.loads().len(), 70);
        // The scan branch is heavily biased: most words are not the needle.
        let edges = hook.edges().len();
        assert!(edges > 2 * 70, "init + scan branches, got {edges}");
    }

    #[test]
    fn builder_rejects_unbound_labels_at_finish() {
        let mut b = ProgramBuilder::new();
        let dangling = b.new_label();
        b.jump(dangling);
        b.push(Instr::Halt);
        let result = std::panic::catch_unwind(move || b.finish(0));
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn builder_rejects_double_binding() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }
}
