//! Calibrated workload models for the paper's eight benchmarks.
//!
//! The paper evaluates on SPEC95 (go, li, m88ksim), SPEC2000 (gcc, vortex)
//! and three C++ programs (burg, deltablue, sis), instrumented with ATOM on
//! Alpha hardware. None of that tooling is available here, so each benchmark
//! is modelled as a [`ValueWorkloadSpec`] / [`EdgeWorkloadSpec`] whose
//! parameters are calibrated to the per-benchmark observables the paper
//! reports:
//!
//! * **Figure 4** — distinct tuples per interval (gcc and go largest, burg
//!   and m88ksim smallest; distinct counts grow roughly linearly with
//!   interval length) — set by the streaming fraction of the noise tail;
//! * **Figure 5** — candidate tuples per interval (≈ hot-band size at
//!   10K/1 %, ≈ hot+mid at 1M/0.1 %, roughly independent of interval
//!   length) — set by the band counts;
//! * **Figure 6** — candidate variation across intervals: deltablue is
//!   phase-heavy at 1M but stable at 10K (long phases, low stability);
//!   m88ksim and vortex are the reverse (short hot-set bursts, stable
//!   long-run mix); gcc and go sit in between.
//!
//! Absolute error numbers will not match the paper (different substrate),
//! but the cross-benchmark ordering and the qualitative behaviour carry.

use crate::edge::{EdgeWorkload, EdgeWorkloadSpec};
use crate::util::hash2;
use crate::workload::{BandSpec, ValueWorkload, ValueWorkloadSpec};

/// One of the paper's eight benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// `burg` — BURS tree-parser generator (C++).
    Burg,
    /// `deltablue` — incremental constraint solver (C++).
    Deltablue,
    /// `gcc` — SPEC2000 C compiler (largest tuple population).
    Gcc,
    /// `go` — SPEC95 Go-playing program.
    Go,
    /// `li` — SPEC95 Lisp interpreter.
    Li,
    /// `m88ksim` — SPEC95 Motorola 88100 simulator.
    M88ksim,
    /// `sis` — synchronous/asynchronous circuit synthesis (C++).
    Sis,
    /// `vortex` — SPEC2000 object-oriented database.
    Vortex,
}

impl Benchmark {
    /// All eight benchmarks in the paper's (alphabetical) figure order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Burg,
        Benchmark::Deltablue,
        Benchmark::Gcc,
        Benchmark::Go,
        Benchmark::Li,
        Benchmark::M88ksim,
        Benchmark::Sis,
        Benchmark::Vortex,
    ];

    /// The benchmark's lowercase name, as printed in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Burg => "burg",
            Benchmark::Deltablue => "deltablue",
            Benchmark::Gcc => "gcc",
            Benchmark::Go => "go",
            Benchmark::Li => "li",
            Benchmark::M88ksim => "m88ksim",
            Benchmark::Sis => "sis",
            Benchmark::Vortex => "vortex",
        }
    }

    /// The value-profiling workload model for this benchmark.
    pub fn value_spec(self) -> ValueWorkloadSpec {
        // Band frequency ranges shared by all benchmarks: the hot band sits
        // above the 1% threshold (after the 0.9 dominant-value split), the
        // mid band between 0.1% and 1%, the warm band just below 0.1%.
        let hot = |count, max| BandSpec {
            count,
            freq_min: 0.0125,
            freq_max: max,
        };
        let mid = |count, max| BandSpec {
            count,
            freq_min: 0.0013,
            freq_max: max,
        };
        let warm = |count| BandSpec {
            count,
            freq_min: 0.0001,
            freq_max: 0.0004,
        };
        let base = |name, hot, mid, warm, noise_pcs, small_set_fraction| ValueWorkloadSpec {
            name,
            hot,
            mid,
            warm,
            dominant_prob: 0.95,
            noise_pcs,
            noise_theta: 0.7,
            noise_rank_offset: 200,
            small_set_fraction,
            small_set_values: 8,
            phases: 1,
            phase_len: 0,
            stable_fraction: 1.0,
            burst_groups: 1,
            burst_len: 0,
            rotating_fraction: 1.0,
        };
        match self {
            Benchmark::Burg => {
                let mut s = base("burg", hot(4, 0.028), mid(18, 0.006), warm(30), 1_500, 0.97);
                s.small_set_values = 4;
                s
            }
            Benchmark::Deltablue => {
                let mut s = base(
                    "deltablue",
                    hot(6, 0.026),
                    mid(40, 0.005),
                    warm(40),
                    3_000,
                    0.92,
                );
                // Long disjoint phases: heavy 1M-interval variation (Fig. 6).
                s.phases = 6;
                s.phase_len = 2_500_000;
                s.stable_fraction = 0.2;
                s.small_set_values = 4;
                s
            }
            Benchmark::Gcc => {
                let mut s = base(
                    "gcc",
                    hot(16, 0.018),
                    mid(110, 0.004),
                    warm(150),
                    120_000,
                    0.25,
                );
                s.phases = 4;
                s.phase_len = 5_000_000;
                s.stable_fraction = 0.6;
                // Intra-phase candidate churn (Fig. 6: ~35% median variation
                // at 10K intervals) — the main source of hash-table pressure.
                s.burst_groups = 3;
                s.burst_len = 25_000;
                s.rotating_fraction = 0.4;
                s
            }
            Benchmark::Go => {
                let mut s = base(
                    "go",
                    hot(12, 0.02),
                    mid(130, 0.0035),
                    warm(175),
                    100_000,
                    0.30,
                );
                s.phases = 3;
                s.phase_len = 6_000_000;
                s.stable_fraction = 0.5;
                s.burst_groups = 3;
                s.burst_len = 20_000;
                s.rotating_fraction = 0.4;
                s
            }
            Benchmark::Li => {
                let mut s = base("li", hot(7, 0.026), mid(45, 0.005), warm(50), 4_000, 0.90);
                s.phases = 2;
                s.phase_len = 8_000_000;
                s.stable_fraction = 0.8;
                s.small_set_values = 4;
                s.burst_groups = 2;
                s.burst_len = 40_000;
                s.rotating_fraction = 0.25;
                s
            }
            Benchmark::M88ksim => {
                let mut s = base(
                    "m88ksim",
                    hot(8, 0.026),
                    mid(50, 0.005),
                    warm(45),
                    2_500,
                    0.95,
                );
                // Short hot-set bursts: 10K-interval variation, 1M stability.
                s.burst_groups = 2;
                s.burst_len = 15_000;
                s.small_set_values = 4;
                s
            }
            Benchmark::Sis => {
                let mut s = base(
                    "sis",
                    hot(10, 0.024),
                    mid(70, 0.0045),
                    warm(75),
                    20_000,
                    0.75,
                );
                s.phases = 3;
                s.phase_len = 5_000_000;
                s.stable_fraction = 0.6;
                s.burst_groups = 2;
                s.burst_len = 30_000;
                s.rotating_fraction = 0.3;
                s
            }
            Benchmark::Vortex => {
                let mut s = base(
                    "vortex",
                    hot(9, 0.024),
                    mid(80, 0.0045),
                    warm(80),
                    10_000,
                    0.82,
                );
                s.phases = 2;
                s.phase_len = 10_000_000;
                s.stable_fraction = 0.9;
                s.burst_groups = 3;
                s.burst_len = 12_000;
                s
            }
        }
    }

    /// The edge-profiling workload model for this benchmark.
    pub fn edge_spec(self) -> EdgeWorkloadSpec {
        let v = self.value_spec();
        // Edge streams mirror the benchmark's band structure but with fewer
        // members (a branch contributes up to two edges), a much smaller
        // static population, and no streaming noise.
        EdgeWorkloadSpec {
            name: v.name,
            hot: BandSpec {
                count: (v.hot.count * 3 / 4).max(2),
                freq_min: 0.014,
                freq_max: v.hot.freq_max.max(0.02),
            },
            mid: BandSpec {
                count: (v.mid.count / 2).max(4),
                freq_min: 0.0014,
                freq_max: v.mid.freq_max,
            },
            warm: BandSpec {
                count: (v.warm.count / 2).max(8),
                freq_min: 0.0001,
                freq_max: 0.0005,
            },
            noise_branches: (v.noise_pcs / 20).max(400),
            noise_theta: 0.8,
            noise_rank_offset: 200,
            indirect_fraction: 0.06,
            indirect_targets: 64,
            phases: v.phases,
            phase_len: v.phase_len,
            stable_fraction: v.stable_fraction,
            burst_groups: v.burst_groups,
            burst_len: v.burst_len,
            rotating_fraction: v.rotating_fraction,
        }
    }

    /// An infinite value-profiling event stream for this benchmark.
    ///
    /// The same `(benchmark, seed)` pair always produces the same stream.
    pub fn value_stream(self, seed: u64) -> ValueWorkload {
        ValueWorkload::new(self.value_spec(), hash2(seed, self as u64))
    }

    /// An infinite edge-profiling event stream for this benchmark.
    pub fn edge_stream(self, seed: u64) -> EdgeWorkload {
        EdgeWorkload::new(self.edge_spec(), hash2(seed, 0xED6E ^ self as u64))
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Benchmark {
    type Err = UnknownBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name() == s)
            .ok_or_else(|| UnknownBenchmarkError(s.to_string()))
    }
}

/// Error returned when parsing an unknown benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBenchmarkError(String);

impl std::fmt::Display for UnknownBenchmarkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown benchmark {:?} (expected one of: ", self.0)?;
        for (i, b) in Benchmark::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for UnknownBenchmarkError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_specs_validate() {
        for b in Benchmark::ALL {
            b.value_spec().validate();
            b.edge_spec().validate();
        }
    }

    #[test]
    fn names_round_trip_through_fromstr() {
        for b in Benchmark::ALL {
            let parsed: Benchmark = b.name().parse().unwrap();
            assert_eq!(parsed, b);
        }
        assert!("specint".parse::<Benchmark>().is_err());
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a: Vec<_> = Benchmark::Gcc.value_stream(1).take(100).collect();
        let b: Vec<_> = Benchmark::Gcc.value_stream(1).take(100).collect();
        let c: Vec<_> = Benchmark::Gcc.value_stream(2).take(100).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn benchmarks_have_distinct_streams() {
        let gcc: Vec<_> = Benchmark::Gcc.value_stream(1).take(50).collect();
        let go: Vec<_> = Benchmark::Go.value_stream(1).take(50).collect();
        assert_ne!(gcc, go);
    }

    #[test]
    fn gcc_and_go_have_the_largest_tuple_populations() {
        // Figure 4's ordering: gcc and go dominate the distinct-tuple counts.
        let distinct = |b: Benchmark| {
            b.value_stream(3)
                .take(100_000)
                .collect::<HashSet<_>>()
                .len()
        };
        let gcc = distinct(Benchmark::Gcc);
        let go = distinct(Benchmark::Go);
        for b in [
            Benchmark::Burg,
            Benchmark::M88ksim,
            Benchmark::Li,
            Benchmark::Deltablue,
        ] {
            let d = distinct(b);
            assert!(gcc > d, "gcc ({gcc}) should exceed {} ({d})", b.name());
            assert!(go > d, "go ({go}) should exceed {} ({d})", b.name());
        }
    }

    #[test]
    fn hot_band_sizes_track_figure5_ordering() {
        // gcc/go report the most candidates in Figure 5.
        let gcc = Benchmark::Gcc.value_spec();
        let burg = Benchmark::Burg.value_spec();
        assert!(gcc.hot.count > burg.hot.count);
        assert!(gcc.mid.count > burg.mid.count);
    }

    #[test]
    fn edge_specs_have_fewer_distinct_tuples_than_value() {
        let distinct_edges = Benchmark::Gcc
            .edge_stream(3)
            .take(100_000)
            .collect::<HashSet<_>>()
            .len();
        let distinct_values = Benchmark::Gcc
            .value_stream(3)
            .take(100_000)
            .collect::<HashSet<_>>()
            .len();
        assert!(
            distinct_edges < distinct_values / 2,
            "edges {distinct_edges} vs values {distinct_values}"
        );
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::M88ksim.to_string(), "m88ksim");
    }
}
