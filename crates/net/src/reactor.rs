//! The [`Reactor`]: a readiness multiplexer over `poll(2)`.
//!
//! Callers register raw fds under caller-chosen [`Token`]s with an
//! [`Interest`] (readable, writable, both, or neither — error and hangup
//! conditions are always reported). Each [`poll`](Reactor::poll) call
//! rebuilds the `pollfd` array from the registration table — an O(n) cost
//! that *is* the cost model of `poll(2)` itself, so there is nothing to
//! save by caching it — blocks until readiness or timeout, and translates
//! kernel `revents` into [`Event`]s.
//!
//! A [`Waker`] lets other threads interrupt a blocked `poll` (the classic
//! self-pipe trick, here a `UnixStream` pair so no FFI is needed): worker
//! threads finish a job, push the result somewhere shared, and
//! [`wake`](Waker::wake) the loop to come collect it. Wakeups are
//! level-coalesced — a thousand `wake` calls while the loop is busy cost
//! one pipe byte and one drain.

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

use crate::sys::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};

/// Caller-chosen identifier for one registered fd; echoed back in every
/// [`Event`]. The reactor never interprets the value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Which readiness a registration wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when a read would not block.
    pub readable: bool,
    /// Report when a write would not block.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Neither — only errors and hangups are reported. This is how a
    /// connection under backpressure stays registered (so its death is
    /// still observed) without being read from.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn poll_bits(self) -> i16 {
        let mut bits = 0;
        if self.readable {
            bits |= POLLIN;
        }
        if self.writable {
            bits |= POLLOUT;
        }
        bits
    }
}

/// One readiness report from [`Reactor::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registration this readiness belongs to.
    pub token: Token,
    /// A read would not block (or EOF/hangup is observable by reading).
    pub readable: bool,
    /// A write would not block.
    pub writable: bool,
    /// The fd is in an error state (`POLLERR`/`POLLNVAL`); the owner
    /// should close it.
    pub error: bool,
    /// The peer hung up. Data may still be buffered — read until EOF.
    pub hangup: bool,
}

impl Event {
    /// True when the connection is dead or dying: error, or hangup with
    /// nothing readable left.
    pub fn is_fatal(&self) -> bool {
        self.error || (self.hangup && !self.readable)
    }
}

/// Cross-thread handle that interrupts a blocked [`Reactor::poll`].
/// Cheap to clone; wakes are coalesced.
#[derive(Debug, Clone)]
pub struct Waker {
    pipe: Arc<UnixStream>,
}

impl Waker {
    /// Interrupts the reactor's current (or next) `poll`. Never blocks:
    /// if the pipe is already full a wakeup is already pending, which is
    /// all a wake means.
    pub fn wake(&self) {
        let _ = (&*self.pipe).write(&[1u8]);
    }
}

struct Registration {
    fd: RawFd,
    token: Token,
    interest: Interest,
}

/// A readiness multiplexer over `poll(2)`. See the module docs.
pub struct Reactor {
    registrations: Vec<Registration>,
    /// Token → index into `registrations`, for O(1) modify/deregister.
    index: std::collections::HashMap<Token, usize>,
    /// Receive half of the self-pipe; always polled readable.
    wake_rx: UnixStream,
    wake_tx: Arc<UnixStream>,
    /// Scratch `pollfd` array, reused across polls.
    scratch: Vec<PollFd>,
    /// Times a poll returned because the waker fired.
    wakeups: u64,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("registrations", &self.registrations.len())
            .field("wakeups", &self.wakeups)
            .finish_non_exhaustive()
    }
}

impl Reactor {
    /// Creates a reactor and its internal wake pipe.
    ///
    /// # Errors
    ///
    /// I/O failure creating the socket pair.
    pub fn new() -> io::Result<Reactor> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        Ok(Reactor {
            registrations: Vec::new(),
            index: std::collections::HashMap::new(),
            wake_rx,
            wake_tx: Arc::new(wake_tx),
            scratch: Vec::new(),
            wakeups: 0,
        })
    }

    /// A cloneable cross-thread wake handle for this reactor.
    pub fn waker(&self) -> Waker {
        Waker {
            pipe: Arc::clone(&self.wake_tx),
        }
    }

    /// Registered fd count (the waker pipe is not counted).
    pub fn len(&self) -> usize {
        self.registrations.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.registrations.is_empty()
    }

    /// How many polls returned due to a [`Waker::wake`] so far.
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    /// Starts watching `fd` under `token`.
    ///
    /// The caller keeps ownership of the fd and must [`deregister`]
    /// (or drop the whole reactor) before closing it.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::AlreadyExists`] if the token is in use.
    ///
    /// [`deregister`]: Reactor::deregister
    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        if self.index.contains_key(&token) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "token already registered",
            ));
        }
        self.index.insert(token, self.registrations.len());
        self.registrations.push(Registration {
            fd,
            token,
            interest,
        });
        Ok(())
    }

    /// Changes what `token` is interested in.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotFound`] if the token is not registered.
    pub fn set_interest(&mut self, token: Token, interest: Interest) -> io::Result<()> {
        let &idx = self
            .index
            .get(&token)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "token not registered"))?;
        self.registrations[idx].interest = interest;
        Ok(())
    }

    /// Stops watching `token`'s fd.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotFound`] if the token is not registered.
    pub fn deregister(&mut self, token: Token) -> io::Result<()> {
        let idx = self
            .index
            .remove(&token)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "token not registered"))?;
        self.registrations.swap_remove(idx);
        if let Some(moved) = self.registrations.get(idx) {
            self.index.insert(moved.token, idx);
        }
        Ok(())
    }

    /// Blocks until readiness, a wakeup, or `timeout` (`None` = forever);
    /// appends one [`Event`] per ready registration to `events` (which is
    /// cleared first). Wakeup bytes are drained internally and counted in
    /// [`wakeups`](Reactor::wakeups), not surfaced as events.
    ///
    /// # Errors
    ///
    /// Kernel `poll` failures other than `EINTR` (which is retried).
    pub fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.scratch.clear();
        // Slot 0 is always the wake pipe.
        self.scratch.push(PollFd {
            fd: self.wake_rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        for reg in &self.registrations {
            self.scratch.push(PollFd {
                fd: reg.fd,
                events: reg.interest.poll_bits(),
                revents: 0,
            });
        }
        let ready = poll_fds(&mut self.scratch, timeout)?;
        if ready == 0 {
            return Ok(());
        }
        if self.scratch[0].revents & POLLIN != 0 {
            self.wakeups += 1;
            let mut sink = [0u8; 64];
            while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
        }
        for (slot, reg) in self.scratch[1..].iter().zip(&self.registrations) {
            let revents = slot.revents;
            if revents == 0 {
                continue;
            }
            events.push(Event {
                token: reg.token,
                readable: revents & POLLIN != 0,
                writable: revents & POLLOUT != 0,
                error: revents & (POLLERR | POLLNVAL) != 0,
                hangup: revents & POLLHUP != 0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn registration_lifecycle_and_duplicate_tokens() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut reactor = Reactor::new().unwrap();
        reactor
            .register(a.as_raw_fd(), Token(7), Interest::READABLE)
            .unwrap();
        assert_eq!(reactor.len(), 1);
        let dup = reactor.register(a.as_raw_fd(), Token(7), Interest::NONE);
        assert_eq!(dup.unwrap_err().kind(), io::ErrorKind::AlreadyExists);
        reactor.deregister(Token(7)).unwrap();
        assert!(reactor.is_empty());
        assert_eq!(
            reactor.deregister(Token(7)).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
    }

    #[test]
    fn poll_reports_readable_registration() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut reactor = Reactor::new().unwrap();
        reactor
            .register(b.as_raw_fd(), Token(1), Interest::READABLE)
            .unwrap();
        a.write_all(b"hi").unwrap();
        let mut events = Vec::new();
        reactor
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, Token(1));
        assert!(events[0].readable);
        assert!(!events[0].is_fatal());
    }

    #[test]
    fn waker_interrupts_a_blocked_poll() {
        let mut reactor = Reactor::new().unwrap();
        let waker = reactor.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
            waker.wake(); // coalesced
        });
        let mut events = Vec::new();
        let started = Instant::now();
        reactor
            .poll(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(started.elapsed() < Duration::from_secs(5), "wake was lost");
        assert!(events.is_empty(), "wakeups are not surfaced as events");
        assert_eq!(reactor.wakeups(), 1);
        handle.join().unwrap();
        // A wake with no poll in flight is remembered (level, not edge).
        let waker = reactor.waker();
        waker.wake();
        let started = Instant::now();
        reactor
            .poll(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn interest_none_suppresses_readable_but_reports_hangup() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut reactor = Reactor::new().unwrap();
        reactor
            .register(b.as_raw_fd(), Token(3), Interest::NONE)
            .unwrap();
        a.write_all(b"pending").unwrap();
        let mut events = Vec::new();
        reactor
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "NONE must not report plain readability");
        drop(a);
        reactor
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].hangup || events[0].error);
    }

    #[test]
    fn deregister_middle_keeps_other_tokens_working() {
        let pairs: Vec<_> = (0..3).map(|_| UnixStream::pair().unwrap()).collect();
        let mut reactor = Reactor::new().unwrap();
        for (i, (_, rx)) in pairs.iter().enumerate() {
            reactor
                .register(rx.as_raw_fd(), Token(i), Interest::READABLE)
                .unwrap();
        }
        reactor.deregister(Token(0)).unwrap(); // swap_remove moves Token(2)
        let mut tx2 = &pairs[2].0;
        tx2.write_all(b"z").unwrap();
        let mut events = Vec::new();
        reactor
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, Token(2));
    }
}
