//! Per-connection state machines ([`Conn`]) and the slab that owns them.
//!
//! The event loop's job is routing: readiness events and timer firings go
//! to the connection they belong to, which reacts by advancing its state
//! machine and declaring what it wants next ([`Step`]). The [`Slab`]
//! hands out dense indices for O(1) routing and tags each with a
//! generation so a token that outlives its connection (a late timer, a
//! completion from a worker thread) is detected instead of being
//! delivered to whichever new connection reused the slot.

use std::time::Instant;

use crate::reactor::{Event, Interest, Token};

/// What a connection wants after handling an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Stay registered with this interest. `Interest::NONE` parks the
    /// connection (backpressure) while still observing errors/hangup.
    Continue(Interest),
    /// Deregister, drop and close.
    Close,
}

/// A per-connection state machine driven by the event loop.
///
/// Implementations own their socket and buffers; the loop only routes.
pub trait Conn {
    /// The socket reported ready. Read/write until `WouldBlock`, advance
    /// the state machine, and say what readiness to wait for next.
    fn on_ready(&mut self, event: &Event) -> Step;

    /// A deadline armed for this connection fired.
    fn on_timer(&mut self, now: Instant) -> Step;
}

/// Generation-tagged slab of live connections.
///
/// Tokens pack `generation << INDEX_BITS | index`; a stale token (slot
/// since freed or reused) simply fails to resolve.
pub struct Slab<C> {
    slots: Vec<Slot<C>>,
    free: Vec<u32>,
    len: usize,
}

struct Slot<C> {
    generation: u32,
    conn: Option<C>,
}

const INDEX_BITS: u32 = 32;
const INDEX_MASK: usize = (1 << INDEX_BITS) - 1;

impl<C> Default for Slab<C> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<C> std::fmt::Debug for Slab<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slab")
            .field("len", &self.len)
            .field("capacity", &self.slots.len())
            .finish()
    }
}

impl<C> Slab<C> {
    /// An empty slab.
    pub fn new() -> Slab<C> {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Live connection count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no connections are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `conn`, returning its token. Slots are reused with a bumped
    /// generation so stale tokens never alias the new occupant.
    pub fn insert(&mut self, conn: C) -> Token {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            slot.conn = Some(conn);
            Token(((slot.generation as usize) << INDEX_BITS) | idx as usize)
        } else {
            let idx = self.slots.len();
            self.slots.push(Slot {
                generation: 0,
                conn: Some(conn),
            });
            Token(idx)
        }
    }

    fn resolve(&self, token: Token) -> Option<usize> {
        let idx = token.0 & INDEX_MASK;
        let generation = (token.0 >> INDEX_BITS) as u32;
        let slot = self.slots.get(idx)?;
        (slot.generation == generation && slot.conn.is_some()).then_some(idx)
    }

    /// The connection behind `token`, unless the token is stale.
    pub fn get_mut(&mut self, token: Token) -> Option<&mut C> {
        let idx = self.resolve(token)?;
        self.slots[idx].conn.as_mut()
    }

    /// Removes and returns the connection behind `token`; the slot's
    /// generation is bumped so the token (and any copies of it held by
    /// timers or worker jobs) is dead from here on.
    pub fn remove(&mut self, token: Token) -> Option<C> {
        let idx = self.resolve(token)?;
        let slot = &mut self.slots[idx];
        slot.generation = slot.generation.wrapping_add(1);
        let conn = slot.conn.take();
        self.free.push(idx as u32);
        self.len -= 1;
        conn
    }

    /// Tokens of all live connections (for shutdown sweeps).
    pub fn tokens(&self) -> Vec<Token> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.conn.is_some())
            .map(|(idx, s)| Token(((s.generation as usize) << INDEX_BITS) | idx))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab: Slab<String> = Slab::new();
        let a = slab.insert("a".into());
        let b = slab.insert("b".into());
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get_mut(a).unwrap(), "a");
        assert_eq!(slab.get_mut(b).unwrap(), "b");
        assert_eq!(slab.remove(a).unwrap(), "a");
        assert!(slab.get_mut(a).is_none());
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn stale_token_does_not_alias_reused_slot() {
        let mut slab: Slab<u32> = Slab::new();
        let first = slab.insert(1);
        slab.remove(first);
        let second = slab.insert(2);
        // Same slot, different generation.
        assert_ne!(first, second);
        assert!(
            slab.get_mut(first).is_none(),
            "stale token must not resolve"
        );
        assert!(slab.remove(first).is_none());
        assert_eq!(*slab.get_mut(second).unwrap(), 2);
    }

    #[test]
    fn tokens_lists_only_live_connections() {
        let mut slab: Slab<u32> = Slab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        let c = slab.insert(3);
        slab.remove(b);
        let mut live = slab.tokens();
        live.sort();
        let mut expect = vec![a, c];
        expect.sort();
        assert_eq!(live, expect);
        for t in slab.tokens() {
            assert!(slab.get_mut(t).is_some());
        }
    }

    #[test]
    fn double_remove_is_none_and_len_stays_consistent() {
        let mut slab: Slab<u8> = Slab::new();
        let t = slab.insert(7);
        assert!(slab.remove(t).is_some());
        assert!(slab.remove(t).is_none());
        assert_eq!(slab.len(), 0);
        assert!(slab.is_empty());
    }
}
