//! # mhp-net — dependency-free readiness-based event loop
//!
//! The building blocks that let one thread hold thousands of profiling
//! connections: a [`Reactor`] multiplexing nonblocking sockets over
//! `poll(2)` (declared by direct FFI against the libc every binary
//! already links — no external crates), a [`Waker`] for cross-thread
//! loop interrupts, a hashed [`TimerWheel`] for per-connection deadlines,
//! a [`Conn`] trait for per-connection state machines, and a
//! generation-tagged [`Slab`] to own them.
//!
//! The crate is deliberately mechanism-only: it knows nothing about the
//! profiling wire protocol. mhp-server composes these pieces into its
//! `--event-loop` front end; the loadgen in mhp-client reuses the same
//! reactor to multiplex thousands of client sessions.
//!
//! ## Shape of a loop
//!
//! ```no_run
//! use mhp_net::{Interest, Reactor, Token};
//! use std::time::Duration;
//!
//! let mut reactor = Reactor::new().unwrap();
//! let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! listener.set_nonblocking(true).unwrap();
//! const LISTENER: Token = Token(usize::MAX);
//! {
//!     use std::os::fd::AsRawFd;
//!     reactor.register(listener.as_raw_fd(), LISTENER, Interest::READABLE).unwrap();
//! }
//! let mut events = Vec::new();
//! loop {
//!     reactor.poll(&mut events, Some(Duration::from_millis(100))).unwrap();
//!     for event in &events {
//!         if event.token == LISTENER {
//!             // accept until WouldBlock, register each conn …
//!         } else {
//!             // route to the Conn state machine behind event.token …
//!         }
//!     }
//! }
//! ```
//!
//! All `unsafe` lives in the private `sys` module (the single `poll`
//! declaration); the rest of the crate — and everything downstream —
//! stays safe Rust.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod conn;
mod reactor;
mod sys;
mod timer;

pub use conn::{Conn, Slab, Step};
pub use reactor::{Event, Interest, Reactor, Token, Waker};
pub use timer::TimerWheel;
