//! The entire unsafe surface of the crate: a direct `extern "C"`
//! declaration of `poll(2)` against the libc every Rust binary already
//! links, plus the `pollfd` layout and event bits from `<poll.h>`.
//!
//! Nothing else in the workspace needs FFI: sockets are created, read and
//! written through `std::net`; only *readiness* has no safe std API, and
//! `poll` is the one POSIX multiplexer with a stable, dependency-free ABI
//! (no epoll instance lifecycle, no kqueue changelists).

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// One entry of the `poll(2)` fd array, layout-identical to C `struct
/// pollfd` on every POSIX platform (three natively-aligned fields, no
/// padding surprises).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollFd {
    /// The file descriptor to watch (negative entries are ignored by the
    /// kernel, which we never rely on).
    pub fd: RawFd,
    /// Requested events (`POLL*` bits).
    pub events: i16,
    /// Returned events, filled by the kernel.
    pub revents: i16,
}

/// Data may be read without blocking.
pub(crate) const POLLIN: i16 = 0x001;
/// Data may be written without blocking.
pub(crate) const POLLOUT: i16 = 0x004;
/// An error condition is pending (always reported, never requested).
pub(crate) const POLLERR: i16 = 0x008;
/// The peer hung up (always reported, never requested).
pub(crate) const POLLHUP: i16 = 0x010;
/// The descriptor is not open (always reported, never requested).
pub(crate) const POLLNVAL: i16 = 0x020;

// `nfds_t` is `unsigned long` on Linux and the BSDs; `c_ulong` keeps the
// declaration correct on both 64-bit and (theoretical) 32-bit targets.
extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: std::os::raw::c_int) -> i32;
}

/// Blocks until at least one watched fd is ready, the timeout elapses
/// (`Ok(0)`), or a signal interrupts — `EINTR` is retried here so callers
/// never see it. `None` blocks indefinitely.
///
/// Returns how many entries have nonzero `revents`.
pub(crate) fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: i32 = match timeout {
        None => -1,
        // Round *up* so a 100µs timeout polls for 1ms instead of spinning.
        Some(d) => d
            .as_millis()
            .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
            .min(i32::MAX as u128) as i32,
    };
    loop {
        // SAFETY: `fds` points to `fds.len()` properly initialized,
        // C-layout `PollFd` entries that live across the call; the kernel
        // only writes within the array (the `revents` fields).
        let rc = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as std::os::raw::c_ulong,
                timeout_ms,
            )
        };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
        // EINTR: retry with the full timeout. Callers poll inside a loop
        // with their own deadline bookkeeping, so the slight overshoot is
        // harmless and keeps this function allocation- and clock-free.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[test]
    fn timeout_expires_on_idle_fd() {
        let (_a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        let mut fds = [PollFd {
            fd: b.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        let started = Instant::now();
        let n = poll_fds(&mut fds, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0);
        assert!(started.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn readable_fd_reports_pollin_immediately() {
        let (mut a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        a.write_all(b"x").unwrap();
        let mut fds = [PollFd {
            fd: b.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }

    #[test]
    fn hangup_is_reported_even_when_not_requested() {
        let (a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        drop(a);
        let mut fds = [PollFd {
            fd: b.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_ne!(fds[0].revents & (POLLHUP | POLLIN), 0);
    }
}
