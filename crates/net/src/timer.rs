//! A hashed timer wheel for coarse per-connection deadlines.
//!
//! The server needs one timer per connection ("if no complete frame
//! arrives within the read timeout, poke the state machine"), re-armed on
//! every request — classic short-lived, usually-cancelled timers, which is
//! exactly the workload hashed wheels were designed for (Varghese &
//! Lauck). Insert and cancel are O(1); [`expire`](TimerWheel::expire)
//! touches only the slots the cursor sweeps past.
//!
//! Precision is one tick (the reactor's poll timeout is clamped to the
//! tick anyway, so finer resolution would be theater). Deadlines further
//! out than one wheel revolution stay in their slot and are re-queued when
//! the cursor reaches them with laps remaining.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::reactor::Token;

#[derive(Debug, Clone, Copy)]
struct Entry {
    token: Token,
    /// Absolute tick at which this entry fires.
    deadline_tick: u64,
    /// Cancel handling: an entry is live only if the map still points at
    /// this exact sequence number (re-arming bumps it).
    seq: u64,
}

/// A hashed timer wheel mapping [`Token`]s to single pending deadlines.
/// Re-scheduling a token replaces its previous deadline.
#[derive(Debug)]
pub struct TimerWheel {
    tick: Duration,
    slots: Vec<Vec<Entry>>,
    /// Live deadline per token: (deadline_tick, seq). Stale wheel entries
    /// (cancelled or superseded) are dropped lazily when swept.
    live: HashMap<Token, (u64, u64)>,
    /// The next tick the cursor will process.
    cursor_tick: u64,
    epoch: Instant,
    next_seq: u64,
}

impl TimerWheel {
    /// A wheel with the given tick length and slot count. One revolution
    /// covers `tick × nslots`; longer deadlines cost extra re-queues, not
    /// correctness.
    ///
    /// # Panics
    ///
    /// If `tick` is zero or `nslots` is zero.
    pub fn new(tick: Duration, nslots: usize) -> TimerWheel {
        assert!(!tick.is_zero(), "tick must be nonzero");
        assert!(nslots > 0, "need at least one slot");
        TimerWheel {
            tick,
            slots: vec![Vec::new(); nslots],
            live: HashMap::new(),
            cursor_tick: 0,
            epoch: Instant::now(),
            next_seq: 0,
        }
    }

    /// The wheel's tick length — a sensible reactor poll timeout.
    pub fn tick(&self) -> Duration {
        self.tick
    }

    /// Count of pending (scheduled, not yet fired or cancelled) timers.
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.epoch);
        // Round up: a deadline mid-tick fires at the tick after it passes,
        // never before it.
        (elapsed.as_nanos() / self.tick.as_nanos()) as u64
            + u64::from(!elapsed.as_nanos().is_multiple_of(self.tick.as_nanos()))
    }

    /// Arms (or re-arms) `token` to fire once `delay` from `now` has
    /// passed. A token has at most one pending deadline.
    pub fn schedule(&mut self, token: Token, now: Instant, delay: Duration) {
        let deadline_tick = self.tick_of(now + delay).max(self.cursor_tick);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(token, (deadline_tick, seq));
        let slot = (deadline_tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry {
            token,
            deadline_tick,
            seq,
        });
    }

    /// Disarms `token`'s pending deadline, if any. Returns whether one
    /// was pending.
    pub fn cancel(&mut self, token: Token) -> bool {
        self.live.remove(&token).is_some()
    }

    /// Sweeps the cursor forward to `now`, appending every token whose
    /// deadline has passed to `fired` (which is cleared first). Entries
    /// scheduled for a later revolution are re-queued, stale entries are
    /// dropped.
    pub fn expire(&mut self, now: Instant, fired: &mut Vec<Token>) {
        fired.clear();
        // `now` is mid-tick: ticks strictly before the current one are due.
        let due_before = (now.saturating_duration_since(self.epoch).as_nanos()
            / self.tick.as_nanos()) as u64
            + 1;
        let nslots = self.slots.len() as u64;
        // Sweep at most one full revolution; beyond that the slots repeat.
        let sweep_end = due_before.min(self.cursor_tick + nslots);
        while self.cursor_tick < sweep_end {
            let slot = (self.cursor_tick % nslots) as usize;
            let mut i = 0;
            while i < self.slots[slot].len() {
                let entry = self.slots[slot][i];
                let stale = self.live.get(&entry.token) != Some(&(entry.deadline_tick, entry.seq));
                if stale {
                    self.slots[slot].swap_remove(i);
                } else if entry.deadline_tick < due_before {
                    self.slots[slot].swap_remove(i);
                    self.live.remove(&entry.token);
                    fired.push(entry.token);
                } else {
                    // A later revolution; leave it for the next lap.
                    i += 1;
                }
            }
            self.cursor_tick += 1;
        }
        self.cursor_tick = self.cursor_tick.max(due_before.saturating_sub(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel() -> TimerWheel {
        TimerWheel::new(Duration::from_millis(10), 16)
    }

    #[test]
    fn fires_after_delay_not_before() {
        let mut w = wheel();
        let t0 = Instant::now();
        w.schedule(Token(1), t0, Duration::from_millis(50));
        let mut fired = Vec::new();
        w.expire(t0 + Duration::from_millis(20), &mut fired);
        assert!(fired.is_empty());
        w.expire(t0 + Duration::from_millis(75), &mut fired);
        assert_eq!(fired, vec![Token(1)]);
        assert_eq!(w.pending(), 0);
        // Fired once only.
        w.expire(t0 + Duration::from_millis(200), &mut fired);
        assert!(fired.is_empty());
    }

    #[test]
    fn cancel_suppresses_firing() {
        let mut w = wheel();
        let t0 = Instant::now();
        w.schedule(Token(1), t0, Duration::from_millis(30));
        assert!(w.cancel(Token(1)));
        assert!(!w.cancel(Token(1)));
        let mut fired = Vec::new();
        w.expire(t0 + Duration::from_millis(100), &mut fired);
        assert!(fired.is_empty());
    }

    #[test]
    fn rearm_replaces_previous_deadline() {
        let mut w = wheel();
        let t0 = Instant::now();
        w.schedule(Token(1), t0, Duration::from_millis(30));
        w.schedule(Token(1), t0, Duration::from_millis(500));
        let mut fired = Vec::new();
        w.expire(t0 + Duration::from_millis(100), &mut fired);
        assert!(fired.is_empty(), "old deadline must not fire after re-arm");
        w.expire(t0 + Duration::from_millis(600), &mut fired);
        assert_eq!(fired, vec![Token(1)]);
    }

    #[test]
    fn deadline_beyond_one_revolution_waits_for_its_lap() {
        // Wheel covers 160ms; schedule at 400ms, two laps out.
        let mut w = wheel();
        let t0 = Instant::now();
        w.schedule(Token(9), t0, Duration::from_millis(400));
        let mut fired = Vec::new();
        w.expire(t0 + Duration::from_millis(200), &mut fired);
        assert!(fired.is_empty());
        w.expire(t0 + Duration::from_millis(450), &mut fired);
        assert_eq!(fired, vec![Token(9)]);
    }

    #[test]
    fn many_tokens_fire_in_their_own_ticks() {
        let mut w = wheel();
        let t0 = Instant::now();
        for i in 0..100usize {
            w.schedule(
                Token(i),
                t0,
                Duration::from_millis(10 + (i as u64 % 7) * 20),
            );
        }
        assert_eq!(w.pending(), 100);
        let mut fired = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for step in 1..=40u64 {
            w.expire(t0 + Duration::from_millis(step * 10), &mut fired);
            for t in &fired {
                assert!(seen.insert(*t), "token fired twice: {t:?}");
            }
        }
        assert_eq!(seen.len(), 100);
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn huge_sweep_gap_terminates_and_fires_everything_due() {
        let mut w = wheel();
        let t0 = Instant::now();
        w.schedule(Token(1), t0, Duration::from_millis(20));
        let mut fired = Vec::new();
        // A sweep hours ahead must not iterate hour/tick times.
        w.expire(t0 + Duration::from_secs(3600), &mut fired);
        assert_eq!(fired, vec![Token(1)]);
        // And scheduling still works afterwards.
        let t1 = t0 + Duration::from_secs(3600);
        w.schedule(Token(2), t1, Duration::from_millis(20));
        w.expire(t1 + Duration::from_millis(50), &mut fired);
        assert_eq!(fired, vec![Token(2)]);
    }
}
