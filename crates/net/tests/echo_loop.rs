//! Integration: a miniature single-threaded echo server built from the
//! crate's pieces — Reactor + Slab + TimerWheel + Conn — exercised by
//! blocking clients from other threads. This is the same skeleton
//! mhp-server's event loop uses, minus the protocol.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use mhp_net::{Conn, Event, Interest, Reactor, Slab, Step, TimerWheel, Token};

const LISTENER: Token = Token(usize::MAX);
const IDLE_TIMEOUT: Duration = Duration::from_millis(200);

struct EchoConn {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl Conn for EchoConn {
    fn on_ready(&mut self, event: &Event) -> Step {
        if event.error {
            return Step::Close;
        }
        if event.readable {
            let mut buf = [0u8; 4096];
            loop {
                match self.stream.read(&mut buf) {
                    Ok(0) => return Step::Close,
                    Ok(n) => self.pending.extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return Step::Close,
                }
            }
        }
        while !self.pending.is_empty() {
            match self.stream.write(&self.pending) {
                Ok(n) => {
                    self.pending.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Step::Continue(Interest::BOTH);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Step::Close,
            }
        }
        if event.hangup {
            return Step::Close;
        }
        Step::Continue(Interest::READABLE)
    }

    fn on_timer(&mut self, _now: Instant) -> Step {
        // Idle deadline: drop the connection.
        Step::Close
    }
}

/// Runs the echo loop until no connections have existed for `linger`.
fn run_echo_server(listener: TcpListener, linger: Duration) {
    listener.set_nonblocking(true).unwrap();
    let mut reactor = Reactor::new().unwrap();
    reactor
        .register(listener.as_raw_fd(), LISTENER, Interest::READABLE)
        .unwrap();
    let mut slab: Slab<EchoConn> = Slab::new();
    let mut wheel = TimerWheel::new(Duration::from_millis(10), 64);
    let mut events = Vec::new();
    let mut fired = Vec::new();
    let mut accepted_any = false;
    let mut empty_since = Instant::now();

    loop {
        reactor.poll(&mut events, Some(wheel.tick())).unwrap();
        let now = Instant::now();
        let drained: Vec<Event> = std::mem::take(&mut events);
        for event in drained {
            if event.token == LISTENER {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(true).unwrap();
                            accepted_any = true;
                            let fd = stream.as_raw_fd();
                            let token = slab.insert(EchoConn {
                                stream,
                                pending: Vec::new(),
                            });
                            reactor.register(fd, token, Interest::READABLE).unwrap();
                            wheel.schedule(token, now, IDLE_TIMEOUT);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) => panic!("accept: {e}"),
                    }
                }
                continue;
            }
            let Some(conn) = slab.get_mut(event.token) else {
                continue; // stale: closed earlier this batch
            };
            match conn.on_ready(&event) {
                Step::Continue(interest) => {
                    reactor.set_interest(event.token, interest).unwrap();
                    wheel.schedule(event.token, now, IDLE_TIMEOUT);
                }
                Step::Close => {
                    reactor.deregister(event.token).unwrap();
                    wheel.cancel(event.token);
                    slab.remove(event.token);
                }
            }
        }
        wheel.expire(now, &mut fired);
        for token in fired.drain(..) {
            let Some(conn) = slab.get_mut(token) else {
                continue;
            };
            if let Step::Close = conn.on_timer(now) {
                reactor.deregister(token).unwrap();
                slab.remove(token);
            }
        }
        if slab.is_empty() {
            if accepted_any && now.duration_since(empty_since) > linger {
                return;
            }
        } else {
            empty_since = now;
        }
    }
}

#[test]
fn echoes_concurrent_clients_byte_identical() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || run_echo_server(listener, Duration::from_millis(100)));

    let clients: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                // Distinct payload per client, sent in two chunks.
                let payload: Vec<u8> = (0..1000u32).map(|j| ((i * 37 + j) % 251) as u8).collect();
                stream.write_all(&payload[..300]).unwrap();
                std::thread::sleep(Duration::from_millis(5));
                stream.write_all(&payload[300..]).unwrap();
                let mut back = vec![0u8; payload.len()];
                stream.read_exact(&mut back).unwrap();
                assert_eq!(back, payload, "client {i} echo mismatch");
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    server.join().unwrap();
}

#[test]
fn idle_connections_are_reaped_by_the_timer_wheel() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || run_echo_server(listener, Duration::from_millis(100)));

    // Connect, send nothing: the idle deadline must close us.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    let mut buf = [0u8; 1];
    let n = stream.read(&mut buf).unwrap(); // EOF when server closes
    assert_eq!(n, 0, "server should close the idle connection");
    assert!(
        started.elapsed() >= Duration::from_millis(150),
        "closed before the idle deadline"
    );
    server.join().unwrap();
}

#[test]
fn active_traffic_keeps_the_connection_alive_past_the_idle_deadline() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || run_echo_server(listener, Duration::from_millis(100)));

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Keep trickling for 3× the idle timeout; re-arming must keep us open.
    let deadline = Instant::now() + 3 * IDLE_TIMEOUT;
    while Instant::now() < deadline {
        stream.write_all(b"ping").unwrap();
        let mut back = [0u8; 4];
        stream.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"ping");
        std::thread::sleep(Duration::from_millis(40));
    }
    drop(stream);
    server.join().unwrap();
}
