//! Configuration of the stratified-sampler pipeline.

use mhp_core::ConfigError;

/// Configuration of the optional fully associative aggregation table that
/// sits between the counter table and the buffer (§4.2: *"a small
/// fully-associative counter table next to the stratified sampler (and
/// before the buffer) to aggregate information before sending it to
/// software"*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregationConfig {
    /// Entries in the aggregation table.
    pub entries: usize,
    /// A tuple's aggregated report count is flushed to the buffer once it
    /// reaches this value.
    pub flush_threshold: u32,
}

impl Default for AggregationConfig {
    fn default() -> Self {
        AggregationConfig {
            entries: 16,
            flush_threshold: 8,
        }
    }
}

/// Configuration of a [`StratifiedSampler`](crate::StratifiedSampler).
///
/// # Examples
///
/// ```
/// use mhp_stratified::{AggregationConfig, StratifiedConfig};
/// # fn main() -> Result<(), mhp_core::ConfigError> {
/// let config = StratifiedConfig::new(2048)?
///     .with_sampling_threshold(64)
///     .with_tags(8, 32)
///     .with_aggregation(AggregationConfig::default());
/// assert!(config.tagged());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StratifiedConfig {
    entries: usize,
    sampling_threshold: u32,
    tag_bits: u32,
    miss_limit: u32,
    aggregation: Option<AggregationConfig>,
    buffer_capacity: usize,
}

impl StratifiedConfig {
    /// Creates a plain (untagged) sampler configuration with `entries`
    /// counters, a sampling threshold of 16 and a 100-entry report buffer
    /// (the buffer size used in the original study).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EntriesNotPowerOfTwo`] if `entries` is not a
    /// power of two of at least 2.
    pub fn new(entries: usize) -> Result<Self, ConfigError> {
        if entries < 2 || !entries.is_power_of_two() {
            return Err(ConfigError::EntriesNotPowerOfTwo(entries));
        }
        Ok(StratifiedConfig {
            entries,
            sampling_threshold: 16,
            tag_bits: 0,
            miss_limit: 0,
            aggregation: None,
            buffer_capacity: 100,
        })
    }

    /// Sets the per-counter sampling threshold (reports are generated every
    /// `threshold` occurrences).
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0`.
    pub fn with_sampling_threshold(mut self, threshold: u32) -> Self {
        assert!(threshold > 0, "sampling threshold must be positive");
        self.sampling_threshold = threshold;
        self
    }

    /// Enables partial tags and miss counters: a mismatching tuple bumps a
    /// miss counter, and once misses reach `miss_limit` the entry is
    /// re-tagged for the new tuple (the replacement policy of §4.2).
    ///
    /// # Panics
    ///
    /// Panics if `tag_bits` is 0 or greater than 32, or `miss_limit == 0`.
    pub fn with_tags(mut self, tag_bits: u32, miss_limit: u32) -> Self {
        assert!((1..=32).contains(&tag_bits), "tag bits must be 1..=32");
        assert!(miss_limit > 0, "miss limit must be positive");
        self.tag_bits = tag_bits;
        self.miss_limit = miss_limit;
        self
    }

    /// Adds the aggregation table.
    pub fn with_aggregation(mut self, aggregation: AggregationConfig) -> Self {
        self.aggregation = Some(aggregation);
        self
    }

    /// Sets the report-buffer capacity (an interrupt fires when it fills).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_buffer_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        self.buffer_capacity = capacity;
        self
    }

    /// Number of counters.
    #[inline]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// The per-counter sampling threshold.
    #[inline]
    pub fn sampling_threshold(&self) -> u32 {
        self.sampling_threshold
    }

    /// Whether partial tags are enabled.
    #[inline]
    pub fn tagged(&self) -> bool {
        self.tag_bits > 0
    }

    /// Partial-tag width in bits (0 when untagged).
    #[inline]
    pub fn tag_bits(&self) -> u32 {
        self.tag_bits
    }

    /// Miss-counter replacement limit (0 when untagged).
    #[inline]
    pub fn miss_limit(&self) -> u32 {
        self.miss_limit
    }

    /// The aggregation-table configuration, if enabled.
    #[inline]
    pub fn aggregation(&self) -> Option<AggregationConfig> {
        self.aggregation
    }

    /// Report-buffer capacity.
    #[inline]
    pub fn buffer_capacity(&self) -> usize {
        self.buffer_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_original_study() {
        let c = StratifiedConfig::new(2048).unwrap();
        assert_eq!(c.buffer_capacity(), 100);
        assert_eq!(c.sampling_threshold(), 16);
        assert!(!c.tagged());
        assert!(c.aggregation().is_none());
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(StratifiedConfig::new(1000).is_err());
        assert!(StratifiedConfig::new(1024).is_ok());
    }

    #[test]
    fn builder_chains() {
        let c = StratifiedConfig::new(512)
            .unwrap()
            .with_sampling_threshold(64)
            .with_tags(8, 32)
            .with_aggregation(AggregationConfig {
                entries: 8,
                flush_threshold: 4,
            })
            .with_buffer_capacity(50);
        assert_eq!(c.sampling_threshold(), 64);
        assert_eq!(c.tag_bits(), 8);
        assert_eq!(c.miss_limit(), 32);
        assert_eq!(c.aggregation().unwrap().entries, 8);
        assert_eq!(c.buffer_capacity(), 50);
    }

    #[test]
    #[should_panic(expected = "sampling threshold")]
    fn zero_threshold_panics() {
        let _ = StratifiedConfig::new(512)
            .unwrap()
            .with_sampling_threshold(0);
    }

    #[test]
    #[should_panic(expected = "tag bits")]
    fn bad_tag_bits_panic() {
        let _ = StratifiedConfig::new(512).unwrap().with_tags(0, 1);
    }
}
