//! The stratified-sampler hardware pipeline.

use mhp_core::{
    Candidate, ConfigError, EventProfiler, IntervalConfig, IntervalProfile, Tuple, TupleHasher,
};

use crate::config::StratifiedConfig;
use crate::software::{OverheadStats, SoftwareAccumulator};

/// One counter-table entry: count plus (when tags are enabled) a partial tag
/// and a miss counter guiding replacement.
#[derive(Debug, Clone, Copy, Default)]
struct CounterEntry {
    count: u32,
    tag: u32,
    tag_valid: bool,
    misses: u32,
}

/// One aggregation-table entry: a reported tuple and how many hardware
/// reports it has absorbed.
#[derive(Debug, Clone, Copy)]
struct AggEntry {
    tuple: Tuple,
    reports: u32,
}

/// The Stratified Sampler of Sastry et al., adapted to interval-based
/// operation so it can be compared against the paper's profilers under the
/// same error metric.
///
/// The pipeline per event: hash to a counter (optionally tag-checked);
/// crossing the sampling threshold resets the counter and emits a report;
/// reports flow through the optional aggregation table into the buffer; a
/// full buffer interrupts "software", which accumulates estimated counts
/// (reports × sampling threshold). At an interval boundary the software
/// profile's above-threshold tuples become the reported candidates.
#[derive(Debug, Clone)]
pub struct StratifiedSampler {
    interval: IntervalConfig,
    config: StratifiedConfig,
    hasher: TupleHasher,
    counters: Vec<CounterEntry>,
    agg: Vec<AggEntry>,
    software: SoftwareAccumulator,
    tag_seed: u64,
    threshold: u64,
    events: u64,
    interval_idx: u64,
}

impl StratifiedSampler {
    /// Builds a sampler. The `seed` selects the hardwired hash function.
    ///
    /// # Errors
    ///
    /// Propagates hash-table configuration errors.
    pub fn new(
        interval: IntervalConfig,
        config: StratifiedConfig,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        let hasher = TupleHasher::new(config.entries(), seed)?;
        Ok(StratifiedSampler {
            interval,
            config,
            hasher,
            counters: vec![CounterEntry::default(); config.entries()],
            agg: Vec::new(),
            software: SoftwareAccumulator::new(config.buffer_capacity()),
            tag_seed: seed ^ 0x7A6_7A6,
            threshold: interval.threshold_count(),
            events: 0,
            interval_idx: 0,
        })
    }

    /// This sampler's configuration.
    pub fn config(&self) -> StratifiedConfig {
        self.config
    }

    /// Cumulative software-overhead statistics.
    pub fn overhead(&self) -> OverheadStats {
        self.software.stats()
    }

    fn partial_tag(&self, tuple: Tuple) -> u32 {
        let mixed = crate::mix_tag(self.tag_seed, tuple);
        (mixed & ((1u64 << self.config.tag_bits()) - 1)) as u32
    }

    /// Routes one hardware report (worth one sampling threshold of
    /// occurrences) through the aggregation table, if configured.
    fn route_report(&mut self, tuple: Tuple) {
        let weight = u64::from(self.config.sampling_threshold());
        let Some(agg_cfg) = self.config.aggregation() else {
            self.software.report(tuple, weight);
            return;
        };
        if let Some(entry) = self.agg.iter_mut().find(|e| e.tuple == tuple) {
            entry.reports += 1;
            self.software.note_aggregated();
            if entry.reports >= agg_cfg.flush_threshold {
                let reports = entry.reports;
                self.agg.retain(|e| e.tuple != tuple);
                self.software.report(tuple, weight * u64::from(reports));
            }
            return;
        }
        if self.agg.len() < agg_cfg.entries {
            self.agg.push(AggEntry { tuple, reports: 1 });
            self.software.note_aggregated();
            return;
        }
        // Capacity eviction: flush the entry with the fewest reports
        // (deterministic tie-break on the tuple).
        let victim_idx = self
            .agg
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.reports, e.tuple))
            .map(|(i, _)| i)
            .expect("aggregation table is non-empty here");
        let victim = self.agg.swap_remove(victim_idx);
        self.software
            .report(victim.tuple, weight * u64::from(victim.reports));
        self.agg.push(AggEntry { tuple, reports: 1 });
        self.software.note_aggregated();
    }

    fn observe_untagged(&mut self, tuple: Tuple) {
        let idx = self.hasher.index(tuple);
        let entry = &mut self.counters[idx];
        entry.count += 1;
        if u64::from(entry.count) >= u64::from(self.config.sampling_threshold()) {
            entry.count = 0;
            self.route_report(tuple);
        }
    }

    fn observe_tagged(&mut self, tuple: Tuple) {
        let tag = self.partial_tag(tuple);
        let idx = self.hasher.index(tuple);
        let miss_limit = self.config.miss_limit();
        let sampling = self.config.sampling_threshold();
        let entry = &mut self.counters[idx];
        if !entry.tag_valid {
            entry.tag = tag;
            entry.tag_valid = true;
            entry.count = 0;
            entry.misses = 0;
        }
        if entry.tag == tag {
            entry.count += 1;
            if entry.count >= sampling {
                entry.count = 0;
                self.route_report(tuple);
            }
        } else {
            entry.misses += 1;
            if entry.misses >= miss_limit {
                // Replace the resident tuple with the newcomer.
                entry.tag = tag;
                entry.count = 1;
                entry.misses = 0;
            }
        }
    }

    fn end_interval(&mut self) -> IntervalProfile {
        // Software reads the aggregation table at the interval boundary.
        let weight = u64::from(self.config.sampling_threshold());
        for entry in std::mem::take(&mut self.agg) {
            self.software
                .report(entry.tuple, weight * u64::from(entry.reports));
        }
        let counts = self.software.finish_interval();
        let candidates: Vec<Candidate> = counts
            .into_iter()
            .filter(|&(_, est)| est >= self.threshold)
            .map(|(tuple, est)| Candidate::new(tuple, est))
            .collect();
        self.counters.fill(CounterEntry::default());
        let profile =
            IntervalProfile::from_candidates(self.interval_idx, self.interval, candidates);
        self.interval_idx += 1;
        self.events = 0;
        profile
    }
}

impl EventProfiler for StratifiedSampler {
    fn interval_config(&self) -> IntervalConfig {
        self.interval
    }

    fn observe(&mut self, tuple: Tuple) -> Option<IntervalProfile> {
        if self.config.tagged() {
            self.observe_tagged(tuple);
        } else {
            self.observe_untagged(tuple);
        }
        self.events += 1;
        if self.interval.is_boundary(self.events) {
            Some(self.end_interval())
        } else {
            None
        }
    }

    fn finish_interval(&mut self) -> IntervalProfile {
        self.end_interval()
    }

    fn reset(&mut self) {
        self.counters.fill(CounterEntry::default());
        self.agg.clear();
        self.software = SoftwareAccumulator::new(self.config.buffer_capacity());
        self.events = 0;
        self.interval_idx = 0;
    }

    fn events_in_current_interval(&self) -> u64 {
        self.events
    }

    fn interval_index(&self) -> u64 {
        self.interval_idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AggregationConfig;

    fn interval(len: u64, frac: f64) -> IntervalConfig {
        IntervalConfig::new(len, frac).unwrap()
    }

    #[test]
    fn hot_tuple_is_estimated_and_reported() {
        let cfg = StratifiedConfig::new(2048)
            .unwrap()
            .with_sampling_threshold(10);
        let mut s = StratifiedSampler::new(interval(1_000, 0.01), cfg, 1).unwrap();
        let hot = Tuple::new(1, 1);
        let mut profile = None;
        for i in 0..1_000u64 {
            let t = if i % 4 == 0 {
                hot
            } else {
                Tuple::new(0x9000 + i, i)
            };
            if let Some(p) = s.observe(t) {
                profile = Some(p);
            }
        }
        let profile = profile.unwrap();
        // 250 occurrences at sampling threshold 10 -> estimate ~250 (within
        // one quantum, plus aliasing inflation).
        let est = profile.count_of(hot).expect("hot tuple reported");
        assert!((240..=330).contains(&est), "estimate {est}");
    }

    #[test]
    fn estimates_are_quantized_to_the_sampling_threshold() {
        let cfg = StratifiedConfig::new(2048)
            .unwrap()
            .with_sampling_threshold(16);
        let mut s = StratifiedSampler::new(interval(100, 0.1), cfg, 1).unwrap();
        let hot = Tuple::new(1, 1);
        let mut profile = None;
        for _ in 0..100u64 {
            if let Some(p) = s.observe(hot) {
                profile = Some(p);
            }
        }
        // 100 occurrences -> 6 reports of weight 16 -> estimate 96.
        assert_eq!(profile.unwrap().count_of(hot), Some(96));
    }

    #[test]
    fn buffer_interrupts_are_counted() {
        let cfg = StratifiedConfig::new(64)
            .unwrap()
            .with_sampling_threshold(2)
            .with_buffer_capacity(10);
        let mut s = StratifiedSampler::new(interval(10_000, 0.01), cfg, 1).unwrap();
        for i in 0..5_000u64 {
            s.observe(Tuple::new(i % 8, 0));
        }
        let stats = s.overhead();
        assert!(stats.reports > 100);
        assert!(stats.interrupts > 10);
    }

    #[test]
    fn aggregation_reduces_buffered_reports() {
        let make = |agg: bool| {
            let mut cfg = StratifiedConfig::new(64)
                .unwrap()
                .with_sampling_threshold(2);
            if agg {
                cfg = cfg.with_aggregation(AggregationConfig {
                    entries: 16,
                    flush_threshold: 8,
                });
            }
            let mut s = StratifiedSampler::new(interval(10_000, 0.01), cfg, 1).unwrap();
            for i in 0..10_000u64 {
                s.observe(Tuple::new(i % 8, 0));
            }
            s.overhead()
        };
        let without = make(false);
        let with = make(true);
        assert!(
            with.reports < without.reports / 4,
            "aggregation should slash buffered reports: {} vs {}",
            with.reports,
            without.reports
        );
        assert!(with.interrupts < without.interrupts);
    }

    #[test]
    fn tagged_sampler_resists_aliasing() {
        // Two aliasing tuples; the tagged sampler should not credit B with
        // A's counts.
        let cfg_plain = StratifiedConfig::new(64)
            .unwrap()
            .with_sampling_threshold(8);
        let cfg_tagged = cfg_plain.with_tags(12, 1_000_000);
        let s0 = StratifiedSampler::new(interval(100_000, 0.0001), cfg_tagged, 1).unwrap();
        // Find an aliasing pair.
        let a = Tuple::new(0x10, 1);
        let mut b = None;
        for i in 0..100_000u64 {
            let cand = Tuple::new(0x9000 + i, i);
            if s0.hasher.index(cand) == s0.hasher.index(a) {
                b = Some(cand);
                break;
            }
        }
        let b = b.expect("aliasing tuple");
        let mut s = s0;
        for _ in 0..7 {
            s.observe(a);
        }
        // One occurrence of b: in the plain design the shared counter would
        // cross (7+1=8) and report b. Tagged: b is a tag miss.
        s.observe(b);
        assert_eq!(s.overhead().reports, 0, "tag must block the aliased report");
    }

    #[test]
    fn tagged_replacement_after_miss_limit() {
        let cfg = StratifiedConfig::new(64)
            .unwrap()
            .with_sampling_threshold(4)
            .with_tags(12, 3);
        let mut s = StratifiedSampler::new(interval(100_000, 0.0001), cfg, 1).unwrap();
        let a = Tuple::new(0x10, 1);
        let mut b = None;
        for i in 0..100_000u64 {
            let cand = Tuple::new(0x9000 + i, i);
            if s.hasher.index(cand) == s.hasher.index(a) && s.partial_tag(cand) != s.partial_tag(a)
            {
                b = Some(cand);
                break;
            }
        }
        let b = b.expect("aliasing tuple with different tag");
        s.observe(a); // a owns the entry
        for _ in 0..3 {
            s.observe(b); // misses reach the limit; b takes over with count 1
        }
        for _ in 0..3 {
            s.observe(b); // 1 + 3 = 4 -> crossing
        }
        assert_eq!(
            s.overhead().reports,
            1,
            "b should earn a report after takeover"
        );
    }

    #[test]
    fn interval_end_flushes_hardware_state() {
        let cfg = StratifiedConfig::new(64)
            .unwrap()
            .with_sampling_threshold(4);
        let mut s = StratifiedSampler::new(interval(100, 0.1), cfg, 1).unwrap();
        for i in 0..100u64 {
            s.observe(Tuple::new(i % 4, 0));
        }
        assert_eq!(s.interval_index(), 1);
        assert!(s.counters.iter().all(|e| e.count == 0));
    }

    #[test]
    fn reset_restores_fresh_state() {
        let cfg = StratifiedConfig::new(64).unwrap();
        let mut s = StratifiedSampler::new(interval(100, 0.1), cfg, 1).unwrap();
        for i in 0..50u64 {
            s.observe(Tuple::new(i, 0));
        }
        s.reset();
        assert_eq!(s.events_in_current_interval(), 0);
        assert_eq!(s.interval_index(), 0);
        assert_eq!(s.overhead(), OverheadStats::default());
    }
}
