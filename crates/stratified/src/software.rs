//! The software side of the stratified sampler: report buffer, interrupts,
//! and the in-memory profile the OS accumulates.

use std::collections::HashMap;

use mhp_core::Tuple;

/// Software-overhead accounting: the cost the Multi-Hash profiler eliminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverheadStats {
    /// Hardware reports generated (counter threshold crossings that reached
    /// the buffer, after aggregation).
    pub reports: u64,
    /// Interrupts raised because the buffer filled.
    pub interrupts: u64,
    /// Reports absorbed by the aggregation table (never individually
    /// buffered).
    pub aggregated: u64,
}

/// The OS-side accumulator: drains the report buffer on interrupts and keeps
/// the per-interval sample counts.
///
/// Each buffered report represents `sample_weight` occurrences of its tuple
/// (the hardware counter's sampling threshold, multiplied by any aggregation
/// factor).
#[derive(Debug, Clone, Default)]
pub struct SoftwareAccumulator {
    buffer: Vec<(Tuple, u64)>,
    capacity: usize,
    counts: HashMap<Tuple, u64>,
    stats: OverheadStats,
}

impl SoftwareAccumulator {
    /// Creates an accumulator whose buffer holds `capacity` reports.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        SoftwareAccumulator {
            buffer: Vec::with_capacity(capacity),
            capacity,
            counts: HashMap::new(),
            stats: OverheadStats::default(),
        }
    }

    /// Buffers one report worth `weight` occurrences. If the buffer is full
    /// an interrupt fires and software drains it.
    pub fn report(&mut self, tuple: Tuple, weight: u64) {
        self.stats.reports += 1;
        self.buffer.push((tuple, weight));
        if self.buffer.len() >= self.capacity {
            self.stats.interrupts += 1;
            self.drain();
        }
    }

    /// Notes a report absorbed by the aggregation table (for accounting).
    pub fn note_aggregated(&mut self) {
        self.stats.aggregated += 1;
    }

    /// Drains the buffer into the software profile without an interrupt
    /// (used at interval boundaries, where software would read the profile
    /// anyway).
    pub fn drain(&mut self) {
        for (tuple, weight) in self.buffer.drain(..) {
            *self.counts.entry(tuple).or_insert(0) += weight;
        }
    }

    /// The software-side estimated count for `tuple` so far this interval.
    pub fn count_of(&self, tuple: Tuple) -> u64 {
        self.counts.get(&tuple).copied().unwrap_or(0)
    }

    /// Number of pending (buffered, undrained) reports.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Running overhead statistics (monotonic across intervals).
    pub fn stats(&self) -> OverheadStats {
        self.stats
    }

    /// Ends the interval: drains the buffer and returns the accumulated
    /// estimated counts, clearing them for the next interval.
    pub fn finish_interval(&mut self) -> HashMap<Tuple, u64> {
        self.drain();
        std::mem::take(&mut self.counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> Tuple {
        Tuple::new(n, n)
    }

    #[test]
    fn reports_accumulate_with_weights() {
        let mut acc = SoftwareAccumulator::new(10);
        acc.report(t(1), 16);
        acc.report(t(1), 16);
        acc.report(t(2), 16);
        acc.drain();
        assert_eq!(acc.count_of(t(1)), 32);
        assert_eq!(acc.count_of(t(2)), 16);
        assert_eq!(acc.count_of(t(3)), 0);
    }

    #[test]
    fn interrupt_fires_when_buffer_fills() {
        let mut acc = SoftwareAccumulator::new(3);
        acc.report(t(1), 1);
        acc.report(t(2), 1);
        assert_eq!(acc.stats().interrupts, 0);
        assert_eq!(acc.pending(), 2);
        acc.report(t(3), 1);
        assert_eq!(acc.stats().interrupts, 1);
        assert_eq!(acc.pending(), 0, "interrupt drains the buffer");
    }

    #[test]
    fn finish_interval_returns_and_clears_counts() {
        let mut acc = SoftwareAccumulator::new(10);
        acc.report(t(1), 5);
        let counts = acc.finish_interval();
        assert_eq!(counts.get(&t(1)), Some(&5));
        assert_eq!(acc.count_of(t(1)), 0);
        assert_eq!(acc.pending(), 0);
    }

    #[test]
    fn stats_are_monotonic_across_intervals() {
        let mut acc = SoftwareAccumulator::new(2);
        for i in 0..10 {
            acc.report(t(i), 1);
        }
        let stats_before = acc.stats();
        acc.finish_interval();
        assert_eq!(
            acc.stats(),
            stats_before,
            "finish_interval is not an interrupt"
        );
        assert_eq!(stats_before.reports, 10);
        assert_eq!(stats_before.interrupts, 5);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        SoftwareAccumulator::new(0);
    }
}
