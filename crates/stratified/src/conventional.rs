//! Conventional periodic and random samplers — the baselines *below* the
//! stratified sampler.
//!
//! §4.2: *"These substreams are then independently sampled using a
//! conventional periodic or random sampler … Consequently, the overall
//! error rate of the stratified sampler will be less compared to having a
//! single periodic or random sampler that takes the original stream as its
//! input."* These two samplers are that reference point: no hardware
//! filtering at all, just one event in `N` forwarded to software, whose
//! per-interval estimate for a tuple is `samples × N`.

use mhp_core::{Candidate, EventProfiler, IntervalConfig, IntervalProfile, Tuple};
use std::collections::HashMap;

/// A deterministic split-mix step for the random sampler's coin flips.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shared sampling core: accumulates sampled tuples and emits per-interval
/// estimated profiles.
#[derive(Debug, Clone)]
struct SamplerCore {
    interval: IntervalConfig,
    period: u64,
    counts: HashMap<Tuple, u64>,
    events: u64,
    interval_idx: u64,
    samples: u64,
}

impl SamplerCore {
    fn new(interval: IntervalConfig, period: u64) -> Self {
        assert!(period > 0, "sampling period must be positive");
        SamplerCore {
            interval,
            period,
            counts: HashMap::new(),
            events: 0,
            interval_idx: 0,
            samples: 0,
        }
    }

    fn record(&mut self, tuple: Tuple) {
        *self.counts.entry(tuple).or_insert(0) += 1;
        self.samples += 1;
    }

    fn tick(&mut self) -> Option<IntervalProfile> {
        self.events += 1;
        if !self.interval.is_boundary(self.events) {
            return None;
        }
        Some(self.cut())
    }

    fn cut(&mut self) -> IntervalProfile {
        let threshold = self.interval.threshold_count();
        let candidates: Vec<Candidate> = self
            .counts
            .drain()
            .map(|(t, samples)| Candidate::new(t, samples * self.period))
            .filter(|c| c.count >= threshold)
            .collect();
        let profile =
            IntervalProfile::from_candidates(self.interval_idx, self.interval, candidates);
        self.interval_idx += 1;
        self.events = 0;
        profile
    }

    fn reset(&mut self) {
        self.counts.clear();
        self.events = 0;
        self.interval_idx = 0;
        self.samples = 0;
    }
}

/// A periodic sampler: records exactly every `period`-th event.
///
/// # Examples
///
/// ```
/// use mhp_core::{EventProfiler, IntervalConfig, Tuple};
/// use mhp_stratified::PeriodicSampler;
/// let mut s = PeriodicSampler::new(IntervalConfig::new(100, 0.5).unwrap(), 10);
/// let mut profile = None;
/// for _ in 0..100 {
///     if let Some(p) = s.observe(Tuple::new(1, 1)) {
///         profile = Some(p);
///     }
/// }
/// // 10 samples x period 10 = estimate 100, exact here.
/// assert_eq!(profile.unwrap().count_of(Tuple::new(1, 1)), Some(100));
/// ```
#[derive(Debug, Clone)]
pub struct PeriodicSampler {
    core: SamplerCore,
    phase: u64,
}

impl PeriodicSampler {
    /// Creates a sampler recording every `period`-th event.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(interval: IntervalConfig, period: u64) -> Self {
        PeriodicSampler {
            core: SamplerCore::new(interval, period),
            phase: 0,
        }
    }

    /// Number of events sampled so far (across all intervals).
    pub fn samples(&self) -> u64 {
        self.core.samples
    }
}

impl EventProfiler for PeriodicSampler {
    fn interval_config(&self) -> IntervalConfig {
        self.core.interval
    }

    fn observe(&mut self, tuple: Tuple) -> Option<IntervalProfile> {
        self.phase += 1;
        if self.phase == self.core.period {
            self.phase = 0;
            self.core.record(tuple);
        }
        self.core.tick()
    }

    fn finish_interval(&mut self) -> IntervalProfile {
        self.core.cut()
    }

    fn reset(&mut self) {
        self.core.reset();
        self.phase = 0;
    }

    fn events_in_current_interval(&self) -> u64 {
        self.core.events
    }

    fn interval_index(&self) -> u64 {
        self.core.interval_idx
    }
}

/// A random sampler: records each event independently with probability
/// `1/period`.
///
/// # Examples
///
/// ```
/// use mhp_core::{EventProfiler, IntervalConfig, Tuple};
/// use mhp_stratified::RandomSampler;
/// let mut s = RandomSampler::new(IntervalConfig::new(10_000, 0.05).unwrap(), 10, 7);
/// let mut profile = None;
/// for _ in 0..10_000 {
///     if let Some(p) = s.observe(Tuple::new(1, 1)) {
///         profile = Some(p);
///     }
/// }
/// let est = profile.unwrap().count_of(Tuple::new(1, 1)).unwrap();
/// assert!((8_000..=12_000).contains(&est), "estimate {est} near 10,000");
/// ```
#[derive(Debug, Clone)]
pub struct RandomSampler {
    core: SamplerCore,
    rng_state: u64,
}

impl RandomSampler {
    /// Creates a sampler recording events with probability `1/period`,
    /// seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(interval: IntervalConfig, period: u64, seed: u64) -> Self {
        RandomSampler {
            core: SamplerCore::new(interval, period),
            rng_state: seed ^ 0x5A17_AB1E,
        }
    }

    /// Number of events sampled so far (across all intervals).
    pub fn samples(&self) -> u64 {
        self.core.samples
    }
}

impl EventProfiler for RandomSampler {
    fn interval_config(&self) -> IntervalConfig {
        self.core.interval
    }

    fn observe(&mut self, tuple: Tuple) -> Option<IntervalProfile> {
        let roll = mix(&mut self.rng_state);
        if roll.is_multiple_of(self.core.period) {
            self.core.record(tuple);
        }
        self.core.tick()
    }

    fn finish_interval(&mut self) -> IntervalProfile {
        self.core.cut()
    }

    fn reset(&mut self) {
        self.core.reset();
    }

    fn events_in_current_interval(&self) -> u64 {
        self.core.events
    }

    fn interval_index(&self) -> u64 {
        self.core.interval_idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(len: u64, frac: f64) -> IntervalConfig {
        IntervalConfig::new(len, frac).unwrap()
    }

    #[test]
    fn periodic_sampling_aliases_with_periodic_data() {
        // The classic periodic-sampler flaw the stratified design fixes: a
        // period-10 sampler over period-2 data only ever sees odd indices,
        // crediting one tuple with everything.
        let mut s = PeriodicSampler::new(interval(100, 0.1), 10);
        let mut profile = None;
        for i in 0..100u64 {
            if let Some(p) = s.observe(Tuple::new(i % 2, 0)) {
                profile = Some(p);
            }
        }
        let profile = profile.unwrap();
        assert_eq!(
            profile.count_of(Tuple::new(1, 0)),
            Some(100),
            "all samples land here"
        );
        assert_eq!(profile.count_of(Tuple::new(0, 0)), None, "never sampled");
        assert_eq!(s.samples(), 10);
    }

    #[test]
    fn periodic_estimates_are_quantized_with_coprime_period() {
        // With a period co-prime to the data period, sampling is fair and
        // estimates quantize to samples x period.
        let mut s = PeriodicSampler::new(interval(140, 0.01), 7);
        let mut profile = None;
        for i in 0..140u64 {
            if let Some(p) = s.observe(Tuple::new(i % 2, 0)) {
                profile = Some(p);
            }
        }
        let profile = profile.unwrap();
        let a = profile.count_of(Tuple::new(0, 0)).unwrap_or(0);
        let b = profile.count_of(Tuple::new(1, 0)).unwrap_or(0);
        assert_eq!(a + b, 140, "20 samples x 7");
        assert_eq!(a % 7, 0);
        assert!((49..=91).contains(&a), "roughly fair split, got {a}");
    }

    #[test]
    fn periodic_misses_rare_tuples_entirely() {
        // A tuple occurring 9 times in a period-10 phase-aligned stream can
        // vanish: false negatives are the cost of sampling.
        let mut s = PeriodicSampler::new(interval(100, 0.05), 10);
        let mut profile = None;
        for i in 0..100u64 {
            // The rare tuple occupies positions 1..9 (never a multiple of 10).
            let t = if i % 10 == 0 {
                Tuple::new(1, 0)
            } else {
                Tuple::new(2, 0)
            };
            if let Some(p) = s.observe(t) {
                profile = Some(p);
            }
        }
        // Positions 9,19,... are sampled (the 10th event is index 9): all hit
        // tuple 2. Tuple 1 is never sampled even though it occurred 10 times.
        let profile = profile.unwrap();
        assert_eq!(profile.count_of(Tuple::new(1, 0)), None);
        assert_eq!(profile.count_of(Tuple::new(2, 0)), Some(100));
    }

    #[test]
    fn random_sampler_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut s = RandomSampler::new(interval(1_000, 0.01), 10, seed);
            let mut out = Vec::new();
            for i in 0..1_000u64 {
                if let Some(p) = s.observe(Tuple::new(i % 7, 0)) {
                    out.push(p);
                }
            }
            out
        };
        assert_eq!(run(1).len(), run(1).len());
        assert_eq!(run(1)[0].candidates(), run(1)[0].candidates());
    }

    #[test]
    fn random_sampler_rate_is_approximately_one_over_period() {
        let mut s = RandomSampler::new(interval(100_000, 0.01), 16, 3);
        for i in 0..100_000u64 {
            s.observe(Tuple::new(i % 3, 0));
        }
        let rate = s.samples() as f64 / 100_000.0;
        assert!((rate - 1.0 / 16.0).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn below_threshold_estimates_are_dropped() {
        // Period 7 is co-prime to the data period 4, so each tuple gets a
        // fair ~25% of the 14 samples -> estimates ~25 < threshold 50.
        let mut s = PeriodicSampler::new(interval(100, 0.5), 7); // threshold 50
        let mut profile = None;
        for i in 0..100u64 {
            if let Some(p) = s.observe(Tuple::new(i % 4, 0)) {
                profile = Some(p);
            }
        }
        assert!(profile.unwrap().is_empty());
    }

    #[test]
    fn reset_clears_sampler_state() {
        let mut s = RandomSampler::new(interval(100, 0.1), 4, 9);
        for i in 0..50u64 {
            s.observe(Tuple::new(i, 0));
        }
        s.reset();
        assert_eq!(s.samples(), 0);
        assert_eq!(s.events_in_current_interval(), 0);
        assert_eq!(s.interval_index(), 0);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        PeriodicSampler::new(interval(100, 0.1), 0);
    }
}
