//! # mhp-stratified — the Stratified Sampler baseline
//!
//! A reimplementation of the hardware/software hybrid profiler of Sastry,
//! Bodik and Smith (*"Rapid Profiling via Stratified Sampling"*, ISCA 2001),
//! as described in §4.2 of *"Catching Accurate Profiles in Hardware"* — the
//! prior art the Multi-Hash profiler is positioned against.
//!
//! The stratified sampler hashes each input tuple to a counter; when the
//! counter reaches a **sampling threshold** it resets and the event is
//! *reported to software*. Reports pass through an optional fully
//! associative **aggregation table**, then a **buffer**; when the buffer
//! fills, the OS is interrupted and software accumulates the samples. The
//! profile therefore lives in *software*, and every interrupt costs time —
//! the 5 % overhead the paper quotes.
//!
//! The implementation exposes:
//!
//! * [`StratifiedSampler`] — the full pipeline (plain or tagged counter
//!   table, aggregation table, buffer, interrupt accounting), adapted to the
//!   interval-based [`EventProfiler`](mhp_core::EventProfiler) interface so
//!   it can be error-measured against the same perfect profiler;
//! * [`OverheadStats`] — reports, buffer flushes and interrupts, the
//!   baseline's software-cost proxy.
//!
//! ## Example
//!
//! ```
//! use mhp_core::{EventProfiler, IntervalConfig, Tuple};
//! use mhp_stratified::{StratifiedConfig, StratifiedSampler};
//!
//! # fn main() -> Result<(), mhp_core::ConfigError> {
//! let config = StratifiedConfig::new(2048)?.with_sampling_threshold(16);
//! let mut sampler = StratifiedSampler::new(IntervalConfig::short(), config, 1)?;
//! for i in 0..10_000u64 {
//!     let t = if i % 4 == 0 { Tuple::new(0x400100, 9) } else { Tuple::new(i, i) };
//!     if let Some(profile) = sampler.observe(t) {
//!         assert!(profile.contains(Tuple::new(0x400100, 9)));
//!     }
//! }
//! assert!(sampler.overhead().interrupts > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod config;
mod conventional;
mod sampler;
mod software;

pub use config::{AggregationConfig, StratifiedConfig};
pub use conventional::{PeriodicSampler, RandomSampler};
pub use sampler::StratifiedSampler;
pub use software::{OverheadStats, SoftwareAccumulator};

/// Mixes a tuple into the 64-bit source the partial tag is cut from.
pub(crate) fn mix_tag(seed: u64, tuple: mhp_core::Tuple) -> u64 {
    let mut z = seed
        ^ tuple.pc().as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ tuple.value().as_u64().rotate_left(32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
