//! # mhp-faults — deterministic, seeded fault injection
//!
//! Validating a measurement system means deliberately stressing it, not just
//! benchmarking the happy path. This crate provides the *plan* half of that:
//! a [`FaultPlan`] names which faults to inject and when (counted in events,
//! requests or chunks at the injection site), and an armed [`FaultHook`] is
//! threaded into the pipeline's shard workers and the server's connection
//! loop, which consult it at well-defined points.
//!
//! Design constraints:
//!
//! * **Dependency-free** — pure `std`, so every crate in the workspace can
//!   use it without weight.
//! * **Deterministic** — a plan is constructed from a seed and explicit
//!   trigger points; the same plan against the same input stream injects
//!   the same faults (corruption even flips the same byte). No wall-clock,
//!   no global RNG.
//! * **Once-only** — each planned fault fires exactly once, so a retrying
//!   client can observe "fault, then recovery" rather than a livelock.
//! * **Disarmed ≈ free** — hosts hold an `Option<FaultHook>`; the hot path
//!   pays one `Option` check per *batch* (never per event), keeping the
//!   fault machinery compiled in but benchmark-neutral when unused.
//!
//! ```
//! use mhp_faults::{FaultKind, FaultPlan, WorkerAction};
//!
//! let plan = FaultPlan::parse("worker-panic@100", 42).unwrap();
//! let hook = plan.arm();
//! assert!(matches!(hook.on_worker_events(99), WorkerAction::Proceed));
//! assert!(matches!(hook.on_worker_events(1), WorkerAction::Panic));
//! // Once-only: the plan is spent.
//! assert!(matches!(hook.on_worker_events(1000), WorkerAction::Proceed));
//! assert_eq!(hook.injected_total(), 1);
//! assert_eq!(hook.injected(FaultKind::WorkerPanic), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long an injected stall ([`FaultKind::WorkerStall`] /
/// [`FaultKind::SlowConsumer`]) sleeps. Long enough to be observable, short
/// enough to keep chaos suites fast.
pub const STALL: Duration = Duration::from_millis(25);

/// The kinds of fault a [`FaultPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A shard worker panics (tests the engine's non-panicking dispatch and
    /// typed worker-death errors). Counted in worker events.
    WorkerPanic,
    /// A shard worker stalls for [`STALL`] (tests bounded-queue
    /// backpressure). Counted in worker events.
    WorkerStall,
    /// The server truncates a response frame mid-write and hangs up (tests
    /// the client's torn-frame handling). Counted in requests.
    TruncateFrame,
    /// An ingested chunk has one byte flipped before decoding (tests the
    /// trace format's CRC guard and the client's retry). Counted in chunks.
    CorruptChunk,
    /// The server drops the connection before responding (tests reconnect
    /// plus idempotent resume). Counted in requests.
    DropConnection,
    /// The server sleeps for [`STALL`] before serving an ingest request
    /// (tests client timeouts and overload shedding). Counted in chunks.
    SlowConsumer,
}

/// Every fault kind, for exhaustive chaos sweeps.
pub const ALL_FAULT_KINDS: [FaultKind; 6] = [
    FaultKind::WorkerPanic,
    FaultKind::WorkerStall,
    FaultKind::TruncateFrame,
    FaultKind::CorruptChunk,
    FaultKind::DropConnection,
    FaultKind::SlowConsumer,
];

impl FaultKind {
    /// The stable spec-string name of this kind (used by
    /// [`FaultPlan::parse`] and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::WorkerPanic => "worker-panic",
            FaultKind::WorkerStall => "worker-stall",
            FaultKind::TruncateFrame => "truncate-frame",
            FaultKind::CorruptChunk => "corrupt-chunk",
            FaultKind::DropConnection => "conn-drop",
            FaultKind::SlowConsumer => "slow-consumer",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FaultKind {
    type Err = PlanParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ALL_FAULT_KINDS
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| PlanParseError {
                message: format!("unknown fault kind {s:?}"),
            })
    }
}

/// A fault-plan spec string could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.message)
    }
}

impl std::error::Error for PlanParseError {}

/// One planned fault: inject `kind` when its site counter reaches `at`
/// (1-based: `at == 1` fires on the first event/request/chunk the site
/// sees).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// The site-counter value to fire at.
    pub at: u64,
}

/// A deterministic schedule of faults.
///
/// Parsed from a compact spec string — `"conn-drop@3,corrupt-chunk@2"` —
/// plus a seed that derives any randomness a fault needs (e.g. which byte
/// of a chunk to flip). Arm it once with [`arm`](FaultPlan::arm) and clone
/// the resulting [`FaultHook`] into every injection site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds one fault firing when its site counter reaches `at` (1-based).
    pub fn with_fault(mut self, kind: FaultKind, at: u64) -> Self {
        self.faults.push(FaultSpec { kind, at });
        self
    }

    /// Parses a comma-separated spec: `kind@count[,kind@count...]`, e.g.
    /// `"worker-panic@5000,conn-drop@3"`. An empty string is an empty plan.
    ///
    /// # Errors
    ///
    /// Returns [`PlanParseError`] for unknown kinds, malformed entries, or
    /// a zero trigger count.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, PlanParseError> {
        let mut plan = FaultPlan::new(seed);
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind, at) = entry.split_once('@').ok_or_else(|| PlanParseError {
                message: format!("expected kind@count, got {entry:?}"),
            })?;
            let kind: FaultKind = kind.trim().parse()?;
            let at: u64 = at.trim().parse().map_err(|_| PlanParseError {
                message: format!("bad trigger count in {entry:?}"),
            })?;
            if at == 0 {
                return Err(PlanParseError {
                    message: format!("trigger count must be >= 1 in {entry:?}"),
                });
            }
            plan.faults.push(FaultSpec { kind, at });
        }
        Ok(plan)
    }

    /// The planned faults, in plan order.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Arms the plan, producing the hook injection sites consult.
    pub fn arm(&self) -> FaultHook {
        FaultHook {
            inner: Arc::new(HookInner {
                seed: self.seed,
                faults: self
                    .faults
                    .iter()
                    .map(|&spec| ArmedFault {
                        spec,
                        fired: AtomicBool::new(false),
                    })
                    .collect(),
                worker_events: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                chunks: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            }),
        }
    }
}

/// What a shard worker should do with the batch it is about to process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerAction {
    /// No fault: process normally.
    Proceed,
    /// Panic (deliberately) before processing.
    Panic,
    /// Sleep for the given duration, then process normally.
    Stall(Duration),
}

/// What the server connection loop should do with the request it just read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnAction {
    /// No fault: serve normally.
    Proceed,
    /// Close the connection without responding.
    Drop,
    /// Write only a prefix of the response frame, then close.
    TruncateResponse,
}

/// What an armed hook did to an ingest chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestFault {
    /// One byte of the chunk was flipped.
    pub corrupted: bool,
    /// The consumer should sleep this long before decoding.
    pub stall: Option<Duration>,
}

#[derive(Debug)]
struct ArmedFault {
    spec: FaultSpec,
    fired: AtomicBool,
}

#[derive(Debug)]
struct HookInner {
    seed: u64,
    faults: Vec<ArmedFault>,
    worker_events: AtomicU64,
    requests: AtomicU64,
    chunks: AtomicU64,
    injected: AtomicU64,
}

impl HookInner {
    /// Fires the first unfired fault of `kind` whose trigger count has been
    /// reached (`at <= count`). Returns whether one fired. Firing at-or-after
    /// rather than exactly-at means a trigger inside a large batch still
    /// fires, and two faults sharing a trigger fire on consecutive
    /// consultations.
    fn fire_due(&self, kind: FaultKind, count: u64) -> bool {
        for fault in &self.faults {
            if fault.spec.kind == kind
                && fault.spec.at <= count
                && fault
                    .fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }
}

/// An armed [`FaultPlan`]: cheap to clone (an `Arc`), consulted by the
/// injection sites. All methods are thread-safe; counters are global across
/// clones so a plan means the same thing regardless of sharding.
#[derive(Debug, Clone)]
pub struct FaultHook {
    inner: Arc<HookInner>,
}

impl FaultHook {
    /// Called by a shard worker before processing a batch of `n` events.
    /// Advances the worker-event counter and reports the action to take.
    pub fn on_worker_events(&self, n: u64) -> WorkerAction {
        let count = self.inner.worker_events.fetch_add(n, Ordering::AcqRel) + n;
        if self.inner.fire_due(FaultKind::WorkerPanic, count) {
            WorkerAction::Panic
        } else if self.inner.fire_due(FaultKind::WorkerStall, count) {
            WorkerAction::Stall(STALL)
        } else {
            WorkerAction::Proceed
        }
    }

    /// Called by the server for every decoded request. Advances the request
    /// counter and reports the action to take.
    pub fn on_request(&self) -> ConnAction {
        let count = self.inner.requests.fetch_add(1, Ordering::AcqRel) + 1;
        if self.inner.fire_due(FaultKind::DropConnection, count) {
            ConnAction::Drop
        } else if self.inner.fire_due(FaultKind::TruncateFrame, count) {
            ConnAction::TruncateResponse
        } else {
            ConnAction::Proceed
        }
    }

    /// Called by the ingest path for every chunk, *before* decoding.
    /// Advances the chunk counter; may flip one deterministically-chosen
    /// byte in place and/or request a stall.
    pub fn on_ingest_chunk(&self, chunk: &mut [u8]) -> IngestFault {
        let count = self.inner.chunks.fetch_add(1, Ordering::AcqRel) + 1;
        let mut fault = IngestFault::default();
        if self.inner.fire_due(FaultKind::CorruptChunk, count) && !chunk.is_empty() {
            // Deterministic choice of victim byte from seed and position.
            let idx = splitmix64(self.inner.seed ^ count) as usize % chunk.len();
            chunk[idx] ^= 0x55;
            fault.corrupted = true;
        }
        if self.inner.fire_due(FaultKind::SlowConsumer, count) {
            fault.stall = Some(STALL);
        }
        fault
    }

    /// Total faults injected so far.
    pub fn injected_total(&self) -> u64 {
        self.inner.injected.load(Ordering::Relaxed)
    }

    /// Number of faults of `kind` injected so far.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.inner
            .faults
            .iter()
            .filter(|f| f.spec.kind == kind && f.fired.load(Ordering::Acquire))
            .count() as u64
    }

    /// Whether any planned fault has not fired yet.
    pub fn pending(&self) -> bool {
        self.inner
            .faults
            .iter()
            .any(|f| !f.fired.load(Ordering::Acquire))
    }
}

/// SplitMix64 finalizer — the same mixing the engine's `shard_of` uses, kept
/// local so this crate stays dependency-free.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_kind() {
        for kind in ALL_FAULT_KINDS {
            let plan = FaultPlan::parse(&format!("{}@7", kind.name()), 1).unwrap();
            assert_eq!(plan.faults(), &[FaultSpec { kind, at: 7 }]);
            assert_eq!(kind.name().parse::<FaultKind>().unwrap(), kind);
        }
    }

    #[test]
    fn parse_accepts_lists_and_whitespace() {
        let plan = FaultPlan::parse(" conn-drop@3 , corrupt-chunk@2 ", 9).unwrap();
        assert_eq!(plan.faults().len(), 2);
        assert_eq!(plan.seed(), 9);
        assert_eq!(FaultPlan::parse("", 9).unwrap(), FaultPlan::new(9));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["nope@1", "worker-panic", "worker-panic@x", "worker-panic@0"] {
            let err = FaultPlan::parse(bad, 0).unwrap_err();
            let msg = err.to_string();
            assert!(msg.starts_with("invalid fault plan"), "{msg}");
        }
    }

    #[test]
    fn worker_faults_fire_once_inside_their_window() {
        let hook = FaultPlan::new(0)
            .with_fault(FaultKind::WorkerPanic, 150)
            .with_fault(FaultKind::WorkerStall, 150)
            .arm();
        // Batch of 100 ends at 100: nothing yet.
        assert_eq!(hook.on_worker_events(100), WorkerAction::Proceed);
        // Batch crossing 150 fires the panic (first in plan order).
        assert_eq!(hook.on_worker_events(100), WorkerAction::Panic);
        // Stall with the same trigger fires on the next consultation.
        assert_eq!(hook.on_worker_events(1), WorkerAction::Stall(STALL));
        assert_eq!(hook.on_worker_events(10_000), WorkerAction::Proceed);
        assert_eq!(hook.injected_total(), 2);
        assert!(!hook.pending());
    }

    #[test]
    fn request_faults_fire_at_exact_request_numbers() {
        let hook = FaultPlan::new(0)
            .with_fault(FaultKind::DropConnection, 2)
            .with_fault(FaultKind::TruncateFrame, 4)
            .arm();
        assert_eq!(hook.on_request(), ConnAction::Proceed);
        assert_eq!(hook.on_request(), ConnAction::Drop);
        assert_eq!(hook.on_request(), ConnAction::Proceed);
        assert_eq!(hook.on_request(), ConnAction::TruncateResponse);
        assert_eq!(hook.on_request(), ConnAction::Proceed);
    }

    #[test]
    fn chunk_corruption_is_deterministic_and_once_only() {
        let run = || {
            let hook = FaultPlan::new(77)
                .with_fault(FaultKind::CorruptChunk, 2)
                .arm();
            let mut chunks = vec![vec![0u8; 32], vec![0u8; 32], vec![0u8; 32]];
            let faults: Vec<IngestFault> =
                chunks.iter_mut().map(|c| hook.on_ingest_chunk(c)).collect();
            (chunks, faults)
        };
        let (chunks_a, faults_a) = run();
        let (chunks_b, faults_b) = run();
        assert_eq!(chunks_a, chunks_b, "same plan, same corruption");
        assert_eq!(faults_a, faults_b);
        assert!(!faults_a[0].corrupted);
        assert!(faults_a[1].corrupted);
        assert!(!faults_a[2].corrupted);
        assert_eq!(chunks_a[1].iter().filter(|&&b| b != 0).count(), 1);
        assert!(chunks_a[0].iter().all(|&b| b == 0));
    }

    #[test]
    fn slow_consumer_requests_a_stall() {
        let hook = FaultPlan::new(0)
            .with_fault(FaultKind::SlowConsumer, 1)
            .arm();
        let fault = hook.on_ingest_chunk(&mut [1, 2, 3]);
        assert_eq!(fault.stall, Some(STALL));
        assert!(!fault.corrupted);
    }

    #[test]
    fn clones_share_state() {
        let hook = FaultPlan::new(0)
            .with_fault(FaultKind::DropConnection, 1)
            .arm();
        let clone = hook.clone();
        assert_eq!(clone.on_request(), ConnAction::Drop);
        assert_eq!(hook.on_request(), ConnAction::Proceed);
        assert_eq!(hook.injected_total(), 1);
        assert_eq!(hook.injected(FaultKind::DropConnection), 1);
    }

    #[test]
    fn display_and_error_messages_are_lowercase() {
        for kind in ALL_FAULT_KINDS {
            assert!(kind.to_string().chars().next().unwrap().is_lowercase());
        }
        let err = FaultPlan::parse("x@1", 0).unwrap_err().to_string();
        assert!(err.chars().next().unwrap().is_lowercase());
        assert!(!err.ends_with('.'));
    }
}
