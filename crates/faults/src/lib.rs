//! # mhp-faults — deterministic, seeded fault injection
//!
//! Validating a measurement system means deliberately stressing it, not just
//! benchmarking the happy path. This crate provides the *plan* half of that:
//! a [`FaultPlan`] names which faults to inject and when (counted in events,
//! requests or chunks at the injection site), and an armed [`FaultHook`] is
//! threaded into the pipeline's shard workers and the server's connection
//! loop, which consult it at well-defined points.
//!
//! Design constraints:
//!
//! * **Dependency-free** — pure `std`, so every crate in the workspace can
//!   use it without weight.
//! * **Deterministic** — a plan is constructed from a seed and explicit
//!   trigger points; the same plan against the same input stream injects
//!   the same faults (corruption even flips the same byte). No wall-clock,
//!   no global RNG.
//! * **Once-only** — each planned fault fires exactly once, so a retrying
//!   client can observe "fault, then recovery" rather than a livelock.
//! * **Disarmed ≈ free** — hosts hold an `Option<FaultHook>`; the hot path
//!   pays one `Option` check per *batch* (never per event), keeping the
//!   fault machinery compiled in but benchmark-neutral when unused.
//!
//! ```
//! use mhp_faults::{FaultKind, FaultPlan, WorkerAction};
//!
//! let plan = FaultPlan::parse("worker-panic@100", 42).unwrap();
//! let hook = plan.arm();
//! assert!(matches!(hook.on_worker_events(99), WorkerAction::Proceed));
//! assert!(matches!(hook.on_worker_events(1), WorkerAction::Panic));
//! // Once-only: the plan is spent.
//! assert!(matches!(hook.on_worker_events(1000), WorkerAction::Proceed));
//! assert_eq!(hook.injected_total(), 1);
//! assert_eq!(hook.injected(FaultKind::WorkerPanic), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long an injected stall ([`FaultKind::WorkerStall`] /
/// [`FaultKind::SlowConsumer`]) sleeps. Long enough to be observable, short
/// enough to keep chaos suites fast.
pub const STALL: Duration = Duration::from_millis(25);

/// How long an injected [`FaultKind::UpstreamStall`] wedges a pull attempt.
/// Deliberately longer than [`STALL`]: it must overshoot an aggregator's
/// per-operation read deadline so the supervisor observes a timeout, not a
/// slow success.
pub const UPSTREAM_STALL: Duration = Duration::from_millis(120);

/// How long an injected [`FaultKind::SlowRead`] delays one in-pull
/// operation. Short enough that a single hit only drags a pull, long enough
/// that repeated hits exhaust a whole-pull budget.
pub const SLOW_READ: Duration = Duration::from_millis(15);

/// The kinds of fault a [`FaultPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A shard worker panics (tests the engine's non-panicking dispatch and
    /// typed worker-death errors). Counted in worker events.
    WorkerPanic,
    /// A shard worker stalls for [`STALL`] (tests bounded-queue
    /// backpressure). Counted in worker events.
    WorkerStall,
    /// The server truncates a response frame mid-write and hangs up (tests
    /// the client's torn-frame handling). Counted in requests.
    TruncateFrame,
    /// An ingested chunk has one byte flipped before decoding (tests the
    /// trace format's CRC guard and the client's retry). Counted in chunks.
    CorruptChunk,
    /// The server drops the connection before responding (tests reconnect
    /// plus idempotent resume). Counted in requests.
    DropConnection,
    /// The server sleeps for [`STALL`] before serving an ingest request
    /// (tests client timeouts and overload shedding). Counted in chunks.
    SlowConsumer,
    /// A pull attempt wedges for [`UPSTREAM_STALL`] — emulating an upstream
    /// that accepts but never answers — then fails with a timeout (tests
    /// supervisor deadlines and circuit breakers). Counted in pulls.
    UpstreamStall,
    /// One in-pull operation (a session listing or snapshot read) is delayed
    /// by [`SLOW_READ`] — emulating a dribbling upstream (tests whole-pull
    /// budgets and partial-harvest commit). Counted in pull operations.
    SlowRead,
}

/// Every fault kind, for exhaustive chaos sweeps.
pub const ALL_FAULT_KINDS: [FaultKind; 8] = [
    FaultKind::WorkerPanic,
    FaultKind::WorkerStall,
    FaultKind::TruncateFrame,
    FaultKind::CorruptChunk,
    FaultKind::DropConnection,
    FaultKind::SlowConsumer,
    FaultKind::UpstreamStall,
    FaultKind::SlowRead,
];

impl FaultKind {
    /// The stable spec-string name of this kind (used by
    /// [`FaultPlan::parse`] and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::WorkerPanic => "worker-panic",
            FaultKind::WorkerStall => "worker-stall",
            FaultKind::TruncateFrame => "truncate-frame",
            FaultKind::CorruptChunk => "corrupt-chunk",
            FaultKind::DropConnection => "conn-drop",
            FaultKind::SlowConsumer => "slow-consumer",
            FaultKind::UpstreamStall => "upstream-stall",
            FaultKind::SlowRead => "slow-read",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FaultKind {
    type Err = PlanParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ALL_FAULT_KINDS
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| PlanParseError {
                message: format!("unknown fault kind {s:?}"),
            })
    }
}

/// A fault-plan spec string could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.message)
    }
}

impl std::error::Error for PlanParseError {}

/// When a planned fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire exactly once, when the site counter reaches this value
    /// (1-based: `At(1)` fires on the first event/request/chunk the site
    /// sees).
    At(u64),
    /// Fire *recurringly* on this percentage of consultations (1..=100),
    /// decided by a deterministic hash of the seed and the site counter —
    /// the same plan against the same stream fires on the same
    /// consultations. Models a flapping component rather than a one-off
    /// incident.
    Rate(u8),
}

/// One planned fault: inject `kind` when its [`Trigger`] says so.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// When to inject it.
    pub trigger: Trigger,
}

/// A deterministic schedule of faults.
///
/// Parsed from a compact spec string — `"conn-drop@3,corrupt-chunk@2"` —
/// plus a seed that derives any randomness a fault needs (e.g. which byte
/// of a chunk to flip). Arm it once with [`arm`](FaultPlan::arm) and clone
/// the resulting [`FaultHook`] into every injection site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds one fault firing once when its site counter reaches `at`
    /// (1-based).
    pub fn with_fault(mut self, kind: FaultKind, at: u64) -> Self {
        self.faults.push(FaultSpec {
            kind,
            trigger: Trigger::At(at),
        });
        self
    }

    /// Adds one fault firing recurringly on `percent` (1..=100) of the
    /// consultations at its site.
    pub fn with_fault_rate(mut self, kind: FaultKind, percent: u8) -> Self {
        self.faults.push(FaultSpec {
            kind,
            trigger: Trigger::Rate(percent),
        });
        self
    }

    /// Parses a comma-separated spec where each entry is either
    /// `kind@count` (fire once at that 1-based site count) or
    /// `kind%percent` (fire recurringly on that percentage of
    /// consultations), e.g. `"worker-panic@5000,conn-drop%50"`. An empty
    /// string is an empty plan.
    ///
    /// # Errors
    ///
    /// Returns [`PlanParseError`] for unknown kinds, malformed entries, a
    /// zero trigger count, or a rate outside 1..=100.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, PlanParseError> {
        let mut plan = FaultPlan::new(seed);
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            if let Some((kind, at)) = entry.split_once('@') {
                let kind: FaultKind = kind.trim().parse()?;
                let at: u64 = at.trim().parse().map_err(|_| PlanParseError {
                    message: format!("bad trigger count in {entry:?}"),
                })?;
                if at == 0 {
                    return Err(PlanParseError {
                        message: format!("trigger count must be >= 1 in {entry:?}"),
                    });
                }
                plan.faults.push(FaultSpec {
                    kind,
                    trigger: Trigger::At(at),
                });
            } else if let Some((kind, pct)) = entry.split_once('%') {
                let kind: FaultKind = kind.trim().parse()?;
                let pct: u8 = pct.trim().parse().map_err(|_| PlanParseError {
                    message: format!("bad trigger rate in {entry:?}"),
                })?;
                if pct == 0 || pct > 100 {
                    return Err(PlanParseError {
                        message: format!("trigger rate must be 1..=100 in {entry:?}"),
                    });
                }
                plan.faults.push(FaultSpec {
                    kind,
                    trigger: Trigger::Rate(pct),
                });
            } else {
                return Err(PlanParseError {
                    message: format!("expected kind@count or kind%rate, got {entry:?}"),
                });
            }
        }
        Ok(plan)
    }

    /// The planned faults, in plan order.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Arms the plan, producing the hook injection sites consult.
    pub fn arm(&self) -> FaultHook {
        FaultHook {
            inner: Arc::new(HookInner {
                seed: self.seed,
                faults: self
                    .faults
                    .iter()
                    .map(|&spec| ArmedFault {
                        spec,
                        fired: AtomicBool::new(false),
                        hits: AtomicU64::new(0),
                    })
                    .collect(),
                worker_events: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                chunks: AtomicU64::new(0),
                pulls: AtomicU64::new(0),
                pull_ops: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            }),
        }
    }
}

/// What a shard worker should do with the batch it is about to process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerAction {
    /// No fault: process normally.
    Proceed,
    /// Panic (deliberately) before processing.
    Panic,
    /// Sleep for the given duration, then process normally.
    Stall(Duration),
}

/// What the server connection loop should do with the request it just read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnAction {
    /// No fault: serve normally.
    Proceed,
    /// Close the connection without responding.
    Drop,
    /// Write only a prefix of the response frame, then close.
    TruncateResponse,
}

/// What an aggregator's pull supervisor should do with the pull attempt it
/// is about to start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PullAction {
    /// No fault: pull normally.
    Proceed,
    /// Fail the attempt without touching the network (emulates a refused or
    /// dropped connection).
    Drop,
    /// Wedge for the given duration, then fail the attempt with a timeout
    /// (emulates an upstream that accepts but never answers).
    Stall(Duration),
}

/// What an armed hook did to an ingest chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestFault {
    /// One byte of the chunk was flipped.
    pub corrupted: bool,
    /// The consumer should sleep this long before decoding.
    pub stall: Option<Duration>,
}

#[derive(Debug)]
struct ArmedFault {
    spec: FaultSpec,
    /// Once-only latch for [`Trigger::At`] faults; unused for rates.
    fired: AtomicBool,
    /// How many times this fault has fired (1 max for `At`, unbounded for
    /// `Rate`).
    hits: AtomicU64,
}

#[derive(Debug)]
struct HookInner {
    seed: u64,
    faults: Vec<ArmedFault>,
    worker_events: AtomicU64,
    requests: AtomicU64,
    chunks: AtomicU64,
    pulls: AtomicU64,
    pull_ops: AtomicU64,
    injected: AtomicU64,
}

impl HookInner {
    /// Fires the first due fault of `kind` at this site-counter value.
    /// Returns whether one fired.
    ///
    /// `At` faults fire once when `at <= count` — at-or-after rather than
    /// exactly-at, so a trigger inside a large batch still fires, and two
    /// faults sharing a trigger fire on consecutive consultations. `Rate`
    /// faults fire on a deterministic hash of (seed, counter, plan slot):
    /// the same plan against the same stream always fires on the same
    /// consultations, and distinct rate faults draw independent hashes.
    fn fire_due(&self, kind: FaultKind, count: u64) -> bool {
        for (slot, fault) in self.faults.iter().enumerate() {
            if fault.spec.kind != kind {
                continue;
            }
            let due = match fault.spec.trigger {
                Trigger::At(at) => {
                    at <= count
                        && fault
                            .fired
                            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                }
                Trigger::Rate(pct) => {
                    let draw = splitmix64(self.seed ^ count ^ ((slot as u64) << 48)) % 100;
                    draw < u64::from(pct)
                }
            };
            if due {
                fault.hits.fetch_add(1, Ordering::Relaxed);
                self.injected.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }
}

/// An armed [`FaultPlan`]: cheap to clone (an `Arc`), consulted by the
/// injection sites. All methods are thread-safe; counters are global across
/// clones so a plan means the same thing regardless of sharding.
#[derive(Debug, Clone)]
pub struct FaultHook {
    inner: Arc<HookInner>,
}

impl FaultHook {
    /// Called by a shard worker before processing a batch of `n` events.
    /// Advances the worker-event counter and reports the action to take.
    pub fn on_worker_events(&self, n: u64) -> WorkerAction {
        let count = self.inner.worker_events.fetch_add(n, Ordering::AcqRel) + n;
        if self.inner.fire_due(FaultKind::WorkerPanic, count) {
            WorkerAction::Panic
        } else if self.inner.fire_due(FaultKind::WorkerStall, count) {
            WorkerAction::Stall(STALL)
        } else {
            WorkerAction::Proceed
        }
    }

    /// Called by the server for every decoded request. Advances the request
    /// counter and reports the action to take.
    pub fn on_request(&self) -> ConnAction {
        let count = self.inner.requests.fetch_add(1, Ordering::AcqRel) + 1;
        if self.inner.fire_due(FaultKind::DropConnection, count) {
            ConnAction::Drop
        } else if self.inner.fire_due(FaultKind::TruncateFrame, count) {
            ConnAction::TruncateResponse
        } else {
            ConnAction::Proceed
        }
    }

    /// Called by the ingest path for every chunk, *before* decoding.
    /// Advances the chunk counter; may flip one deterministically-chosen
    /// byte in place and/or request a stall.
    pub fn on_ingest_chunk(&self, chunk: &mut [u8]) -> IngestFault {
        let count = self.inner.chunks.fetch_add(1, Ordering::AcqRel) + 1;
        let mut fault = IngestFault::default();
        if self.inner.fire_due(FaultKind::CorruptChunk, count) && !chunk.is_empty() {
            // Deterministic choice of victim byte from seed and position.
            let idx = splitmix64(self.inner.seed ^ count) as usize % chunk.len();
            chunk[idx] ^= 0x55;
            fault.corrupted = true;
        }
        if self.inner.fire_due(FaultKind::SlowConsumer, count) {
            fault.stall = Some(STALL);
        }
        fault
    }

    /// Called by an aggregator's pull supervisor once per pull attempt,
    /// *before* connecting. Advances the pull counter and reports the
    /// action to take.
    pub fn on_pull(&self) -> PullAction {
        let count = self.inner.pulls.fetch_add(1, Ordering::AcqRel) + 1;
        if self.inner.fire_due(FaultKind::DropConnection, count) {
            PullAction::Drop
        } else if self.inner.fire_due(FaultKind::UpstreamStall, count) {
            PullAction::Stall(UPSTREAM_STALL)
        } else {
            PullAction::Proceed
        }
    }

    /// Called by the pull path before each in-pull operation (session
    /// listing, per-session snapshot). Advances the pull-operation counter;
    /// returns a delay to apply before the operation, if any.
    pub fn on_pull_op(&self) -> Option<Duration> {
        let count = self.inner.pull_ops.fetch_add(1, Ordering::AcqRel) + 1;
        self.inner
            .fire_due(FaultKind::SlowRead, count)
            .then_some(SLOW_READ)
    }

    /// Total faults injected so far.
    pub fn injected_total(&self) -> u64 {
        self.inner.injected.load(Ordering::Relaxed)
    }

    /// Number of faults of `kind` injected so far (rate faults count every
    /// firing).
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.inner
            .faults
            .iter()
            .filter(|f| f.spec.kind == kind)
            .map(|f| f.hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Whether any planned once-only fault has not fired yet. Rate faults
    /// are never pending: they have no completion point.
    pub fn pending(&self) -> bool {
        self.inner
            .faults
            .iter()
            .any(|f| matches!(f.spec.trigger, Trigger::At(_)) && !f.fired.load(Ordering::Acquire))
    }
}

/// SplitMix64 finalizer — the same mixing the engine's `shard_of` uses, kept
/// local so this crate stays dependency-free.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_kind() {
        for kind in ALL_FAULT_KINDS {
            let plan = FaultPlan::parse(&format!("{}@7", kind.name()), 1).unwrap();
            assert_eq!(
                plan.faults(),
                &[FaultSpec {
                    kind,
                    trigger: Trigger::At(7)
                }]
            );
            let plan = FaultPlan::parse(&format!("{}%40", kind.name()), 1).unwrap();
            assert_eq!(
                plan.faults(),
                &[FaultSpec {
                    kind,
                    trigger: Trigger::Rate(40)
                }]
            );
            assert_eq!(kind.name().parse::<FaultKind>().unwrap(), kind);
        }
    }

    #[test]
    fn parse_accepts_lists_and_whitespace() {
        let plan = FaultPlan::parse(" conn-drop@3 , corrupt-chunk@2 ", 9).unwrap();
        assert_eq!(plan.faults().len(), 2);
        assert_eq!(plan.seed(), 9);
        assert_eq!(FaultPlan::parse("", 9).unwrap(), FaultPlan::new(9));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "nope@1",
            "worker-panic",
            "worker-panic@x",
            "worker-panic@0",
            "conn-drop%0",
            "conn-drop%101",
            "conn-drop%x",
            "nope%50",
        ] {
            let err = FaultPlan::parse(bad, 0).unwrap_err();
            let msg = err.to_string();
            assert!(msg.starts_with("invalid fault plan"), "{msg}");
        }
    }

    #[test]
    fn rate_faults_fire_recurringly_and_deterministically() {
        let run = || {
            let hook = FaultPlan::parse("conn-drop%50", 1234).unwrap().arm();
            (0..200).map(|_| hook.on_request()).collect::<Vec<_>>()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same seed, same firing pattern");
        let drops = a.iter().filter(|&&r| r == ConnAction::Drop).count();
        // ~50% of 200 with a deterministic hash: loose bounds, no flake.
        assert!((60..=140).contains(&drops), "drops = {drops}");

        let hook = FaultPlan::parse("conn-drop%50", 1234).unwrap().arm();
        for _ in 0..200 {
            hook.on_request();
        }
        assert_eq!(hook.injected(FaultKind::DropConnection), drops as u64);
        assert!(!hook.pending(), "rate faults are never pending");
    }

    #[test]
    fn rate_one_hundred_fires_every_time() {
        let hook = FaultPlan::new(0)
            .with_fault_rate(FaultKind::DropConnection, 100)
            .arm();
        for _ in 0..10 {
            assert_eq!(hook.on_request(), ConnAction::Drop);
        }
    }

    #[test]
    fn pull_faults_drop_and_stall() {
        let hook = FaultPlan::new(0)
            .with_fault(FaultKind::DropConnection, 1)
            .with_fault(FaultKind::UpstreamStall, 2)
            .arm();
        assert_eq!(hook.on_pull(), PullAction::Drop);
        assert_eq!(hook.on_pull(), PullAction::Stall(UPSTREAM_STALL));
        assert_eq!(hook.on_pull(), PullAction::Proceed);
        assert_eq!(hook.injected_total(), 2);
    }

    #[test]
    fn slow_read_delays_pull_operations() {
        let hook = FaultPlan::new(0).with_fault(FaultKind::SlowRead, 2).arm();
        assert_eq!(hook.on_pull_op(), None);
        assert_eq!(hook.on_pull_op(), Some(SLOW_READ));
        assert_eq!(hook.on_pull_op(), None);
        assert_eq!(hook.injected(FaultKind::SlowRead), 1);
    }

    #[test]
    fn pull_and_request_counters_are_independent() {
        // A conn-drop planned at request 1 must not be stolen by the pull
        // site's counter or vice versa — but both sites *check* the same
        // kind, so the first consultation anywhere fires it. Plan two.
        let hook = FaultPlan::new(0)
            .with_fault(FaultKind::UpstreamStall, 1)
            .arm();
        assert_eq!(hook.on_request(), ConnAction::Proceed, "wrong site");
        assert_eq!(hook.on_pull(), PullAction::Stall(UPSTREAM_STALL));
    }

    #[test]
    fn worker_faults_fire_once_inside_their_window() {
        let hook = FaultPlan::new(0)
            .with_fault(FaultKind::WorkerPanic, 150)
            .with_fault(FaultKind::WorkerStall, 150)
            .arm();
        // Batch of 100 ends at 100: nothing yet.
        assert_eq!(hook.on_worker_events(100), WorkerAction::Proceed);
        // Batch crossing 150 fires the panic (first in plan order).
        assert_eq!(hook.on_worker_events(100), WorkerAction::Panic);
        // Stall with the same trigger fires on the next consultation.
        assert_eq!(hook.on_worker_events(1), WorkerAction::Stall(STALL));
        assert_eq!(hook.on_worker_events(10_000), WorkerAction::Proceed);
        assert_eq!(hook.injected_total(), 2);
        assert!(!hook.pending());
    }

    #[test]
    fn request_faults_fire_at_exact_request_numbers() {
        let hook = FaultPlan::new(0)
            .with_fault(FaultKind::DropConnection, 2)
            .with_fault(FaultKind::TruncateFrame, 4)
            .arm();
        assert_eq!(hook.on_request(), ConnAction::Proceed);
        assert_eq!(hook.on_request(), ConnAction::Drop);
        assert_eq!(hook.on_request(), ConnAction::Proceed);
        assert_eq!(hook.on_request(), ConnAction::TruncateResponse);
        assert_eq!(hook.on_request(), ConnAction::Proceed);
    }

    #[test]
    fn chunk_corruption_is_deterministic_and_once_only() {
        let run = || {
            let hook = FaultPlan::new(77)
                .with_fault(FaultKind::CorruptChunk, 2)
                .arm();
            let mut chunks = vec![vec![0u8; 32], vec![0u8; 32], vec![0u8; 32]];
            let faults: Vec<IngestFault> =
                chunks.iter_mut().map(|c| hook.on_ingest_chunk(c)).collect();
            (chunks, faults)
        };
        let (chunks_a, faults_a) = run();
        let (chunks_b, faults_b) = run();
        assert_eq!(chunks_a, chunks_b, "same plan, same corruption");
        assert_eq!(faults_a, faults_b);
        assert!(!faults_a[0].corrupted);
        assert!(faults_a[1].corrupted);
        assert!(!faults_a[2].corrupted);
        assert_eq!(chunks_a[1].iter().filter(|&&b| b != 0).count(), 1);
        assert!(chunks_a[0].iter().all(|&b| b == 0));
    }

    #[test]
    fn slow_consumer_requests_a_stall() {
        let hook = FaultPlan::new(0)
            .with_fault(FaultKind::SlowConsumer, 1)
            .arm();
        let fault = hook.on_ingest_chunk(&mut [1, 2, 3]);
        assert_eq!(fault.stall, Some(STALL));
        assert!(!fault.corrupted);
    }

    #[test]
    fn clones_share_state() {
        let hook = FaultPlan::new(0)
            .with_fault(FaultKind::DropConnection, 1)
            .arm();
        let clone = hook.clone();
        assert_eq!(clone.on_request(), ConnAction::Drop);
        assert_eq!(hook.on_request(), ConnAction::Proceed);
        assert_eq!(hook.injected_total(), 1);
        assert_eq!(hook.injected(FaultKind::DropConnection), 1);
    }

    #[test]
    fn display_and_error_messages_are_lowercase() {
        for kind in ALL_FAULT_KINDS {
            assert!(kind.to_string().chars().next().unwrap().is_lowercase());
        }
        let err = FaultPlan::parse("x@1", 0).unwrap_err().to_string();
        assert!(err.chars().next().unwrap().is_lowercase());
        assert!(!err.ends_with('.'));
    }
}
