//! Error types for the profiling service: a wire-level failure class
//! ([`ErrorCode`]) plus the richer process-local [`ServerError`].

use std::fmt;
use std::io;

/// Machine-readable failure class carried in an error response. Stable on
/// the wire; clients switch on this, not on message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The request was malformed or invalid for the connection's state
    /// (e.g. ingest without an attached session).
    BadRequest,
    /// The server is at its connection limit.
    Busy,
    /// No session with the requested name exists.
    UnknownSession,
    /// A session with the requested name already exists.
    SessionExists,
    /// The ingest payload failed to decode or the engine rejected it.
    Ingest,
    /// The server is shutting down and takes no new work.
    ShuttingDown,
    /// An internal failure (an engine bug surfaced to the client).
    Internal,
    /// The server is over its load watermark and shed this request; the
    /// client should back off and retry.
    Overloaded,
    /// The request would exceed the tenant's admission quota (session
    /// count, or ingest bytes/s). Session-count rejections are permanent
    /// until the tenant closes a session; bytes/s rejections clear as the
    /// token bucket refills, so clients treat this as retryable.
    QuotaExceeded,
}

impl ErrorCode {
    /// Wire encoding of the code.
    pub fn as_u8(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::Busy => 2,
            ErrorCode::UnknownSession => 3,
            ErrorCode::SessionExists => 4,
            ErrorCode::Ingest => 5,
            ErrorCode::ShuttingDown => 6,
            ErrorCode::Internal => 7,
            ErrorCode::Overloaded => 8,
            ErrorCode::QuotaExceeded => 9,
        }
    }

    /// Decodes a wire code byte; unknown bytes map to
    /// [`ErrorCode::Internal`] so old clients survive new codes.
    pub fn from_u8(value: u8) -> Self {
        match value {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::Busy,
            3 => ErrorCode::UnknownSession,
            4 => ErrorCode::SessionExists,
            5 => ErrorCode::Ingest,
            6 => ErrorCode::ShuttingDown,
            8 => ErrorCode::Overloaded,
            9 => ErrorCode::QuotaExceeded,
            _ => ErrorCode::Internal,
        }
    }

    /// A short lowercase name for logs and stats.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Busy => "busy",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::SessionExists => "session-exists",
            ErrorCode::Ingest => "ingest",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::QuotaExceeded => "quota-exceeded",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Any failure inside the server or client library.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// An underlying socket/file failure.
    Io(io::Error),
    /// The peer violated the wire protocol.
    Protocol(String),
    /// The peer answered with an error response.
    Remote {
        /// The failure class the peer reported.
        code: ErrorCode,
        /// The peer's message.
        message: String,
    },
    /// A pipeline failure (chunk decode, engine, merge).
    Pipeline(mhp_pipeline::Error),
}

impl ServerError {
    /// A protocol violation with a static description.
    pub fn protocol(message: &'static str) -> Self {
        ServerError::Protocol(message.to_string())
    }

    /// A protocol violation with a formatted description.
    pub fn protocol_owned(message: String) -> Self {
        ServerError::Protocol(message)
    }

    /// The message to put on the wire when reporting this failure to a
    /// peer. For [`ServerError::Remote`] this is the bare message — the
    /// receiving client re-wraps it, so including the Display prefix
    /// here would double it.
    pub fn wire_message(&self) -> String {
        match self {
            ServerError::Remote { message, .. } => message.clone(),
            other => other.to_string(),
        }
    }

    /// The wire error-class this failure maps to when reported to a peer.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServerError::Io(_) => ErrorCode::Internal,
            ServerError::Protocol(_) => ErrorCode::BadRequest,
            ServerError::Remote { code, .. } => *code,
            ServerError::Pipeline(mhp_pipeline::Error::Merge(_)) => ErrorCode::Internal,
            ServerError::Pipeline(_) => ErrorCode::Ingest,
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "i/o failed: {e}"),
            ServerError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServerError::Remote { code, message } => {
                write!(f, "server rejected the request ({code}): {message}")
            }
            ServerError::Pipeline(e) => write!(f, "pipeline error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<mhp_pipeline::Error> for ServerError {
    fn from(e: mhp_pipeline::Error) -> Self {
        ServerError::Pipeline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_on_the_wire() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::Busy,
            ErrorCode::UnknownSession,
            ErrorCode::SessionExists,
            ErrorCode::Ingest,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
            ErrorCode::Overloaded,
            ErrorCode::QuotaExceeded,
        ] {
            assert_eq!(ErrorCode::from_u8(code.as_u8()), code);
        }
        assert_eq!(ErrorCode::from_u8(250), ErrorCode::Internal);
    }

    #[test]
    fn pipeline_errors_classify_by_kind() {
        let ingest = ServerError::from(mhp_pipeline::Error::ChunkDecode { chunk: 0 });
        assert_eq!(ingest.code(), ErrorCode::Ingest);
        let internal = ServerError::from(mhp_pipeline::Error::Merge(mhp_core::MergeError::Empty));
        assert_eq!(internal.code(), ErrorCode::Internal);
    }

    #[test]
    fn messages_are_lowercase_and_nonempty() {
        let errors = [
            ServerError::Io(io::Error::other("x")),
            ServerError::protocol("bad frame"),
            ServerError::Remote {
                code: ErrorCode::Busy,
                message: "at capacity".into(),
            },
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.chars().next().unwrap().is_uppercase(), "{msg}");
        }
    }
}
