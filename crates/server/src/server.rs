//! The profiling service itself: a TCP listener, a fixed thread pool of
//! connection handlers, and a registry of named sessions, each wrapping a
//! live [`EngineSession`].
//!
//! ## Session lifecycle
//!
//! Sessions are *server-resident* and named: `open` creates one and
//! attaches the connection; any other connection may `attach` to it by
//! name (e.g. a dashboard issuing `topk` while a recorder streams chunks).
//! A session outlives the connections using it and dies only on
//! `close-session` or server shutdown, when remaining sessions are drained
//! (their shard workers joined) before the process exits.
//!
//! ## Robustness
//!
//! * Connections past `max_connections` receive a `busy` error response
//!   and are closed immediately — a graceful rejection, not a hang.
//! * Reads carry a timeout so a silent peer cannot pin a pool thread
//!   forever; each timeout re-checks the shutdown flag.
//! * A protocol violation gets a best-effort error response, then the
//!   connection is dropped (counted in `protocol_errors`).

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mhp_core::{IntervalConfig, IntrospectionSink, Tuple};
use mhp_pipeline::{
    decode_chunk_into, EngineConfig, EngineSession, EngineTelemetry, RegistrySink, ShardedEngine,
};

use crate::error::{ErrorCode, ServerError};
use crate::metrics::Metrics;
use crate::protocol::{
    read_frame, write_frame, ProfileData, Request, Response, SessionConfig, SessionInfo,
    MAX_NAME_BYTES,
};

/// Tuning for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections served concurrently; one pool thread each.
    pub max_connections: usize,
    /// Per-connection read timeout. Idle connections wake at this cadence
    /// to observe the shutdown flag.
    pub read_timeout: Duration,
    /// When set, a background thread appends one JSON metrics snapshot per
    /// [`metrics_export_interval`](Self::metrics_export_interval) to this
    /// file (JSONL), plus a final snapshot at shutdown.
    pub metrics_export_path: Option<PathBuf>,
    /// Cadence of the JSONL metrics export.
    pub metrics_export_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 32,
            read_timeout: Duration::from_millis(200),
            metrics_export_path: None,
            metrics_export_interval: Duration::from_secs(10),
        }
    }
}

/// One named, server-resident profiling session.
struct Session {
    config: SessionConfig,
    /// The live engine; `None` once the session has been drained.
    engine: Mutex<Option<EngineSession>>,
}

impl Session {
    fn open(config: &SessionConfig, shared: &Shared) -> Result<Session, ServerError> {
        let interval = IntervalConfig::new(config.interval_len, config.threshold)
            .map_err(mhp_pipeline::Error::Config)?;
        let engine = ShardedEngine::new(
            EngineConfig::new(config.shards as usize),
            interval,
            config.kind.spec(),
            config.seed,
        )
        .with_telemetry(shared.engine_telemetry.clone())
        .with_introspection_sink(Arc::clone(&shared.sketch_sink))
        .start()?;
        Ok(Session {
            config: config.clone(),
            engine: Mutex::new(Some(engine)),
        })
    }

    /// Runs `f` against the live engine, failing cleanly if the session
    /// has been drained under us.
    fn with_engine<T>(
        &self,
        f: impl FnOnce(&mut EngineSession) -> Result<T, ServerError>,
    ) -> Result<T, ServerError> {
        let mut guard = self.engine.lock().expect("session lock poisoned");
        match guard.as_mut() {
            Some(engine) => f(engine),
            None => Err(ServerError::Remote {
                code: ErrorCode::ShuttingDown,
                message: "session was drained".into(),
            }),
        }
    }

    fn info(&self, name: &str) -> Result<SessionInfo, ServerError> {
        self.with_engine(|engine| {
            Ok(SessionInfo {
                name: name.to_string(),
                config: self.config.clone(),
                events: engine.events(),
                intervals: engine.intervals(),
            })
        })
    }

    /// Stops the shard workers. Idempotent.
    fn drain(&self) {
        if let Some(engine) = self.engine.lock().expect("session lock poisoned").take() {
            // finish() joins the workers; the report is discarded — the
            // profiles were queryable while the session lived.
            let _ = engine.finish();
        }
    }
}

type Registry = Mutex<HashMap<String, Arc<Session>>>;

/// Shared state every connection handler sees.
struct Shared {
    config: ServerConfig,
    sessions: Registry,
    metrics: Metrics,
    /// Engine metric handles every session's engine reports through; on
    /// the same registry as [`Shared::metrics`].
    engine_telemetry: EngineTelemetry,
    /// Sketch introspection sink installed on every session's shard
    /// profilers; also feeds the shared registry.
    sketch_sink: Arc<dyn IntrospectionSink>,
    shutdown: AtomicBool,
}

/// The profiling service. [`bind`](Server::bind) it to get a
/// [`RunningServer`] handle.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if the address cannot be bound.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<RunningServer, ServerError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Poll the shutdown flag between accepts instead of blocking in
        // accept() forever.
        listener.set_nonblocking(true)?;

        let metrics = Metrics::new();
        let engine_telemetry = EngineTelemetry::new(metrics.registry());
        let sketch_sink: Arc<dyn IntrospectionSink> =
            Arc::new(RegistrySink::new(metrics.registry()));
        let shared = Arc::new(Shared {
            config,
            sessions: Mutex::new(HashMap::new()),
            metrics,
            engine_telemetry,
            sketch_sink,
            shutdown: AtomicBool::new(false),
        });

        let export_handle = shared.config.metrics_export_path.clone().map(|path| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || export_loop(&path, &shared))
        });

        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::spawn(move || {
            accept_loop(&listener, &accept_shared, &done_tx, &done_rx);
        });

        Ok(RunningServer {
            local_addr,
            shared,
            accept_handle: Some(accept_handle),
            export_handle,
        })
    }
}

/// Appends one JSON metrics snapshot per export interval (and a final one
/// at shutdown) to `path`, one object per line. Polls the shutdown flag at
/// a ~50 ms cadence so shutdown never waits out a long interval.
fn export_loop(path: &std::path::Path, shared: &Shared) {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path);
    let Ok(file) = file else { return };
    let mut writer = BufWriter::new(file);
    let mut last = Instant::now();
    loop {
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        if shutting_down || last.elapsed() >= shared.config.metrics_export_interval {
            let _ = writer.write_all(shared.metrics.registry().snapshot_json().as_bytes());
            let _ = writer.write_all(b"\n");
            let _ = writer.flush();
            last = Instant::now();
        }
        if shutting_down {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// A bound, running server: inspect its address, trigger shutdown, wait
/// for it to drain.
#[derive(Debug)]
pub struct RunningServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    export_handle: Option<JoinHandle<()>>,
}

// Shared holds no Debug members worth printing; keep the derive honest.
impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("shutdown", &self.shutdown.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl RunningServer {
    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Rendered metrics, same text the `stats` query returns.
    pub fn stats(&self) -> String {
        self.shared.metrics.render()
    }

    /// Prometheus text exposition of every metric, same text the
    /// `metrics` query returns.
    pub fn metrics(&self) -> String {
        self.shared.metrics.registry().render_prometheus()
    }

    /// Requests a graceful shutdown: stop accepting, let in-flight
    /// connections finish, drain every session. Returns immediately; use
    /// [`join`](Self::join) to wait.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the accept loop and every connection to finish and all
    /// sessions to be drained. Implies [`shutdown`](Self::shutdown).
    pub fn join(mut self) {
        self.shutdown();
        self.reap();
    }

    /// Blocks until the server shuts down — via a client `shutdown`
    /// request or a concurrent [`shutdown`](Self::shutdown) call —
    /// without triggering the shutdown itself.
    pub fn wait(mut self) {
        self.reap();
    }

    /// Joins the accept loop and (if running) the metrics exporter.
    fn reap(&mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // The accept loop is gone, so the server is down even if nothing
        // raised the flag (e.g. a hard listener error); make sure the
        // exporter observes that and writes its final snapshot.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.export_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.shutdown();
        self.reap();
    }
}

/// Accepts until shutdown, then waits for live handlers and drains
/// sessions. Handler threads report completion over `done`; the loop
/// counts live connections itself, so the limit is exact even though
/// handlers run concurrently.
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    done_tx: &Sender<()>,
    done_rx: &Receiver<()>,
) {
    let mut live = 0usize;
    let mut handles = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Reap finished handlers without blocking.
        while done_rx.try_recv().is_ok() {
            live -= 1;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if live >= shared.config.max_connections {
                    shared.metrics.connections_rejected.incr();
                    reject_busy(stream);
                    continue;
                }
                live += 1;
                shared.metrics.connections_accepted.incr();
                shared.metrics.connections_active.incr();
                let shared = Arc::clone(shared);
                let done = done_tx.clone();
                handles.push(std::thread::spawn(move || {
                    handle_connection(stream, &shared);
                    shared.metrics.connections_active.decr();
                    let _ = done.send(());
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Graceful drain: handlers observe the flag via read timeouts and
    // exit; then the sessions' shard workers are joined.
    for handle in handles {
        let _ = handle.join();
    }
    let sessions: Vec<Arc<Session>> = {
        let mut registry = shared.sessions.lock().expect("registry lock poisoned");
        registry.drain().map(|(_, s)| s).collect()
    };
    for session in sessions {
        session.drain();
        shared.metrics.sessions_closed.incr();
    }
}

/// Best-effort `busy` response to an over-limit connection.
fn reject_busy(stream: TcpStream) {
    let mut writer = BufWriter::new(stream);
    let body = Response::Error {
        code: ErrorCode::Busy,
        message: "server is at its connection limit".into(),
    }
    .encode();
    let _ = write_frame(&mut writer, &body);
    let _ = writer.flush();
}

/// Serves one connection until EOF, a protocol violation, or shutdown.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    // The session this connection opened or attached to, if any.
    let mut attached: Option<(String, Arc<Session>)> = None;
    // Decoded-chunk scratch, reused across every ingest on this connection
    // so steady-state streaming does not allocate per chunk.
    let mut ingest_buf: Vec<Tuple> = Vec::new();

    loop {
        let body = match read_frame(&mut reader) {
            Ok(Some(body)) => body,
            Ok(None) => return, // clean EOF
            Err(ServerError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(err) => {
                // Protocol violation (or hard I/O error): answer if the
                // socket still works, then hang up.
                shared.metrics.protocol_errors.incr();
                respond_error(&mut writer, &err);
                return;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            let refusal = ServerError::Remote {
                code: ErrorCode::ShuttingDown,
                message: "server is shutting down".into(),
            };
            respond_error(&mut writer, &refusal);
            return;
        }
        shared.metrics.requests_total.incr();
        let started = Instant::now();
        let request = match Request::decode(&body) {
            Ok(request) => request,
            Err(err) => {
                shared.metrics.protocol_errors.incr();
                shared.metrics.errors_total.incr();
                respond_error(&mut writer, &err);
                return;
            }
        };
        let response = match handle_request(request, &mut attached, &mut ingest_buf, shared) {
            Ok(response) => response,
            Err(err) => {
                shared.metrics.errors_total.incr();
                Response::Error {
                    code: err.code(),
                    message: err.wire_message(),
                }
            }
        };
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
        shared
            .metrics
            .request_latency
            .record_duration(started.elapsed());
    }
}

fn respond_error(writer: &mut impl Write, err: &ServerError) {
    let body = Response::Error {
        code: err.code(),
        message: err.wire_message(),
    }
    .encode();
    let _ = write_frame(writer, &body);
}

/// Dispatches one decoded request against the shared state.
fn handle_request(
    request: Request,
    attached: &mut Option<(String, Arc<Session>)>,
    ingest_buf: &mut Vec<Tuple>,
    shared: &Shared,
) -> Result<Response, ServerError> {
    match request {
        Request::Open { name, config } => {
            if name.is_empty() || name.len() > MAX_NAME_BYTES {
                return Err(ServerError::protocol("session name must be 1..=256 bytes"));
            }
            let session = Arc::new(Session::open(&config, shared)?);
            {
                let mut registry = shared.sessions.lock().expect("registry lock poisoned");
                if registry.contains_key(&name) {
                    return Err(ServerError::Remote {
                        code: ErrorCode::SessionExists,
                        message: format!("session {name:?} already exists"),
                    });
                }
                registry.insert(name.clone(), Arc::clone(&session));
            }
            shared.metrics.sessions_opened.incr();
            let info = session.info(&name)?;
            *attached = Some((name, session));
            Ok(Response::Session(info))
        }
        Request::Attach { name } => {
            let session = {
                let registry = shared.sessions.lock().expect("registry lock poisoned");
                registry.get(&name).cloned()
            };
            let session = session.ok_or_else(|| ServerError::Remote {
                code: ErrorCode::UnknownSession,
                message: format!("no session named {name:?}"),
            })?;
            let info = session.info(&name)?;
            *attached = Some((name, session));
            Ok(Response::Session(info))
        }
        Request::Ingest { chunk } => {
            let session = require_attached(attached)?;
            let decode_started = Instant::now();
            let consumed = decode_chunk_into(&chunk, ingest_buf)?;
            shared
                .metrics
                .chunk_decode
                .record_duration(decode_started.elapsed());
            if consumed != chunk.len() {
                return Err(ServerError::protocol("trailing bytes after ingest chunk"));
            }
            let (total_events, intervals) = session.with_engine(|engine| {
                let before = engine.intervals();
                engine.push_all(ingest_buf.iter().copied())?;
                let after = engine.intervals();
                shared.metrics.intervals_completed.add(after - before);
                Ok((engine.events(), after))
            })?;
            shared.metrics.chunks_ingested.incr();
            shared.metrics.events_ingested.add(ingest_buf.len() as u64);
            Ok(Response::Ingested {
                events: total_events,
                intervals,
            })
        }
        Request::Cut => {
            let session = require_attached(attached)?;
            let profile = session.with_engine(|engine| {
                let before = engine.intervals();
                let profile = engine.cut()?;
                shared
                    .metrics
                    .intervals_completed
                    .add(engine.intervals() - before);
                Ok(profile)
            })?;
            Ok(match profile {
                Some(profile) => Response::Profile(ProfileData::from_profile(&profile)),
                None => Response::NoProfile,
            })
        }
        Request::Snapshot { interval } => {
            let session = require_attached(attached)?;
            let profile = session.with_engine(|engine| {
                let profiles = engine.profiles()?;
                let index = if interval == u64::MAX {
                    profiles.len().checked_sub(1)
                } else {
                    usize::try_from(interval).ok()
                };
                Ok(index
                    .and_then(|i| profiles.get(i))
                    .map(ProfileData::from_profile))
            })?;
            Ok(match profile {
                Some(profile) => Response::Profile(profile),
                None => Response::NoProfile,
            })
        }
        Request::TopK { n } => {
            let session = require_attached(attached)?;
            let candidates = session.with_engine(|engine| Ok(engine.top_k(n as usize)?))?;
            Ok(Response::TopK(candidates))
        }
        Request::Stats => Ok(Response::Stats(shared.metrics.render())),
        Request::Metrics => Ok(Response::Metrics(
            shared.metrics.registry().render_prometheus(),
        )),
        Request::CloseSession => {
            let (name, session) = attached.take().ok_or_else(|| {
                ServerError::protocol("close-session requires an attached session")
            })?;
            shared
                .sessions
                .lock()
                .expect("registry lock poisoned")
                .remove(&name);
            session.drain();
            shared.metrics.sessions_closed.incr();
            Ok(Response::Done)
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Ok(Response::Done)
        }
    }
}

fn require_attached(
    attached: &Option<(String, Arc<Session>)>,
) -> Result<&Arc<Session>, ServerError> {
    attached
        .as_ref()
        .map(|(_, session)| session)
        .ok_or_else(|| ServerError::protocol("this request requires an open or attached session"))
}
