//! The profiling service itself: a TCP listener, a fixed thread pool of
//! connection handlers, and a registry of named sessions, each wrapping a
//! live [`EngineSession`].
//!
//! ## Session lifecycle
//!
//! Sessions are *server-resident* and named: `open` creates one and
//! attaches the connection; any other connection may `attach` to it by
//! name (e.g. a dashboard issuing `topk` while a recorder streams chunks).
//! A session outlives the connections using it and dies only on
//! `close-session` or server shutdown, when remaining sessions are drained
//! (their shard workers joined) before the process exits.
//!
//! ## Robustness
//!
//! * Connections past `max_connections` receive a `busy` error response
//!   and are closed immediately — a graceful rejection, not a hang.
//! * Reads carry a timeout so a silent peer cannot pin a pool thread
//!   forever; each timeout re-checks the shutdown flag.
//! * A protocol violation gets a best-effort error response, then the
//!   connection is dropped (counted in `protocol_errors`).
//!
//! ## Durability
//!
//! With [`ServerConfig::state_dir`] set, a background thread periodically
//! checkpoints every live session — a CRC-guarded
//! [`KIND_SERVER_SESSION`] snapshot carrying the session's name, its
//! configuration, its last acknowledged ingest sequence, and the full
//! engine state — to `state_dir`, atomically (write-to-temp + rename). A
//! freshly bound server scans that directory and restores every snapshot
//! it finds before accepting connections, so a restored session answers
//! `snapshot`/`topk` bit-identically to the pre-crash one. Sequenced
//! ingest ([`Request::IngestSeq`](crate::Request::IngestSeq)) gives
//! reconnecting clients idempotent resume: a replayed chunk is
//! acknowledged without being re-applied, and
//! [`Request::Resume`](crate::Request::Resume) reports the last applied
//! sequence. Admission control sheds ingest with a typed
//! [`ErrorCode::Overloaded`] response once live connections exceed
//! [`ServerConfig::overload_connection_watermark`].

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mhp_telemetry::{CounterVec, StageSummary, Trace, TraceConfig, Tracer};

use mhp_core::state::{SnapshotReader, SnapshotWriter, KIND_SERVER_SESSION};
use mhp_core::{IntervalConfig, IntrospectionSink, SnapshotError};
use mhp_faults::{ConnAction, FaultHook};
use mhp_pipeline::{
    declared_chunk_len, EngineConfig, EngineSession, EngineTelemetry, RegistrySink, ShardedEngine,
};

use crate::error::{ErrorCode, ServerError};
use crate::metrics::{Counter, Metrics};
use crate::protocol::{
    read_frame, write_frame, ProfileData, ProfilerKind, Request, Response, SessionConfig,
    SessionInfo, MAX_NAME_BYTES,
};

/// Tuning for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections served concurrently; one pool thread each in threaded
    /// mode, a slab cap in event-loop mode.
    pub max_connections: usize,
    /// Per-connection read timeout. Idle connections wake at this cadence
    /// to observe the shutdown flag.
    pub read_timeout: Duration,
    /// Per-connection write timeout in threaded mode, so a stalled client
    /// that stops draining its socket cannot pin a handler thread forever
    /// mid-response. (The event loop never blocks on writes; it bounds
    /// write buffers instead.)
    pub write_timeout: Duration,
    /// When set, the server runs its readiness-based event loop (one
    /// socket thread multiplexing every connection over `poll(2)` plus a
    /// small worker pool) instead of a thread per connection.
    pub event_loop: Option<crate::event_loop::EventLoopConfig>,
    /// When set, a background thread appends one JSON metrics snapshot per
    /// [`metrics_export_interval`](Self::metrics_export_interval) to this
    /// file (JSONL), plus a final snapshot at shutdown.
    pub metrics_export_path: Option<PathBuf>,
    /// Cadence of the JSONL metrics export.
    pub metrics_export_interval: Duration,
    /// When set, every live session is checkpointed to this directory at
    /// [`checkpoint_interval`](Self::checkpoint_interval) cadence (plus
    /// once at graceful shutdown), and a freshly bound server restores
    /// every snapshot found there before accepting connections.
    pub state_dir: Option<PathBuf>,
    /// Cadence of session checkpoints when
    /// [`state_dir`](Self::state_dir) is set.
    pub checkpoint_interval: Duration,
    /// Admission-control watermark: once more than this many connections
    /// are live, ingest requests are shed with
    /// [`ErrorCode::Overloaded`] instead of queueing further load.
    /// `usize::MAX` (the default) never sheds.
    pub overload_connection_watermark: usize,
    /// Armed fault plan for chaos testing: consulted per request
    /// (connection drops, torn response frames), per ingested chunk
    /// (corruption, stalls) and per shard-worker batch (panics, stalls).
    /// `None` (the default) compiles the hooks to a single branch.
    pub fault_hook: Option<FaultHook>,
    /// Per-tenant admission quotas. The default is unlimited.
    pub tenant_quotas: TenantQuotas,
    /// Total estimated session memory (see
    /// [`EngineSession::approx_memory_bytes`]) the server keeps resident.
    /// When set, a housekeeping thread evicts least-recently-used idle
    /// sessions (checkpointing them first when
    /// [`state_dir`](Self::state_dir) is set, so a later `attach` restores
    /// them transparently) until the total is back under budget. `None`
    /// (the default) never evicts.
    pub session_memory_budget: Option<u64>,
    /// Per-request stage tracing (see [`crate::Request::Traces`]). On by
    /// default; turning it off keeps the `server_stage_*` metrics
    /// registered (exposition shape is stable) but makes every trace a
    /// no-op that never reads the clock — the baseline for measuring
    /// tracing overhead.
    pub tracing: bool,
}

/// The server's request stage taxonomy, in pipeline order. Stage indices
/// below index into this slice; the tracer registers one
/// `server_stage_{name}_us` histogram per entry.
pub const SERVER_STAGES: &[&str] = &[
    "admission_wait",
    "frame_decode",
    "queue_wait",
    "dispatch",
    "ingest",
    "reply_write",
];

/// Waiting for admission: parked time before the event loop admits a
/// connection, or the threaded front end's ingest admission check.
pub(crate) const STAGE_ADMISSION_WAIT: usize = 0;
/// Decoding the request frame into a [`Request`].
pub(crate) const STAGE_FRAME_DECODE: usize = 1;
/// Sitting in the event loop's worker queue (always 0 in threaded mode,
/// where the connection thread runs the request itself).
pub(crate) const STAGE_QUEUE_WAIT: usize = 2;
/// Handing ingest batches to the shard rings, blocking stalls included.
pub(crate) const STAGE_DISPATCH: usize = 3;
/// Engine ingest: chunk decode, partition, and sketch updates, minus the
/// ring handoff counted under `dispatch`.
pub(crate) const STAGE_INGEST: usize = 4;
/// Writing (threaded) or synchronously flushing (event loop) the response.
pub(crate) const STAGE_REPLY_WRITE: usize = 5;

/// Per-tenant admission quotas, enforced when the request arrives —
/// rejections are typed [`ErrorCode::QuotaExceeded`] responses and count
/// in `server_tenant_quota_rejections_total{tenant="..."}`.
///
/// The tenant of a session is the prefix of its name before the first
/// `/` (see [`tenant_of`]); sessions without a namespace share the
/// `default` tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuotas {
    /// Live sessions one tenant may hold open at once. `usize::MAX` (the
    /// default) never rejects.
    pub max_sessions: usize,
    /// Sustained ingest budget per tenant in bytes/second, enforced as a
    /// token bucket with one second of burst. `u64::MAX` (the default)
    /// never rejects.
    pub max_bytes_per_sec: u64,
}

impl Default for TenantQuotas {
    fn default() -> Self {
        TenantQuotas {
            max_sessions: usize::MAX,
            max_bytes_per_sec: u64::MAX,
        }
    }
}

/// The tenant a session name belongs to: the prefix before the first `/`
/// (`acme/web-42` → `acme`), or `default` for an un-namespaced name.
///
/// # Examples
///
/// ```
/// use mhp_server::tenant_of;
/// assert_eq!(tenant_of("acme/web-42"), "acme");
/// assert_eq!(tenant_of("gcc-run"), "default");
/// assert_eq!(tenant_of("/odd"), "default");
/// ```
pub fn tenant_of(name: &str) -> &str {
    match name.split_once('/') {
        Some((tenant, _)) if !tenant.is_empty() => tenant,
        _ => "default",
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 32,
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_secs(30),
            event_loop: None,
            metrics_export_path: None,
            metrics_export_interval: Duration::from_secs(10),
            state_dir: None,
            checkpoint_interval: Duration::from_secs(5),
            overload_connection_watermark: usize::MAX,
            fault_hook: None,
            tenant_quotas: TenantQuotas::default(),
            session_memory_budget: None,
            tracing: true,
        }
    }
}

/// One named, server-resident profiling session.
pub(crate) struct Session {
    config: SessionConfig,
    /// The session's tenant, derived from its name once at open/restore.
    tenant: String,
    /// Milliseconds since the server epoch of the last request that
    /// targeted this session; the LRU key for eviction.
    last_touch_ms: AtomicU64,
    /// Connections currently attached. Eviction only considers sessions
    /// at zero — an attached session is in use by definition.
    attachments: AtomicU64,
    /// The live engine plus resume bookkeeping, under one lock so a
    /// sequence check and the ingest it guards are atomic.
    state: Mutex<SessionState>,
}

/// What the session lock protects.
struct SessionState {
    /// The live engine; `None` once the session has been drained.
    engine: Option<EngineSession>,
    /// Highest contiguous sequence number applied via sequenced ingest
    /// (`0` before any); replays at or below it are acknowledged without
    /// being re-applied.
    last_seq: u64,
}

/// The engine every session runs: the session's spec wired to the shared
/// telemetry, introspection sink, and (when configured) fault hook.
fn engine_builder(config: &SessionConfig, shared: &Shared) -> Result<ShardedEngine, ServerError> {
    let interval = IntervalConfig::new(config.interval_len, config.threshold)
        .map_err(mhp_pipeline::Error::Config)?;
    let mut engine = ShardedEngine::new(
        EngineConfig::new(config.shards as usize),
        interval,
        config.kind.spec(),
        config.seed,
    )
    .with_telemetry(shared.engine_telemetry.clone())
    .with_introspection_sink(Arc::clone(&shared.sketch_sink));
    if let Some(hook) = &shared.config.fault_hook {
        engine = engine.with_fault_hook(hook.clone());
    }
    Ok(engine)
}

impl Session {
    fn open(name: &str, config: &SessionConfig, shared: &Shared) -> Result<Session, ServerError> {
        let engine = engine_builder(config, shared)?.start()?;
        Ok(Session {
            config: config.clone(),
            tenant: tenant_of(name).to_string(),
            last_touch_ms: AtomicU64::new(shared.now_ms()),
            attachments: AtomicU64::new(0),
            state: Mutex::new(SessionState {
                engine: Some(engine),
                last_seq: 0,
            }),
        })
    }

    /// Marks the session as just used, for LRU eviction ordering.
    fn touch(&self, shared: &Shared) {
        self.last_touch_ms.store(shared.now_ms(), Ordering::Relaxed);
    }

    /// Runs `f` with the session lock held (engine plus sequence state).
    fn with_state<T>(
        &self,
        f: impl FnOnce(&mut SessionState) -> Result<T, ServerError>,
    ) -> Result<T, ServerError> {
        let mut guard = self.state.lock().expect("session lock poisoned");
        f(&mut guard)
    }

    /// Runs `f` against the live engine, failing cleanly if the session
    /// has been drained under us.
    fn with_engine<T>(
        &self,
        f: impl FnOnce(&mut EngineSession) -> Result<T, ServerError>,
    ) -> Result<T, ServerError> {
        self.with_state(|state| match state.engine.as_mut() {
            Some(engine) => f(engine),
            None => Err(drained()),
        })
    }

    fn info(&self, name: &str) -> Result<SessionInfo, ServerError> {
        self.with_engine(|engine| {
            Ok(SessionInfo {
                name: name.to_string(),
                config: self.config.clone(),
                events: engine.events(),
                intervals: engine.intervals(),
            })
        })
    }

    /// Stops the shard workers. Idempotent.
    fn drain(&self) {
        let engine = self
            .state
            .lock()
            .expect("session lock poisoned")
            .engine
            .take();
        if let Some(engine) = engine {
            // finish() joins the workers; the report is discarded — the
            // profiles were queryable while the session lived.
            let _ = engine.finish();
        }
    }
}

/// A connection's hold on a session. The count is what shields a session
/// from eviction, so the hold is released in `Drop` — every exit path of
/// the connection handler, clean or not, decrements it.
pub(crate) struct Attachment {
    name: String,
    session: Arc<Session>,
}

impl Attachment {
    fn new(name: String, session: Arc<Session>) -> Attachment {
        session.attachments.fetch_add(1, Ordering::AcqRel);
        Attachment { name, session }
    }
}

impl Drop for Attachment {
    fn drop(&mut self) {
        self.session.attachments.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The error a request against a drained session gets.
fn drained() -> ServerError {
    ServerError::Remote {
        code: ErrorCode::ShuttingDown,
        message: "session was drained".into(),
    }
}

type Registry = Mutex<HashMap<String, Arc<Session>>>;

/// Durability and fault-tolerance counters. Registered on the shared
/// registry (so they appear in the Prometheus exposition) but deliberately
/// not in the legacy `stats` text, whose shape is frozen.
#[derive(Debug, Clone)]
struct Durability {
    /// Ingest requests shed by admission control.
    shed_total: Counter,
    /// Sessions restored from on-disk checkpoints at bind.
    restore_total: Counter,
    /// Snapshot files that failed to restore (corrupt or incompatible).
    restore_errors_total: Counter,
    /// Session checkpoints written successfully.
    checkpoints_total: Counter,
    /// Checkpoint attempts that failed (engine or filesystem).
    checkpoint_errors_total: Counter,
    /// Replayed sequenced chunks acknowledged without re-applying.
    dedup_total: Counter,
}

impl Durability {
    fn on_registry(registry: &mhp_telemetry::Registry) -> Self {
        Durability {
            shed_total: registry.counter("server_shed_total"),
            restore_total: registry.counter("server_restore_total"),
            restore_errors_total: registry.counter("server_restore_errors_total"),
            checkpoints_total: registry.counter("server_checkpoints_total"),
            checkpoint_errors_total: registry.counter("server_checkpoint_errors_total"),
            dedup_total: registry.counter("server_dedup_chunks_total"),
        }
    }
}

/// Token bucket for one tenant's ingest bytes/s quota: capacity is one
/// second of the sustained rate, refilled continuously.
struct TokenBucket {
    tokens: u64,
    last_refill: Instant,
}

impl TokenBucket {
    fn new(rate: u64) -> Self {
        TokenBucket {
            tokens: rate,
            last_refill: Instant::now(),
        }
    }

    /// Takes `cost` tokens if available (refilling first), else refuses.
    fn charge(&mut self, rate: u64, cost: u64) -> bool {
        let elapsed = self.last_refill.elapsed();
        self.last_refill = Instant::now();
        let refill = (elapsed.as_micros().min(u128::from(u64::MAX)) as u64 / 1_000)
            .saturating_mul(rate)
            / 1_000;
        self.tokens = self.tokens.saturating_add(refill).min(rate);
        if self.tokens >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }
}

/// Per-tenant accounting: quota state plus the labeled counters that make
/// tenancy observable in the shared registry's Prometheus exposition.
struct Tenancy {
    quotas: TenantQuotas,
    /// One ingest token bucket per tenant, created on first ingest.
    buckets: Mutex<HashMap<String, TokenBucket>>,
    sessions_opened: CounterVec,
    events_ingested: CounterVec,
    bytes_ingested: CounterVec,
    quota_rejections: CounterVec,
    evictions: CounterVec,
}

impl Tenancy {
    fn on_registry(registry: &mhp_telemetry::Registry, quotas: TenantQuotas) -> Self {
        Tenancy {
            quotas,
            buckets: Mutex::new(HashMap::new()),
            sessions_opened: CounterVec::new(
                registry,
                "server_tenant_sessions_opened_total",
                "tenant",
            ),
            events_ingested: CounterVec::new(
                registry,
                "server_tenant_events_ingested_total",
                "tenant",
            ),
            bytes_ingested: CounterVec::new(
                registry,
                "server_tenant_bytes_ingested_total",
                "tenant",
            ),
            quota_rejections: CounterVec::new(
                registry,
                "server_tenant_quota_rejections_total",
                "tenant",
            ),
            evictions: CounterVec::new(registry, "server_tenant_evictions_total", "tenant"),
        }
    }

    /// Charges `bytes` against the tenant's ingest budget.
    fn charge_ingest(&self, tenant: &str, bytes: u64) -> bool {
        let rate = self.quotas.max_bytes_per_sec;
        if rate == u64::MAX {
            return true;
        }
        let mut buckets = self.buckets.lock().expect("bucket lock poisoned");
        buckets
            .entry(tenant.to_string())
            .or_insert_with(|| TokenBucket::new(rate))
            .charge(rate, bytes)
    }
}

/// Shared state every connection handler sees.
pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    sessions: Registry,
    pub(crate) metrics: Metrics,
    durability: Durability,
    tenancy: Tenancy,
    /// Engine metric handles every session's engine reports through; on
    /// the same registry as [`Shared::metrics`].
    engine_telemetry: EngineTelemetry,
    /// Sketch introspection sink installed on every session's shard
    /// profilers; also feeds the shared registry.
    sketch_sink: Arc<dyn IntrospectionSink>,
    /// Per-request stage tracing: histograms, sample reservoirs, and the
    /// span ring behind the `traces` query.
    pub(crate) tracer: Tracer,
    /// Zero point for session last-touch timestamps.
    epoch: Instant,
    pub(crate) shutdown: AtomicBool,
}

impl Shared {
    /// Milliseconds since the server epoch, for LRU timestamps.
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
    }
}

/// The profiling service. [`bind`](Server::bind) it to get a
/// [`RunningServer`] handle.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if the address cannot be bound.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<RunningServer, ServerError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Poll the shutdown flag between accepts instead of blocking in
        // accept() forever.
        listener.set_nonblocking(true)?;

        let metrics = Metrics::new();
        let durability = Durability::on_registry(metrics.registry());
        let tenancy = Tenancy::on_registry(metrics.registry(), config.tenant_quotas);
        let engine_telemetry = EngineTelemetry::new(metrics.registry());
        let sketch_sink: Arc<dyn IntrospectionSink> =
            Arc::new(RegistrySink::new(metrics.registry()));
        let tracer = {
            let mut trace_config = TraceConfig::new("server", SERVER_STAGES);
            trace_config.enabled = config.tracing;
            Tracer::new(metrics.registry(), trace_config)
        };
        let shared = Arc::new(Shared {
            config,
            sessions: Mutex::new(HashMap::new()),
            metrics,
            durability,
            tenancy,
            engine_telemetry,
            sketch_sink,
            tracer,
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
        });

        // Restore checkpointed sessions before the first connection can
        // race a fresh `open` against them.
        if let Some(dir) = shared.config.state_dir.clone() {
            std::fs::create_dir_all(&dir)?;
            restore_sessions(&dir, &shared);
        }

        let export_handle = shared.config.metrics_export_path.clone().map(|path| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || export_loop(&path, &shared))
        });
        let checkpoint_handle = shared.config.state_dir.clone().map(|dir| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || checkpoint_loop(&dir, &shared))
        });
        let eviction_handle = shared.config.session_memory_budget.map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || eviction_loop(&shared))
        });

        let accept_shared = Arc::clone(&shared);
        let accept_handle = if shared.config.event_loop.is_some() {
            std::thread::spawn(move || crate::event_loop::run(&listener, &accept_shared))
        } else {
            std::thread::spawn(move || {
                let (done_tx, done_rx) = std::sync::mpsc::channel();
                accept_loop(&listener, &accept_shared, &done_tx, &done_rx);
            })
        };

        Ok(RunningServer {
            local_addr,
            shared,
            accept_handle: Some(accept_handle),
            export_handle,
            checkpoint_handle,
            eviction_handle,
        })
    }
}

/// Appends one JSON metrics snapshot per export interval (and a final one
/// at shutdown) to `path`, one object per line. Polls the shutdown flag at
/// a ~50 ms cadence so shutdown never waits out a long interval.
fn export_loop(path: &std::path::Path, shared: &Shared) {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path);
    let Ok(file) = file else { return };
    let mut writer = BufWriter::new(file);
    let mut last = Instant::now();
    loop {
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        if shutting_down || last.elapsed() >= shared.config.metrics_export_interval {
            let _ = writer.write_all(shared.metrics.registry().snapshot_json().as_bytes());
            let _ = writer.write_all(b"\n");
            let _ = writer.flush();
            last = Instant::now();
        }
        if shutting_down {
            // The final snapshot is followed by the trace stream — stage
            // summaries plus every sampled trace — so a postmortem read of
            // the export file has the whole observability picture.
            let _ = writer.write_all(shared.tracer.render_jsonl().as_bytes());
            let _ = writer.flush();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Checkpoints every live session each interval. Polls the shutdown flag
/// at a ~50 ms cadence; the final durable checkpoint at graceful shutdown
/// is taken by the accept loop's drain, which still owns live engines.
fn checkpoint_loop(dir: &Path, shared: &Shared) {
    let mut last = Instant::now();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if last.elapsed() >= shared.config.checkpoint_interval {
            let sessions: Vec<(String, Arc<Session>)> = {
                let registry = shared.sessions.lock().expect("registry lock poisoned");
                registry
                    .iter()
                    .map(|(name, session)| (name.clone(), Arc::clone(session)))
                    .collect()
            };
            for (name, session) in sessions {
                checkpoint_session(dir, &name, &session, &shared.durability);
            }
            last = Instant::now();
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Enforces the session memory budget: sweeps at a ~100 ms cadence and
/// evicts least-recently-used *idle* sessions until the estimated total is
/// back under budget.
fn eviction_loop(shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        evict_over_budget(shared);
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// One eviction sweep. Sessions are sized with
/// [`EngineSession::approx_memory_bytes`]; while the total exceeds the
/// budget, the least-recently-touched session with no attached connection
/// is checkpointed (when a state dir is configured — a later `attach`
/// then restores it transparently) and drained. Attached sessions are
/// never evicted, so a fully attached over-budget server stays over
/// budget rather than breaking live connections.
fn evict_over_budget(shared: &Shared) {
    let Some(budget) = shared.config.session_memory_budget else {
        return;
    };
    let sessions: Vec<(String, Arc<Session>)> = {
        let registry = shared.sessions.lock().expect("registry lock poisoned");
        registry
            .iter()
            .map(|(name, session)| (name.clone(), Arc::clone(session)))
            .collect()
    };
    let mut total = 0u64;
    let mut sized: Vec<(u64, String, Arc<Session>, u64)> = Vec::with_capacity(sessions.len());
    for (name, session) in sessions {
        let bytes = session
            .with_engine(|engine| Ok(engine.approx_memory_bytes()))
            .unwrap_or(0);
        total = total.saturating_add(bytes);
        let touched = session.last_touch_ms.load(Ordering::Relaxed);
        sized.push((touched, name, session, bytes));
    }
    if total <= budget {
        return;
    }
    // Oldest touch first; name breaks ties so sweeps are deterministic.
    sized.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    for (_, name, session, bytes) in sized {
        if total <= budget {
            break;
        }
        if session.attachments.load(Ordering::Acquire) > 0 {
            continue;
        }
        if let Some(dir) = &shared.config.state_dir {
            checkpoint_session(dir, &name, &session, &shared.durability);
        }
        // Unregister only if it is still this session and still idle; an
        // attach that raced past the check above simply sees a drained
        // session and re-attaches (restoring from the checkpoint).
        let removed = {
            let mut registry = shared.sessions.lock().expect("registry lock poisoned");
            match registry.get(&name) {
                Some(current)
                    if Arc::ptr_eq(current, &session)
                        && session.attachments.load(Ordering::Acquire) == 0 =>
                {
                    registry.remove(&name);
                    true
                }
                _ => false,
            }
        };
        if removed {
            session.drain();
            total = total.saturating_sub(bytes);
            shared.tenancy.evictions.incr(&session.tenant);
            shared.metrics.sessions_closed.incr();
        }
    }
}

/// The snapshot file for a session: the name hex-encoded (so arbitrary
/// session names stay filesystem-safe) plus `.snap`.
fn snapshot_path(dir: &Path, name: &str) -> PathBuf {
    use std::fmt::Write as _;
    let mut file = String::with_capacity(name.len() * 2 + 5);
    for byte in name.as_bytes() {
        let _ = write!(file, "{byte:02x}");
    }
    file.push_str(".snap");
    dir.join(file)
}

/// Serializes one session checkpoint: name, configuration, last applied
/// ingest sequence, and the engine snapshot, in a CRC-guarded envelope.
fn encode_checkpoint(
    name: &str,
    config: &SessionConfig,
    last_seq: u64,
    engine_blob: &[u8],
) -> Vec<u8> {
    let mut w = SnapshotWriter::new(KIND_SERVER_SESSION);
    w.put_bytes(name.as_bytes());
    w.put_u8(config.kind.as_u8());
    w.put_u32(u32::from(config.shards));
    w.put_u64(config.interval_len);
    w.put_f64(config.threshold);
    w.put_u64(config.seed);
    w.put_u64(last_seq);
    w.put_bytes(engine_blob);
    w.finish()
}

/// Parses a session checkpoint back into its parts, validating the
/// envelope (magic, version, kind, CRC) and every field.
fn decode_checkpoint(bytes: &[u8]) -> Result<(String, SessionConfig, u64, Vec<u8>), ServerError> {
    let corrupt = |context| {
        ServerError::from(mhp_pipeline::Error::Snapshot(SnapshotError::Corrupt {
            context,
        }))
    };
    let mut r = SnapshotReader::open(bytes, KIND_SERVER_SESSION)
        .map_err(|e| ServerError::from(mhp_pipeline::Error::Snapshot(e)))?;
    let snap = |e| ServerError::from(mhp_pipeline::Error::Snapshot(e));
    let name = String::from_utf8(r.take_bytes("session name").map_err(snap)?.to_vec())
        .map_err(|_| corrupt("session name utf-8"))?;
    if name.is_empty() || name.len() > MAX_NAME_BYTES {
        return Err(corrupt("session name length"));
    }
    let kind = ProfilerKind::from_u8(r.take_u8("profiler kind").map_err(snap)?)
        .ok_or_else(|| corrupt("profiler kind"))?;
    let shards = u16::try_from(r.take_u32("shard count").map_err(snap)?)
        .map_err(|_| corrupt("shard count"))?;
    let config = SessionConfig {
        kind,
        shards,
        interval_len: r.take_u64("interval length").map_err(snap)?,
        threshold: r.take_f64("threshold fraction").map_err(snap)?,
        seed: r.take_u64("hash seed").map_err(snap)?,
    };
    let last_seq = r.take_u64("last ingest sequence").map_err(snap)?;
    let blob = r.take_bytes("engine snapshot").map_err(snap)?.to_vec();
    r.expect_end().map_err(snap)?;
    Ok((name, config, last_seq, blob))
}

/// Atomic file replacement: the snapshot is complete on disk before it
/// takes the live name, so a crash mid-checkpoint leaves the previous
/// snapshot intact.
fn write_atomically(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Takes one session checkpoint: snapshots the engine under the session
/// lock (a barrier across the shard workers), then atomically replaces
/// the on-disk file. A drained session is skipped, not an error.
fn checkpoint_session(dir: &Path, name: &str, session: &Session, durability: &Durability) {
    let snapshot = session.with_state(|state| {
        let Some(engine) = state.engine.as_mut() else {
            return Ok(None);
        };
        let blob = engine.save_state().map_err(ServerError::from)?;
        Ok(Some(encode_checkpoint(
            name,
            &session.config,
            state.last_seq,
            &blob,
        )))
    });
    match snapshot {
        Ok(None) => {}
        Ok(Some(bytes)) => {
            if write_atomically(&snapshot_path(dir, name), &bytes).is_ok() {
                durability.checkpoints_total.incr();
            } else {
                durability.checkpoint_errors_total.incr();
            }
        }
        Err(_) => durability.checkpoint_errors_total.incr(),
    }
}

/// Restores every `*.snap` in `dir` into the session registry, in sorted
/// path order so restart behaviour is deterministic. A snapshot that fails
/// to parse or restore is counted and skipped — one bad file must not take
/// the healthy sessions down with it.
fn restore_sessions(dir: &Path, shared: &Shared) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "snap"))
        .collect();
    paths.sort();
    for path in paths {
        let restored = std::fs::read(&path)
            .map_err(ServerError::from)
            .and_then(|bytes| restore_one(&bytes, shared));
        if restored.is_ok() {
            shared.durability.restore_total.incr();
            shared.metrics.sessions_opened.incr();
        } else {
            shared.durability.restore_errors_total.incr();
        }
    }
}

/// Rebuilds one session from checkpoint bytes and registers it.
fn restore_one(bytes: &[u8], shared: &Shared) -> Result<(), ServerError> {
    let (name, config, last_seq, blob) = decode_checkpoint(bytes)?;
    let engine = engine_builder(&config, shared)?.restore(&blob)?;
    let session = Arc::new(Session {
        config,
        tenant: tenant_of(&name).to_string(),
        last_touch_ms: AtomicU64::new(shared.now_ms()),
        attachments: AtomicU64::new(0),
        state: Mutex::new(SessionState {
            engine: Some(engine),
            last_seq,
        }),
    });
    let mut registry = shared.sessions.lock().expect("registry lock poisoned");
    if registry.contains_key(&name) {
        return Err(ServerError::protocol("duplicate session snapshot"));
    }
    registry.insert(name, session);
    Ok(())
}

/// A bound, running server: inspect its address, trigger shutdown, wait
/// for it to drain.
#[derive(Debug)]
pub struct RunningServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    export_handle: Option<JoinHandle<()>>,
    checkpoint_handle: Option<JoinHandle<()>>,
    eviction_handle: Option<JoinHandle<()>>,
}

// Shared holds no Debug members worth printing; keep the derive honest.
impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("shutdown", &self.shutdown.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl RunningServer {
    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Rendered metrics, same text the `stats` query returns.
    pub fn stats(&self) -> String {
        self.shared.metrics.render()
    }

    /// How many sessions were restored from on-disk checkpoints at bind.
    pub fn restored_sessions(&self) -> u64 {
        self.shared.durability.restore_total.get()
    }

    /// Prometheus text exposition of every metric, same text the
    /// `metrics` query returns.
    pub fn metrics(&self) -> String {
        self.shared.metrics.registry().render_prometheus()
    }

    /// Quantile summaries of the per-request stage histograms, in
    /// [`SERVER_STAGES`] order plus a final `"total"` entry.
    pub fn stage_summaries(&self) -> Vec<StageSummary> {
        self.shared.tracer.stage_summaries()
    }

    /// The request-trace stream as JSONL — stage summaries followed by
    /// sampled traces — same text the `traces` query returns.
    pub fn traces_jsonl(&self) -> String {
        self.shared.tracer.render_jsonl()
    }

    /// Requests a graceful shutdown: stop accepting, let in-flight
    /// connections finish, drain every session. Returns immediately; use
    /// [`join`](Self::join) to wait.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the accept loop and every connection to finish and all
    /// sessions to be drained. Implies [`shutdown`](Self::shutdown).
    pub fn join(mut self) {
        self.shutdown();
        self.reap();
    }

    /// Blocks until the server shuts down — via a client `shutdown`
    /// request or a concurrent [`shutdown`](Self::shutdown) call —
    /// without triggering the shutdown itself.
    pub fn wait(mut self) {
        self.reap();
    }

    /// Joins the accept loop and (if running) the metrics exporter and
    /// checkpointer.
    fn reap(&mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // The accept loop is gone, so the server is down even if nothing
        // raised the flag (e.g. a hard listener error); make sure the
        // exporter observes that and writes its final snapshot.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.export_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.checkpoint_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.eviction_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.shutdown();
        self.reap();
    }
}

/// Accepts until shutdown, then waits for live handlers and drains
/// sessions. Handler threads report completion over `done`; the loop
/// counts live connections itself, so the limit is exact even though
/// handlers run concurrently.
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    done_tx: &Sender<()>,
    done_rx: &Receiver<()>,
) {
    let mut live = 0usize;
    let mut handles = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Reap finished handlers without blocking.
        while done_rx.try_recv().is_ok() {
            live -= 1;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if live >= shared.config.max_connections {
                    shared.metrics.connections_rejected.incr();
                    reject_overloaded(stream);
                    continue;
                }
                live += 1;
                shared.metrics.connections_accepted.incr();
                shared.metrics.connections_active.incr();
                let shared = Arc::clone(shared);
                let done = done_tx.clone();
                handles.push(std::thread::spawn(move || {
                    handle_connection(stream, &shared);
                    shared.metrics.connections_active.decr();
                    let _ = done.send(());
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Graceful drain: handlers observe the flag via read timeouts and
    // exit; then each session is checkpointed (when a state dir is
    // configured) while its engine is still live, and its shard workers
    // are joined.
    for handle in handles {
        let _ = handle.join();
    }
    drain_sessions(shared);
}

/// Final session teardown, shared by both front ends: checkpoint every
/// session while its engine is still live (when a state dir is
/// configured), then join its shard workers.
pub(crate) fn drain_sessions(shared: &Shared) {
    let sessions: Vec<(String, Arc<Session>)> = {
        let mut registry = shared.sessions.lock().expect("registry lock poisoned");
        registry.drain().collect()
    };
    for (name, session) in sessions {
        if let Some(dir) = &shared.config.state_dir {
            checkpoint_session(dir, &name, &session, &shared.durability);
        }
        session.drain();
        shared.metrics.sessions_closed.incr();
    }
}

/// Best-effort rejection of an over-limit connection with the retryable
/// `Overloaded` code, so a `ReconnectingClient` backs off and tries again
/// instead of giving up (being at the connection cap is transient by
/// nature). The write is bounded: a peer that cannot even absorb one tiny
/// frame is not worth waiting on.
pub(crate) fn reject_overloaded(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut writer = BufWriter::new(stream);
    let body = Response::Error {
        code: ErrorCode::Overloaded,
        message: "server is at its connection limit; back off and retry".into(),
    }
    .encode();
    let _ = write_frame(&mut writer, &body);
    let _ = writer.flush();
}

/// Serves one connection until EOF, a protocol violation, or shutdown.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    // A stalled peer that stops draining its socket bounds us to one write
    // timeout per syscall instead of pinning this thread forever.
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    // The session this connection opened or attached to, if any. Dropping
    // the hold (replacement, close, or any handler exit) releases the
    // session back to the eviction sweep.
    let mut attached: Option<Attachment> = None;

    loop {
        let body = match read_frame(&mut reader) {
            Ok(Some(body)) => body,
            Ok(None) => return, // clean EOF
            Err(ServerError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(err) => {
                // Protocol violation (or hard I/O error): answer if the
                // socket still works, then hang up.
                shared.metrics.protocol_errors.incr();
                respond_error(&mut writer, &err);
                return;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            let refusal = ServerError::Remote {
                code: ErrorCode::ShuttingDown,
                message: "server is shutting down".into(),
            };
            respond_error(&mut writer, &refusal);
            return;
        }
        shared.metrics.requests_total.incr();
        let started = Instant::now();
        let request = match Request::decode(&body) {
            Ok(request) => request,
            Err(err) => {
                shared.metrics.protocol_errors.incr();
                shared.metrics.errors_total.incr();
                respond_error(&mut writer, &err);
                return;
            }
        };
        // The trace kind is the decoded opcode, so it begins *after*
        // decode; the decode time lands as lead so the span still covers
        // it. A trace dropped on any abort path below records nothing.
        let trace = shared.tracer.begin(request.op_name());
        trace.add_lead(STAGE_FRAME_DECODE, started.elapsed());
        // Injected connection faults. `Drop` cuts the connection before
        // the request is applied (the replayed chunk must then be
        // re-applied); `TruncateResponse` applies the request but tears
        // the acknowledgement (the replay must then dedup). Together they
        // cover both halves of idempotent resume.
        let conn_fault = match &shared.config.fault_hook {
            Some(hook) => hook.on_request(),
            None => ConnAction::Proceed,
        };
        if conn_fault == ConnAction::Drop {
            return;
        }
        let response = match handle_request(request, &mut attached, shared, &trace) {
            Ok(response) => response,
            Err(err) => {
                shared.metrics.errors_total.incr();
                Response::Error {
                    code: err.code(),
                    message: err.wire_message(),
                }
            }
        };
        let encoded = response.encode();
        if conn_fault == ConnAction::TruncateResponse {
            truncate_response(&mut writer, &encoded);
            return;
        }
        let write_timer = trace.stage(STAGE_REPLY_WRITE);
        if write_frame(&mut writer, &encoded).is_err() {
            return;
        }
        write_timer.finish();
        trace.finish();
        shared
            .metrics
            .request_latency
            .record_duration(started.elapsed());
    }
}

/// Injected torn frame: the length prefix promises the whole body but
/// only half arrives before the hangup — exactly what a server crashing
/// mid-write produces.
fn truncate_response(writer: &mut impl Write, body: &[u8]) {
    let _ = writer.write_all(&(body.len() as u32).to_le_bytes());
    let _ = writer.write_all(&body[..body.len() / 2]);
    let _ = writer.flush();
}

fn respond_error(writer: &mut impl Write, err: &ServerError) {
    let body = Response::Error {
        code: err.code(),
        message: err.wire_message(),
    }
    .encode();
    let _ = write_frame(writer, &body);
}

/// Dispatches one decoded request against the shared state. Used by both
/// front ends: threaded handlers call it on their own thread; the event
/// loop's worker pool calls it with the connection's attachment moved into
/// the job (one job in flight per connection, so the move is exclusive).
pub(crate) fn handle_request(
    request: Request,
    attached: &mut Option<Attachment>,
    shared: &Shared,
    trace: &Trace,
) -> Result<Response, ServerError> {
    match request {
        Request::Open { name, config } => {
            if name.is_empty() || name.len() > MAX_NAME_BYTES {
                return Err(ServerError::protocol("session name must be 1..=256 bytes"));
            }
            let session = Arc::new(Session::open(&name, &config, shared)?);
            let tenant = session.tenant.clone();
            {
                let mut registry = shared.sessions.lock().expect("registry lock poisoned");
                if registry.contains_key(&name) {
                    return Err(ServerError::Remote {
                        code: ErrorCode::SessionExists,
                        message: format!("session {name:?} already exists"),
                    });
                }
                // The session-count quota is checked under the registry
                // lock so two racing opens cannot both slip under it. The
                // rejected engine's workers are reaped when the Arc drops.
                let quota = shared.config.tenant_quotas.max_sessions;
                if quota != usize::MAX {
                    let held = registry.values().filter(|s| s.tenant == tenant).count();
                    if held >= quota {
                        shared.tenancy.quota_rejections.incr(&tenant);
                        return Err(ServerError::Remote {
                            code: ErrorCode::QuotaExceeded,
                            message: format!("tenant {tenant:?} is at its session quota ({quota})"),
                        });
                    }
                }
                registry.insert(name.clone(), Arc::clone(&session));
            }
            shared.metrics.sessions_opened.incr();
            shared.tenancy.sessions_opened.incr(&tenant);
            let info = session.info(&name)?;
            *attached = Some(Attachment::new(name, session));
            Ok(Response::Session(info))
        }
        Request::Attach { name } => {
            let session = lookup_or_restore(&name, shared)?;
            session.touch(shared);
            let info = session.info(&name)?;
            *attached = Some(Attachment::new(name, session));
            Ok(Response::Session(info))
        }
        Request::Ingest { mut chunk } => {
            let session = require_attached(attached, shared)?;
            {
                let admission = trace.stage(STAGE_ADMISSION_WAIT);
                ingest_admission(shared)?;
                admission.finish();
            }
            charge_tenant_ingest(session, chunk.len(), shared)?;
            apply_chunk_faults(shared, &mut chunk);
            reject_trailing_bytes(&chunk)?;
            // Partition-while-decoding: the engine routes records into
            // per-shard batches straight out of the varint decoder, so the
            // chunk is never materialized in a flat buffer and re-scanned.
            // Header and CRC are verified before any record is ingested,
            // so a corrupt chunk (fault injection included) is rejected
            // whole.
            let decode_started = Instant::now();
            let (total_events, ingested, intervals, consumed, handoff) =
                session.with_engine(|engine| {
                    let events_before = engine.events();
                    let intervals_before = engine.intervals();
                    let consumed = engine.ingest_chunk(&chunk)?;
                    let handoff = engine.take_handoff_time();
                    let after = engine.intervals();
                    shared
                        .metrics
                        .intervals_completed
                        .add(after - intervals_before);
                    Ok((
                        engine.events(),
                        engine.events() - events_before,
                        after,
                        consumed,
                        handoff,
                    ))
                })?;
            let decode_elapsed = decode_started.elapsed();
            shared.metrics.chunk_decode.record_duration(decode_elapsed);
            // Ring handoff (blocking stalls included) is split out of the
            // engine call so `ingest` is pure decode + sketch work.
            trace.add(STAGE_DISPATCH, handoff);
            trace.add(STAGE_INGEST, decode_elapsed.saturating_sub(handoff));
            debug_assert_eq!(
                consumed,
                chunk.len(),
                "pre-checked by reject_trailing_bytes"
            );
            shared.metrics.chunks_ingested.incr();
            shared.metrics.events_ingested.add(ingested);
            shared
                .tenancy
                .events_ingested
                .add(&session.tenant, ingested);
            shared
                .tenancy
                .bytes_ingested
                .add(&session.tenant, chunk.len() as u64);
            Ok(Response::Ingested {
                events: total_events,
                intervals,
            })
        }
        Request::IngestSeq { seq, mut chunk } => {
            let session = require_attached(attached, shared)?;
            {
                let admission = trace.stage(STAGE_ADMISSION_WAIT);
                ingest_admission(shared)?;
                admission.finish();
            }
            charge_tenant_ingest(session, chunk.len(), shared)?;
            apply_chunk_faults(shared, &mut chunk);
            if seq == 0 {
                return Err(ServerError::protocol("ingest sequence numbers are 1-based"));
            }
            // The sequence check and the ingest it guards happen under
            // one lock acquisition, so two connections replaying the same
            // chunk cannot both apply it.
            session.with_state(|state| {
                let engine = state.engine.as_mut().ok_or_else(drained)?;
                if seq <= state.last_seq {
                    shared.durability.dedup_total.incr();
                    return Ok(Response::Ingested {
                        events: engine.events(),
                        intervals: engine.intervals(),
                    });
                }
                if seq != state.last_seq + 1 {
                    return Err(ServerError::Remote {
                        code: ErrorCode::BadRequest,
                        message: format!(
                            "ingest sequence gap: got {seq}, expected {}",
                            state.last_seq + 1
                        ),
                    });
                }
                reject_trailing_bytes(&chunk)?;
                let decode_started = Instant::now();
                let events_before = engine.events();
                let intervals_before = engine.intervals();
                let consumed = engine.ingest_chunk(&chunk)?;
                let handoff = engine.take_handoff_time();
                let decode_elapsed = decode_started.elapsed();
                shared.metrics.chunk_decode.record_duration(decode_elapsed);
                trace.add(STAGE_DISPATCH, handoff);
                trace.add(STAGE_INGEST, decode_elapsed.saturating_sub(handoff));
                debug_assert_eq!(
                    consumed,
                    chunk.len(),
                    "pre-checked by reject_trailing_bytes"
                );
                let after = engine.intervals();
                let ingested = engine.events() - events_before;
                shared
                    .metrics
                    .intervals_completed
                    .add(after - intervals_before);
                shared.metrics.chunks_ingested.incr();
                shared.metrics.events_ingested.add(ingested);
                shared
                    .tenancy
                    .events_ingested
                    .add(&session.tenant, ingested);
                shared
                    .tenancy
                    .bytes_ingested
                    .add(&session.tenant, chunk.len() as u64);
                state.last_seq = seq;
                Ok(Response::Ingested {
                    events: engine.events(),
                    intervals: after,
                })
            })
        }
        Request::Resume => {
            let session = require_attached(attached, shared)?;
            let last_seq = session.with_state(|state| Ok(state.last_seq))?;
            Ok(Response::Resume { last_seq })
        }
        Request::Cut => {
            let session = require_attached(attached, shared)?;
            let profile = session.with_engine(|engine| {
                let before = engine.intervals();
                let profile = engine.cut()?;
                shared
                    .metrics
                    .intervals_completed
                    .add(engine.intervals() - before);
                Ok(profile)
            })?;
            Ok(match profile {
                Some(profile) => Response::Profile(ProfileData::from_profile(&profile)),
                None => Response::NoProfile,
            })
        }
        Request::Snapshot { interval } => {
            let session = require_attached(attached, shared)?;
            let profile = session.with_engine(|engine| {
                let profiles = engine.profiles()?;
                let index = if interval == u64::MAX {
                    profiles.len().checked_sub(1)
                } else {
                    usize::try_from(interval).ok()
                };
                Ok(index
                    .and_then(|i| profiles.get(i))
                    .map(ProfileData::from_profile))
            })?;
            Ok(match profile {
                Some(profile) => Response::Profile(profile),
                None => Response::NoProfile,
            })
        }
        Request::TopK { n } => {
            let session = require_attached(attached, shared)?;
            let candidates = session.with_engine(|engine| Ok(engine.top_k(n as usize)?))?;
            Ok(Response::TopK(candidates))
        }
        Request::ListSessions => {
            let sessions: Vec<(String, Arc<Session>)> = {
                let registry = shared.sessions.lock().expect("registry lock poisoned");
                registry
                    .iter()
                    .map(|(name, session)| (name.clone(), Arc::clone(session)))
                    .collect()
            };
            let mut infos: Vec<SessionInfo> = Vec::with_capacity(sessions.len());
            for (name, session) in sessions {
                // A session drained mid-listing is omitted, not an error.
                if let Ok(info) = session.info(&name) {
                    infos.push(info);
                }
            }
            infos.sort_by(|a, b| a.name.cmp(&b.name));
            Ok(Response::SessionList {
                sessions: infos,
                upstreams: Vec::new(),
            })
        }
        Request::Stats => Ok(Response::Stats(shared.metrics.render())),
        Request::Metrics => Ok(Response::Metrics(
            shared.metrics.registry().render_prometheus(),
        )),
        Request::Traces => Ok(Response::Traces(shared.tracer.render_jsonl())),
        Request::CloseSession => {
            let hold = attached.take().ok_or_else(|| {
                ServerError::protocol("close-session requires an attached session")
            })?;
            shared
                .sessions
                .lock()
                .expect("registry lock poisoned")
                .remove(&hold.name);
            hold.session.drain();
            // The session was destroyed on purpose; it must not resurrect
            // on the next restart.
            if let Some(dir) = &shared.config.state_dir {
                let _ = std::fs::remove_file(snapshot_path(dir, &hold.name));
            }
            shared.metrics.sessions_closed.incr();
            Ok(Response::Done)
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Ok(Response::Done)
        }
    }
}

/// Admission control for ingest: sheds with a typed `Overloaded` response
/// once live connections exceed the watermark. The shed is explicit and
/// cheap — the alternative is queueing work the engine cannot keep up
/// with until memory or latency gives out.
fn ingest_admission(shared: &Shared) -> Result<(), ServerError> {
    let live = shared.metrics.connections_active.get();
    if live > shared.config.overload_connection_watermark as u64 {
        shared.durability.shed_total.incr();
        return Err(ServerError::Remote {
            code: ErrorCode::Overloaded,
            message: "server is over its load watermark; back off and retry".into(),
        });
    }
    Ok(())
}

/// Consults the armed fault plan (if any) for this chunk: may flip one
/// byte in place (caught downstream by the chunk CRC) and/or stall the
/// consumer. Disarmed or absent plans cost one branch.
fn apply_chunk_faults(shared: &Shared, chunk: &mut [u8]) {
    if let Some(hook) = &shared.config.fault_hook {
        let fault = hook.on_ingest_chunk(chunk);
        if let Some(pause) = fault.stall {
            std::thread::sleep(pause);
        }
    }
}

/// Rejects an ingest buffer with bytes beyond its one declared chunk,
/// *before* anything reaches the engine: the error is a protocol error the
/// client will retry, so a half-applied chunk would double-ingest every
/// event (and skew the ingest counters, which the error path skips).
///
/// Only the trailing-garbage case is decided here, from the header's
/// declared length alone. Every other malformed-header shape (truncated,
/// implausible sizes, payload shorter than declared) is left to the
/// decoder's own gauntlet, which also fires before any record is ingested
/// and keeps its existing error codes.
fn reject_trailing_bytes(chunk: &[u8]) -> Result<(), ServerError> {
    if declared_chunk_len(chunk).is_ok_and(|len| len < chunk.len()) {
        return Err(ServerError::protocol("trailing bytes after ingest chunk"));
    }
    Ok(())
}

/// The attached session, freshly touched — every session-targeted request
/// resets its place in the LRU eviction order.
fn require_attached<'a>(
    attached: &'a Option<Attachment>,
    shared: &Shared,
) -> Result<&'a Arc<Session>, ServerError> {
    let hold = attached.as_ref().ok_or_else(|| {
        ServerError::protocol("this request requires an open or attached session")
    })?;
    hold.session.touch(shared);
    Ok(&hold.session)
}

/// Charges an ingest chunk against the session tenant's bytes/s budget.
/// The charge lands on arrival — the bytes crossed the wire whether or
/// not the chunk later turns out to be a replay.
fn charge_tenant_ingest(
    session: &Session,
    bytes: usize,
    shared: &Shared,
) -> Result<(), ServerError> {
    if shared.tenancy.charge_ingest(&session.tenant, bytes as u64) {
        return Ok(());
    }
    shared.tenancy.quota_rejections.incr(&session.tenant);
    Err(ServerError::Remote {
        code: ErrorCode::QuotaExceeded,
        message: format!(
            "tenant {:?} is over its ingest byte budget; back off and retry",
            session.tenant
        ),
    })
}

/// Finds a live session by name; on a miss with a state dir configured,
/// tries to restore it from its on-disk checkpoint — the other half of
/// budget eviction, which checkpoints before it drains.
fn lookup_or_restore(name: &str, shared: &Shared) -> Result<Arc<Session>, ServerError> {
    let lookup = || {
        shared
            .sessions
            .lock()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
    };
    if let Some(session) = lookup() {
        return Ok(session);
    }
    if let Some(dir) = &shared.config.state_dir {
        if let Ok(bytes) = std::fs::read(snapshot_path(dir, name)) {
            if restore_one(&bytes, shared).is_ok() {
                shared.durability.restore_total.incr();
                shared.metrics.sessions_opened.incr();
            }
            // Re-lookup either way: losing a restore race to a concurrent
            // attach is success, not corruption.
            if let Some(session) = lookup() {
                return Ok(session);
            }
            shared.durability.restore_errors_total.incr();
        }
    }
    Err(ServerError::Remote {
        code: ErrorCode::UnknownSession,
        message: format!("no session named {name:?}"),
    })
}
