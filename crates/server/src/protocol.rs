//! The wire protocol spoken between `mhp-client` and `mhp-server`.
//!
//! ## Framing
//!
//! Every message in either direction is one *frame*:
//!
//! ```text
//! ┌───────────────┬──────────────────────────┐
//! │ len: u32 (LE) │ body: len bytes          │
//! └───────────────┴──────────────────────────┘
//! ```
//!
//! A request body is an opcode byte followed by an opcode-specific payload;
//! a response body is a tag byte followed by a tag-specific payload, so a
//! client can decode any response without remembering what it asked.
//! Integers are little-endian throughout, matching the trace format.
//! Frames are bounded by [`MAX_FRAME_BYTES`]; an oversized declared length
//! is a protocol error, rejected before any allocation.
//!
//! Ingest reuses the trace chunk encoding verbatim: an [`Request::Ingest`]
//! payload is exactly one [`mhp_pipeline::encode_chunk`] chunk, so a
//! recorded trace file can be replayed onto a server chunk by chunk without
//! re-encoding (and the CRC travels with the data, end to end).

use std::io::{Read, Write};

use mhp_core::{Candidate, Tuple};

use crate::error::{ErrorCode, ServerError};

/// Hard upper bound on a frame body, request or response. Slightly above
/// [`mhp_pipeline::MAX_CHUNK_BYTES`] so a maximal ingest chunk still fits
/// with its opcode byte.
pub const MAX_FRAME_BYTES: usize = mhp_pipeline::MAX_CHUNK_BYTES + 64;

/// Which profiler architecture a session runs; the wire form of
/// [`mhp_pipeline::ProfilerSpec`] (always the paper's best configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfilerKind {
    /// Multi-hash profiler, §6 best configuration.
    MultiHash,
    /// Single-table baseline, §5 best configuration.
    SingleHash,
    /// Exact reference profiler.
    Perfect,
}

impl ProfilerKind {
    /// Wire encoding of the kind.
    pub fn as_u8(self) -> u8 {
        match self {
            ProfilerKind::MultiHash => 0,
            ProfilerKind::SingleHash => 1,
            ProfilerKind::Perfect => 2,
        }
    }

    /// Decodes a wire kind byte.
    pub fn from_u8(value: u8) -> Option<Self> {
        match value {
            0 => Some(ProfilerKind::MultiHash),
            1 => Some(ProfilerKind::SingleHash),
            2 => Some(ProfilerKind::Perfect),
            _ => None,
        }
    }

    /// The kind's lowercase name, matching [`mhp_pipeline::ProfilerSpec`].
    pub fn name(self) -> &'static str {
        match self {
            ProfilerKind::MultiHash => "multi-hash",
            ProfilerKind::SingleHash => "single-hash",
            ProfilerKind::Perfect => "perfect",
        }
    }

    /// The engine-side spec this kind names.
    pub fn spec(self) -> mhp_pipeline::ProfilerSpec {
        match self {
            ProfilerKind::MultiHash => {
                mhp_pipeline::ProfilerSpec::MultiHash(mhp_core::MultiHashConfig::best())
            }
            ProfilerKind::SingleHash => {
                mhp_pipeline::ProfilerSpec::SingleHash(mhp_core::SingleHashConfig::best())
            }
            ProfilerKind::Perfect => mhp_pipeline::ProfilerSpec::Perfect,
        }
    }
}

impl std::str::FromStr for ProfilerKind {
    type Err = ServerError;

    fn from_str(s: &str) -> Result<Self, ServerError> {
        match s {
            "multi-hash" | "multihash" => Ok(ProfilerKind::MultiHash),
            "single-hash" | "singlehash" => Ok(ProfilerKind::SingleHash),
            "perfect" => Ok(ProfilerKind::Perfect),
            _ => Err(ServerError::protocol(
                "unknown profiler (expected multi-hash, single-hash or perfect)",
            )),
        }
    }
}

/// Everything needed to build a session's engine; carried by
/// [`Request::Open`] and echoed back in [`Response::Session`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Profiler architecture each shard runs.
    pub kind: ProfilerKind,
    /// Shard (worker thread) count.
    pub shards: u16,
    /// Global interval length, in events.
    pub interval_len: u64,
    /// Candidate threshold as a fraction of the interval.
    pub threshold: f64,
    /// Hash seed for the shard profilers.
    pub seed: u64,
}

impl SessionConfig {
    /// A small default: multi-hash, 1 shard, 10 000-event intervals, 1 %.
    pub fn default_multi_hash() -> Self {
        SessionConfig {
            kind: ProfilerKind::MultiHash,
            shards: 1,
            interval_len: 10_000,
            threshold: 0.01,
            seed: 0xCAFE,
        }
    }
}

/// Summary of a live session, echoed on open/attach.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionInfo {
    /// The session's registry name.
    pub name: String,
    /// The configuration the session was opened with.
    pub config: SessionConfig,
    /// Events ingested so far.
    pub events: u64,
    /// Intervals completed so far.
    pub intervals: u64,
}

/// The circuit-breaker phase an aggregator's upstream supervisor is in,
/// as carried in [`UpstreamHealth`]. Mirrors the supervisor state machine
/// (DESIGN §18) without this crate depending on the aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPhase {
    /// Pulling normally.
    Closed,
    /// Quarantined: pulls are skipped until the quarantine elapses.
    Open,
    /// Quarantine elapsed: the next pull is a trial probe.
    HalfOpen,
}

impl BreakerPhase {
    /// Wire byte for this phase.
    pub fn as_u8(self) -> u8 {
        match self {
            BreakerPhase::Closed => 0,
            BreakerPhase::Open => 1,
            BreakerPhase::HalfOpen => 2,
        }
    }

    /// Decodes a wire byte.
    pub fn from_u8(byte: u8) -> Option<BreakerPhase> {
        match byte {
            0 => Some(BreakerPhase::Closed),
            1 => Some(BreakerPhase::Open),
            2 => Some(BreakerPhase::HalfOpen),
            _ => None,
        }
    }

    /// Stable lowercase name, for `stats` text and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            BreakerPhase::Closed => "closed",
            BreakerPhase::Open => "open",
            BreakerPhase::HalfOpen => "half-open",
        }
    }
}

/// Per-upstream health as reported by an aggregator in its session
/// listing, so parents and dashboards can see which children are stale
/// without scraping metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpstreamHealth {
    /// The upstream's address, as configured.
    pub addr: String,
    /// Whether the last completed pull attempt succeeded.
    pub healthy: bool,
    /// Circuit-breaker phase of the upstream's supervisor.
    pub phase: BreakerPhase,
    /// Pull cycles since this upstream last completed a pull (equals the
    /// total cycle count if it never has).
    pub staleness_cycles: u64,
    /// Aggregator epoch at the last successful pull (`u64::MAX` if it has
    /// never succeeded).
    pub last_success_epoch: u64,
    /// Consecutive failed pull attempts (resets on success).
    pub consecutive_failures: u64,
}

/// A profile on the wire: one completed (or force-cut) interval.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileData {
    /// Zero-based index of the interval.
    pub interval_index: u64,
    /// Interval length the profile was cut under.
    pub interval_len: u64,
    /// Candidate threshold fraction.
    pub threshold: f64,
    /// Candidates, hottest first.
    pub candidates: Vec<Candidate>,
}

impl ProfileData {
    /// Flattens an engine profile for the wire.
    pub fn from_profile(profile: &mhp_core::IntervalProfile) -> Self {
        ProfileData {
            interval_index: profile.interval_index(),
            interval_len: profile.config().interval_len(),
            threshold: profile.config().threshold_fraction(),
            candidates: profile.candidates().to_vec(),
        }
    }
}

/// A client request. See the module docs for framing.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Creates a named session and attaches this connection to it.
    Open {
        /// Registry name; at most [`MAX_NAME_BYTES`] UTF-8 bytes.
        name: String,
        /// Engine configuration for the session.
        config: SessionConfig,
    },
    /// Attaches this connection to an existing named session.
    Attach {
        /// Registry name of the session.
        name: String,
    },
    /// Feeds one trace chunk ([`mhp_pipeline::encode_chunk`] bytes) into
    /// the attached session.
    Ingest {
        /// The encoded chunk, header included.
        chunk: Vec<u8>,
    },
    /// Like [`Request::Ingest`], but sequence-numbered for idempotent
    /// resume: the session remembers the highest contiguous sequence it
    /// has applied, a replayed (`seq <= last`) chunk is acknowledged
    /// without being re-applied, and a gap (`seq > last + 1`) is rejected.
    /// Sequences are 1-based per session.
    IngestSeq {
        /// This chunk's 1-based sequence number.
        seq: u64,
        /// The encoded chunk, header included.
        chunk: Vec<u8>,
    },
    /// Asks the attached session for the last sequence number it has
    /// applied, so a reconnecting client knows where to replay from.
    Resume,
    /// Forces the attached session's global interval to end now.
    Cut,
    /// Fetches the merged profile of one completed interval;
    /// `u64::MAX` means the latest.
    Snapshot {
        /// Interval index, or `u64::MAX` for the most recent.
        interval: u64,
    },
    /// The hottest `n` tuples of the current partial interval.
    TopK {
        /// How many tuples to return.
        n: u32,
    },
    /// Server metrics as text.
    Stats,
    /// Server, engine and sketch metrics in Prometheus text exposition
    /// format.
    Metrics,
    /// Sampled request traces with per-stage timing breakdowns, as JSONL
    /// (see [`Response::Traces`]). Requires no attached session.
    Traces,
    /// Lists every live session on the server (sorted by name), so an
    /// aggregator can discover what to pull without static configuration.
    /// Requires no attached session.
    ListSessions,
    /// Destroys the attached session and detaches.
    CloseSession,
    /// Asks the server to shut down gracefully.
    Shutdown,
}

/// Maximum session-name length on the wire, in bytes.
pub const MAX_NAME_BYTES: usize = 256;

const OP_OPEN: u8 = 0x01;
const OP_ATTACH: u8 = 0x02;
const OP_INGEST: u8 = 0x03;
const OP_CUT: u8 = 0x04;
const OP_SNAPSHOT: u8 = 0x05;
const OP_TOPK: u8 = 0x06;
const OP_STATS: u8 = 0x07;
const OP_CLOSE_SESSION: u8 = 0x08;
const OP_SHUTDOWN: u8 = 0x09;
const OP_METRICS: u8 = 0x0A;
const OP_INGEST_SEQ: u8 = 0x0B;
const OP_RESUME: u8 = 0x0C;
const OP_LIST_SESSIONS: u8 = 0x0D;
const OP_TRACES: u8 = 0x0E;

/// A server response. The leading tag byte makes every response
/// self-describing.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request succeeded and has no payload.
    Done,
    /// A session was opened or attached.
    Session(SessionInfo),
    /// A chunk was ingested; running session totals follow.
    Ingested {
        /// Events ingested by the session so far.
        events: u64,
        /// Intervals completed by the session so far.
        intervals: u64,
    },
    /// A merged interval profile.
    Profile(ProfileData),
    /// The requested interval does not exist (yet).
    NoProfile,
    /// The hottest tuples of the current partial interval.
    TopK(Vec<Candidate>),
    /// The last sequence number the attached session has applied (`0` if
    /// no sequenced chunk has ever been ingested).
    Resume {
        /// Highest contiguous applied sequence number.
        last_seq: u64,
    },
    /// Every live session, sorted by name.
    SessionList {
        /// The sessions.
        sessions: Vec<SessionInfo>,
        /// Per-upstream supervisor health, when the answering node is an
        /// aggregator. Leaf servers report none, and an empty list is
        /// omitted from the wire encoding entirely, so their listings are
        /// byte-identical to the pre-health protocol.
        upstreams: Vec<UpstreamHealth>,
    },
    /// Server metrics, one `key value` per line.
    Stats(String),
    /// Server metrics in Prometheus text exposition format.
    Metrics(String),
    /// Stage-attributed request traces as JSONL: one `stage_summary` line
    /// per stage (p50/p99/p999 in microseconds) followed by one `trace`
    /// line per sampled request, each carrying every stage field.
    Traces(String),
    /// The request failed.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

const TAG_DONE: u8 = 0x00;
const TAG_SESSION: u8 = 0x01;
const TAG_INGESTED: u8 = 0x02;
const TAG_PROFILE: u8 = 0x03;
const TAG_NO_PROFILE: u8 = 0x04;
const TAG_TOPK: u8 = 0x05;
const TAG_STATS: u8 = 0x06;
const TAG_METRICS: u8 = 0x07;
const TAG_RESUME: u8 = 0x08;
const TAG_SESSION_LIST: u8 = 0x09;
const TAG_TRACES: u8 = 0x0A;
const TAG_ERROR: u8 = 0x7F;

// ---------------------------------------------------------------- encoding

/// Little-endian byte-cursor over a frame body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServerError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| ServerError::protocol("frame body is truncated"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ServerError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ServerError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, ServerError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ServerError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, ServerError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn name(&mut self) -> Result<String, ServerError> {
        let len = self.u16()? as usize;
        if len > MAX_NAME_BYTES {
            return Err(ServerError::protocol("session name is too long"));
        }
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| ServerError::protocol("session name is not utf-8"))
    }

    fn rest(&mut self) -> &'a [u8] {
        let slice = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        slice
    }

    fn finish(&self) -> Result<(), ServerError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(ServerError::protocol("frame body has trailing bytes"))
        }
    }
}

fn push_name(out: &mut Vec<u8>, name: &str) {
    debug_assert!(name.len() <= MAX_NAME_BYTES);
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
}

fn push_candidates(out: &mut Vec<u8>, candidates: &[Candidate]) {
    out.extend_from_slice(&(candidates.len() as u32).to_le_bytes());
    for c in candidates {
        out.extend_from_slice(&c.tuple.pc().as_u64().to_le_bytes());
        out.extend_from_slice(&c.tuple.value().as_u64().to_le_bytes());
        out.extend_from_slice(&c.count.to_le_bytes());
    }
}

fn push_session_info(out: &mut Vec<u8>, info: &SessionInfo) {
    push_name(out, &info.name);
    out.push(info.config.kind.as_u8());
    out.extend_from_slice(&info.config.shards.to_le_bytes());
    out.extend_from_slice(&info.config.interval_len.to_le_bytes());
    out.extend_from_slice(&info.config.threshold.to_le_bytes());
    out.extend_from_slice(&info.config.seed.to_le_bytes());
    out.extend_from_slice(&info.events.to_le_bytes());
    out.extend_from_slice(&info.intervals.to_le_bytes());
}

/// Smallest possible encoded [`SessionInfo`]: empty name plus the fixed
/// fields. Used to reject lying list counts before allocating.
const MIN_SESSION_INFO_BYTES: usize = 2 + 1 + 2 + 8 * 5;

fn push_upstream_health(out: &mut Vec<u8>, health: &UpstreamHealth) {
    push_name(out, &health.addr);
    out.push(u8::from(health.healthy));
    out.push(health.phase.as_u8());
    out.extend_from_slice(&health.staleness_cycles.to_le_bytes());
    out.extend_from_slice(&health.last_success_epoch.to_le_bytes());
    out.extend_from_slice(&health.consecutive_failures.to_le_bytes());
}

/// Smallest possible encoded [`UpstreamHealth`]: empty addr plus the
/// fixed fields.
const MIN_UPSTREAM_HEALTH_BYTES: usize = 2 + 1 + 1 + 8 * 3;

fn read_upstream_health(cursor: &mut Cursor<'_>) -> Result<UpstreamHealth, ServerError> {
    let addr = cursor.name()?;
    let healthy = match cursor.u8()? {
        0 => false,
        1 => true,
        _ => return Err(ServerError::protocol("bad healthy flag")),
    };
    let phase = BreakerPhase::from_u8(cursor.u8()?)
        .ok_or_else(|| ServerError::protocol("unknown breaker phase"))?;
    Ok(UpstreamHealth {
        addr,
        healthy,
        phase,
        staleness_cycles: cursor.u64()?,
        last_success_epoch: cursor.u64()?,
        consecutive_failures: cursor.u64()?,
    })
}

fn read_session_info(cursor: &mut Cursor<'_>) -> Result<SessionInfo, ServerError> {
    let name = cursor.name()?;
    let kind = ProfilerKind::from_u8(cursor.u8()?)
        .ok_or_else(|| ServerError::protocol("unknown profiler kind"))?;
    Ok(SessionInfo {
        name,
        config: SessionConfig {
            kind,
            shards: cursor.u16()?,
            interval_len: cursor.u64()?,
            threshold: cursor.f64()?,
            seed: cursor.u64()?,
        },
        events: cursor.u64()?,
        intervals: cursor.u64()?,
    })
}

fn read_candidates(cursor: &mut Cursor<'_>) -> Result<Vec<Candidate>, ServerError> {
    let count = cursor.u32()? as usize;
    // 24 bytes per candidate must actually be present — reject a lying
    // count before allocating for it.
    if count > cursor.bytes.len().saturating_sub(cursor.pos) / 24 {
        return Err(ServerError::protocol("candidate count exceeds frame"));
    }
    let mut candidates = Vec::with_capacity(count);
    for _ in 0..count {
        let pc = cursor.u64()?;
        let value = cursor.u64()?;
        let count = cursor.u64()?;
        candidates.push(Candidate::new(Tuple::new(pc, value), count));
    }
    Ok(candidates)
}

impl Request {
    /// Encodes the request into a frame body (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Open { name, config } => {
                out.push(OP_OPEN);
                push_name(&mut out, name);
                out.push(config.kind.as_u8());
                out.extend_from_slice(&config.shards.to_le_bytes());
                out.extend_from_slice(&config.interval_len.to_le_bytes());
                out.extend_from_slice(&config.threshold.to_le_bytes());
                out.extend_from_slice(&config.seed.to_le_bytes());
            }
            Request::Attach { name } => {
                out.push(OP_ATTACH);
                push_name(&mut out, name);
            }
            Request::Ingest { chunk } => {
                out.push(OP_INGEST);
                out.extend_from_slice(chunk);
            }
            Request::IngestSeq { seq, chunk } => {
                out.push(OP_INGEST_SEQ);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(chunk);
            }
            Request::Resume => out.push(OP_RESUME),
            Request::Cut => out.push(OP_CUT),
            Request::Snapshot { interval } => {
                out.push(OP_SNAPSHOT);
                out.extend_from_slice(&interval.to_le_bytes());
            }
            Request::TopK { n } => {
                out.push(OP_TOPK);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Request::Stats => out.push(OP_STATS),
            Request::Metrics => out.push(OP_METRICS),
            Request::Traces => out.push(OP_TRACES),
            Request::ListSessions => out.push(OP_LIST_SESSIONS),
            Request::CloseSession => out.push(OP_CLOSE_SESSION),
            Request::Shutdown => out.push(OP_SHUTDOWN),
        }
        out
    }

    /// Decodes a frame body into a request.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadRequest`]-class [`ServerError`] on any malformed
    /// body: unknown opcode, truncation, trailing bytes, bad names.
    pub fn decode(body: &[u8]) -> Result<Request, ServerError> {
        let mut cursor = Cursor::new(body);
        let request = match cursor.u8()? {
            OP_OPEN => {
                let name = cursor.name()?;
                let kind = ProfilerKind::from_u8(cursor.u8()?)
                    .ok_or_else(|| ServerError::protocol("unknown profiler kind"))?;
                Request::Open {
                    name,
                    config: SessionConfig {
                        kind,
                        shards: cursor.u16()?,
                        interval_len: cursor.u64()?,
                        threshold: cursor.f64()?,
                        seed: cursor.u64()?,
                    },
                }
            }
            OP_ATTACH => Request::Attach {
                name: cursor.name()?,
            },
            OP_INGEST => Request::Ingest {
                chunk: cursor.rest().to_vec(),
            },
            OP_INGEST_SEQ => Request::IngestSeq {
                seq: cursor.u64()?,
                chunk: cursor.rest().to_vec(),
            },
            OP_RESUME => Request::Resume,
            OP_CUT => Request::Cut,
            OP_SNAPSHOT => Request::Snapshot {
                interval: cursor.u64()?,
            },
            OP_TOPK => Request::TopK { n: cursor.u32()? },
            OP_STATS => Request::Stats,
            OP_METRICS => Request::Metrics,
            OP_TRACES => Request::Traces,
            OP_LIST_SESSIONS => Request::ListSessions,
            OP_CLOSE_SESSION => Request::CloseSession,
            OP_SHUTDOWN => Request::Shutdown,
            op => {
                return Err(ServerError::protocol_owned(format!(
                    "unknown request opcode {op:#04x}"
                )))
            }
        };
        cursor.finish()?;
        Ok(request)
    }

    /// The request's stable lowercase opcode name — the label request
    /// traces are filed under.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Open { .. } => "open",
            Request::Attach { .. } => "attach",
            Request::Ingest { .. } => "ingest",
            Request::IngestSeq { .. } => "ingest_seq",
            Request::Resume => "resume",
            Request::Cut => "cut",
            Request::Snapshot { .. } => "snapshot",
            Request::TopK { .. } => "topk",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Traces => "traces",
            Request::ListSessions => "list_sessions",
            Request::CloseSession => "close_session",
            Request::Shutdown => "shutdown",
        }
    }
}

impl Response {
    /// Encodes the response into a frame body (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Done => out.push(TAG_DONE),
            Response::Session(info) => {
                out.push(TAG_SESSION);
                push_session_info(&mut out, info);
            }
            Response::SessionList {
                sessions,
                upstreams,
            } => {
                out.push(TAG_SESSION_LIST);
                out.extend_from_slice(&(sessions.len() as u32).to_le_bytes());
                for info in sessions {
                    push_session_info(&mut out, info);
                }
                // The health block is strictly optional on the wire: leaf
                // servers (empty list) encode nothing after the sessions,
                // keeping their listings decodable by pre-health clients.
                if !upstreams.is_empty() {
                    out.extend_from_slice(&(upstreams.len() as u32).to_le_bytes());
                    for health in upstreams {
                        push_upstream_health(&mut out, health);
                    }
                }
            }
            Response::Ingested { events, intervals } => {
                out.push(TAG_INGESTED);
                out.extend_from_slice(&events.to_le_bytes());
                out.extend_from_slice(&intervals.to_le_bytes());
            }
            Response::Profile(profile) => {
                out.push(TAG_PROFILE);
                out.extend_from_slice(&profile.interval_index.to_le_bytes());
                out.extend_from_slice(&profile.interval_len.to_le_bytes());
                out.extend_from_slice(&profile.threshold.to_le_bytes());
                push_candidates(&mut out, &profile.candidates);
            }
            Response::NoProfile => out.push(TAG_NO_PROFILE),
            Response::TopK(candidates) => {
                out.push(TAG_TOPK);
                push_candidates(&mut out, candidates);
            }
            Response::Resume { last_seq } => {
                out.push(TAG_RESUME);
                out.extend_from_slice(&last_seq.to_le_bytes());
            }
            Response::Stats(text) => {
                out.push(TAG_STATS);
                out.extend_from_slice(&(text.len() as u32).to_le_bytes());
                out.extend_from_slice(text.as_bytes());
            }
            Response::Metrics(text) => {
                out.push(TAG_METRICS);
                out.extend_from_slice(&(text.len() as u32).to_le_bytes());
                out.extend_from_slice(text.as_bytes());
            }
            Response::Traces(text) => {
                out.push(TAG_TRACES);
                out.extend_from_slice(&(text.len() as u32).to_le_bytes());
                out.extend_from_slice(text.as_bytes());
            }
            Response::Error { code, message } => {
                out.push(TAG_ERROR);
                out.push(code.as_u8());
                let message = &message.as_bytes()[..message.len().min(u16::MAX as usize)];
                out.extend_from_slice(&(message.len() as u16).to_le_bytes());
                out.extend_from_slice(message);
            }
        }
        out
    }

    /// Decodes a frame body into a response.
    ///
    /// # Errors
    ///
    /// A protocol-class [`ServerError`] on any malformed body.
    pub fn decode(body: &[u8]) -> Result<Response, ServerError> {
        let mut cursor = Cursor::new(body);
        let response = match cursor.u8()? {
            TAG_DONE => Response::Done,
            TAG_SESSION => Response::Session(read_session_info(&mut cursor)?),
            TAG_SESSION_LIST => {
                let count = cursor.u32()? as usize;
                if count > cursor.bytes.len().saturating_sub(cursor.pos) / MIN_SESSION_INFO_BYTES {
                    return Err(ServerError::protocol("session count exceeds frame"));
                }
                let mut sessions = Vec::with_capacity(count);
                for _ in 0..count {
                    sessions.push(read_session_info(&mut cursor)?);
                }
                // Optional trailing health block (aggregators only).
                let mut upstreams = Vec::new();
                if cursor.pos < cursor.bytes.len() {
                    let count = cursor.u32()? as usize;
                    if count
                        > cursor.bytes.len().saturating_sub(cursor.pos) / MIN_UPSTREAM_HEALTH_BYTES
                    {
                        return Err(ServerError::protocol("upstream count exceeds frame"));
                    }
                    upstreams.reserve(count);
                    for _ in 0..count {
                        upstreams.push(read_upstream_health(&mut cursor)?);
                    }
                }
                Response::SessionList {
                    sessions,
                    upstreams,
                }
            }
            TAG_INGESTED => Response::Ingested {
                events: cursor.u64()?,
                intervals: cursor.u64()?,
            },
            TAG_PROFILE => Response::Profile(ProfileData {
                interval_index: cursor.u64()?,
                interval_len: cursor.u64()?,
                threshold: cursor.f64()?,
                candidates: read_candidates(&mut cursor)?,
            }),
            TAG_NO_PROFILE => Response::NoProfile,
            TAG_TOPK => Response::TopK(read_candidates(&mut cursor)?),
            TAG_RESUME => Response::Resume {
                last_seq: cursor.u64()?,
            },
            TAG_STATS => {
                let len = cursor.u32()? as usize;
                Response::Stats(
                    String::from_utf8(cursor.take(len)?.to_vec())
                        .map_err(|_| ServerError::protocol("stats text is not utf-8"))?,
                )
            }
            TAG_METRICS => {
                let len = cursor.u32()? as usize;
                Response::Metrics(
                    String::from_utf8(cursor.take(len)?.to_vec())
                        .map_err(|_| ServerError::protocol("metrics text is not utf-8"))?,
                )
            }
            TAG_TRACES => {
                let len = cursor.u32()? as usize;
                Response::Traces(
                    String::from_utf8(cursor.take(len)?.to_vec())
                        .map_err(|_| ServerError::protocol("traces text is not utf-8"))?,
                )
            }
            TAG_ERROR => {
                let code = ErrorCode::from_u8(cursor.u8()?);
                let len = cursor.u16()? as usize;
                Response::Error {
                    code,
                    message: String::from_utf8_lossy(cursor.take(len)?).into_owned(),
                }
            }
            tag => {
                return Err(ServerError::protocol_owned(format!(
                    "unknown response tag {tag:#04x}"
                )))
            }
        };
        cursor.finish()?;
        Ok(response)
    }
}

// ----------------------------------------------------------------- framing

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// I/O failures from the writer; an over-[`MAX_FRAME_BYTES`] body is a
/// protocol error (nothing is written).
pub fn write_frame(writer: &mut impl Write, body: &[u8]) -> Result<(), ServerError> {
    if body.len() > MAX_FRAME_BYTES {
        return Err(ServerError::protocol("frame body exceeds MAX_FRAME_BYTES"));
    }
    writer.write_all(&(body.len() as u32).to_le_bytes())?;
    writer.write_all(body)?;
    writer.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame body. Returns `None` on a clean EOF at
/// a frame boundary (the peer hung up between requests).
///
/// # Errors
///
/// I/O failures (including read timeouts, surfaced as
/// [`std::io::ErrorKind::WouldBlock`] / `TimedOut`), a declared length
/// over [`MAX_FRAME_BYTES`] (rejected before allocation), or truncation
/// inside a frame.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Vec<u8>>, ServerError> {
    /// Consecutive mid-frame timeouts tolerated before the peer is
    /// declared stalled. With the server's read timeout this bounds a
    /// half-written frame to roughly a minute, instead of forever.
    const MAX_MID_FRAME_TIMEOUTS: u32 = 300;

    // Fills `buf` completely. `frame_started` distinguishes an idle
    // timeout at a frame boundary (surfaced to the caller, no bytes lost)
    // from a timeout mid-frame (retried here, because returning would
    // drop the bytes already consumed and desync the stream).
    let mut fill = |buf: &mut [u8],
                    mut frame_started: bool,
                    what: &'static str|
     -> Result<bool, ServerError> {
        let mut filled = 0;
        let mut timeouts = 0u32;
        while filled < buf.len() {
            match reader.read(&mut buf[filled..]) {
                Ok(0) if filled == 0 && !frame_started => return Ok(false), // clean EOF
                Ok(0) => return Err(ServerError::protocol(what)),
                Ok(n) => {
                    filled += n;
                    frame_started = true;
                    timeouts = 0;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if filled == 0 && !frame_started {
                        return Err(ServerError::Io(e)); // idle at a boundary
                    }
                    timeouts += 1;
                    if timeouts > MAX_MID_FRAME_TIMEOUTS {
                        return Err(ServerError::protocol("peer stalled mid-frame"));
                    }
                }
                Err(e) => return Err(ServerError::Io(e)),
            }
        }
        Ok(true)
    };

    let mut len_bytes = [0u8; 4];
    if !fill(&mut len_bytes, false, "frame truncated in length prefix")? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ServerError::protocol("peer declared an oversized frame"));
    }
    let mut body = vec![0u8; len];
    fill(&mut body, true, "frame truncated in body")?;
    Ok(Some(body))
}

/// Incremental frame decoder for nonblocking connections: bytes go in as
/// they arrive off the socket, complete frame bodies come out. This is the
/// event-loop counterpart of [`read_frame`] — where the blocking reader
/// parks the thread until a frame completes, the decoder buffers a partial
/// frame across readiness events and resumes mid-frame on the next one.
///
/// The declared length is validated against [`MAX_FRAME_BYTES`] as soon as
/// the 4-byte prefix is available, before the body is buffered, so an
/// attacker declaring a 4 GiB frame costs nothing.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Unconsumed bytes: zero or more complete frames followed by at most
    /// one partial frame. `pos` marks how far parsing has consumed;
    /// consumed prefix is reclaimed between pushes.
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder at a frame boundary.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Buffers `bytes` exactly as received off the wire.
    pub fn push(&mut self, bytes: &[u8]) {
        // Reclaim the consumed prefix before growing, so a long-lived
        // connection's buffer stays proportional to its unparsed bytes.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame body, or `None` when the buffered
    /// bytes end at a frame boundary or inside an incomplete frame.
    ///
    /// # Errors
    ///
    /// A protocol-class [`ServerError`] when the buffered length prefix
    /// declares a frame over [`MAX_FRAME_BYTES`]; the connection is
    /// unrecoverable past this point (the stream cannot be resynced).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ServerError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4")) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(ServerError::protocol("peer declared an oversized frame"));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let body = avail[4..4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(body))
    }

    /// True when the buffered bytes stop partway through a frame — a
    /// readiness event arriving now resumes mid-frame rather than starting
    /// a fresh one.
    pub fn mid_frame(&self) -> bool {
        !self.buf[self.pos..].is_empty()
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(request: Request) {
        let body = request.encode();
        assert_eq!(Request::decode(&body).unwrap(), request);
    }

    fn roundtrip_response(response: Response) {
        let body = response.encode();
        assert_eq!(Response::decode(&body).unwrap(), response);
    }

    #[test]
    fn requests_round_trip() {
        roundtrip_request(Request::Open {
            name: "gcc-run".into(),
            config: SessionConfig::default_multi_hash(),
        });
        roundtrip_request(Request::Attach { name: "x".into() });
        roundtrip_request(Request::Ingest {
            chunk: mhp_pipeline::encode_chunk(&[Tuple::new(1, 2), Tuple::new(3, 4)]),
        });
        roundtrip_request(Request::IngestSeq {
            seq: 17,
            chunk: mhp_pipeline::encode_chunk(&[Tuple::new(5, 6)]),
        });
        roundtrip_request(Request::Resume);
        roundtrip_request(Request::Cut);
        roundtrip_request(Request::Snapshot { interval: u64::MAX });
        roundtrip_request(Request::TopK { n: 10 });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::Traces);
        roundtrip_request(Request::ListSessions);
        roundtrip_request(Request::CloseSession);
        roundtrip_request(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        roundtrip_response(Response::Done);
        roundtrip_response(Response::Session(SessionInfo {
            name: "gcc-run".into(),
            config: SessionConfig {
                kind: ProfilerKind::Perfect,
                shards: 8,
                interval_len: 5_000,
                threshold: 0.001,
                seed: 7,
            },
            events: 123,
            intervals: 4,
        }));
        roundtrip_response(Response::Ingested {
            events: 10,
            intervals: 2,
        });
        roundtrip_response(Response::Profile(ProfileData {
            interval_index: 3,
            interval_len: 10_000,
            threshold: 0.01,
            candidates: vec![
                Candidate::new(Tuple::new(0x40, 7), 900),
                Candidate::new(Tuple::new(0x44, 9), 120),
            ],
        }));
        roundtrip_response(Response::NoProfile);
        roundtrip_response(Response::TopK(vec![Candidate::new(Tuple::new(1, 1), 1)]));
        roundtrip_response(Response::Resume { last_seq: 0 });
        roundtrip_response(Response::Resume { last_seq: u64::MAX });
        roundtrip_response(Response::Stats("requests_total 5\n".into()));
        roundtrip_response(Response::Metrics(
            "# TYPE server_requests_total counter\nserver_requests_total 5\n".into(),
        ));
        roundtrip_response(Response::Traces(
            "{\"type\":\"trace\",\"seq\":0,\"stages\":{\"frame_decode\":3}}\n".into(),
        ));
        roundtrip_response(Response::Error {
            code: ErrorCode::UnknownSession,
            message: "no session named gcc".into(),
        });
        let info = |name: &str, events: u64| SessionInfo {
            name: name.into(),
            config: SessionConfig::default_multi_hash(),
            events,
            intervals: events / 10_000,
        };
        roundtrip_response(Response::SessionList {
            sessions: Vec::new(),
            upstreams: Vec::new(),
        });
        roundtrip_response(Response::SessionList {
            sessions: vec![info("acme/web", 120_000), info("beta/batch", 5)],
            upstreams: Vec::new(),
        });
        roundtrip_response(Response::SessionList {
            sessions: vec![info("acme/web", 7)],
            upstreams: vec![
                UpstreamHealth {
                    addr: "10.0.0.1:7070".into(),
                    healthy: true,
                    phase: BreakerPhase::Closed,
                    staleness_cycles: 0,
                    last_success_epoch: 42,
                    consecutive_failures: 0,
                },
                UpstreamHealth {
                    addr: "10.0.0.2:7070".into(),
                    healthy: false,
                    phase: BreakerPhase::Open,
                    staleness_cycles: 17,
                    last_success_epoch: u64::MAX,
                    consecutive_failures: 9,
                },
            ],
        });
    }

    #[test]
    fn session_list_without_health_block_is_byte_stable() {
        // A leaf server's listing must not grow any trailing bytes: the
        // health block is encoded only when non-empty.
        let listing = Response::SessionList {
            sessions: vec![SessionInfo {
                name: "acme/web".into(),
                config: SessionConfig::default_multi_hash(),
                events: 10,
                intervals: 1,
            }],
            upstreams: Vec::new(),
        };
        let body = listing.encode();
        let expected_len = 1 + 4 + (2 + "acme/web".len() + 1 + 2 + 8 * 5);
        assert_eq!(body.len(), expected_len, "unexpected trailing bytes");
    }

    #[test]
    fn lying_upstream_health_count_is_rejected_without_allocation() {
        let mut body = Response::SessionList {
            sessions: Vec::new(),
            upstreams: Vec::new(),
        }
        .encode();
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Response::decode(&body).is_err());
    }

    #[test]
    fn breaker_phase_round_trips() {
        for phase in [
            BreakerPhase::Closed,
            BreakerPhase::Open,
            BreakerPhase::HalfOpen,
        ] {
            assert_eq!(BreakerPhase::from_u8(phase.as_u8()), Some(phase));
        }
        assert_eq!(BreakerPhase::from_u8(3), None);
    }

    #[test]
    fn lying_session_list_count_is_rejected_without_allocation() {
        let mut body = vec![TAG_SESSION_LIST];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Response::decode(&body).is_err());
    }

    #[test]
    fn unknown_opcodes_and_tags_are_rejected() {
        assert!(Request::decode(&[0xEE]).is_err());
        assert!(Response::decode(&[0x70]).is_err());
        assert!(Request::decode(&[]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = Request::Cut.encode();
        body.push(0);
        assert!(Request::decode(&body).is_err());
    }

    #[test]
    fn lying_candidate_count_is_rejected_without_allocation() {
        let mut body = vec![TAG_TOPK];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Response::decode(&body).is_err());
    }

    #[test]
    fn oversized_names_are_rejected() {
        let mut body = vec![OP_ATTACH];
        body.extend_from_slice(&u16::MAX.to_le_bytes());
        body.extend_from_slice(&[b'a'; 1024]);
        assert!(Request::decode(&body).is_err());
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Stats.encode()).unwrap();
        write_frame(&mut wire, &Request::Cut.encode()).unwrap();
        let mut reader = wire.as_slice();
        let first = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(Request::decode(&first).unwrap(), Request::Stats);
        let second = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(Request::decode(&second).unwrap(), Request::Cut);
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_declared_frame_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_frame(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn truncated_frames_are_errors_not_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Stats.encode()).unwrap();
        assert!(read_frame(&mut &wire[..2]).is_err(), "inside the prefix");
        assert!(
            read_frame(&mut &wire[..4]).is_err(),
            "prefix only, body missing"
        );
    }

    #[test]
    fn frame_decoder_pops_complete_frames_in_order() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Stats.encode()).unwrap();
        write_frame(&mut wire, &Request::Cut.encode()).unwrap();
        let mut decoder = FrameDecoder::new();
        decoder.push(&wire);
        assert_eq!(
            Request::decode(&decoder.next_frame().unwrap().unwrap()).unwrap(),
            Request::Stats
        );
        assert!(decoder.mid_frame());
        assert_eq!(
            Request::decode(&decoder.next_frame().unwrap().unwrap()).unwrap(),
            Request::Cut
        );
        assert!(decoder.next_frame().unwrap().is_none());
        assert!(!decoder.mid_frame(), "all bytes consumed: at a boundary");
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn frame_decoder_resumes_one_byte_drips() {
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &Request::Attach {
                name: "drip".into(),
            }
            .encode(),
        )
        .unwrap();
        let mut decoder = FrameDecoder::new();
        for byte in &wire {
            assert!(decoder.next_frame().unwrap().is_none());
            decoder.push(std::slice::from_ref(byte));
            assert!(decoder.mid_frame());
        }
        let body = decoder.next_frame().unwrap().unwrap();
        assert_eq!(
            Request::decode(&body).unwrap(),
            Request::Attach {
                name: "drip".into()
            }
        );
        assert!(!decoder.mid_frame());
    }

    #[test]
    fn frame_decoder_rejects_oversized_declared_length_before_buffering() {
        let mut decoder = FrameDecoder::new();
        decoder.push(&u32::MAX.to_le_bytes());
        assert!(decoder.next_frame().is_err());
    }

    /// Satellite property: framed requests split at arbitrary byte
    /// boundaries (including 1-byte drips) decode to exactly the frames
    /// that whole-frame delivery yields.
    #[test]
    fn frame_decoder_is_split_invariant() {
        proptest::run_cases("frame_decoder_is_split_invariant", 64, |rng| {
            // A random batch of requests, including large ingest chunks so
            // splits land mid-body, mid-prefix, everywhere.
            let mut requests = Vec::new();
            let count = 1 + rng.below(6) as usize;
            for _ in 0..count {
                let request = match rng.below(4) {
                    0 => Request::Stats,
                    1 => Request::TopK {
                        n: rng.below(100) as u32,
                    },
                    2 => Request::Attach {
                        name: format!("s-{}", rng.below(1000)),
                    },
                    _ => {
                        let events: Vec<Tuple> = (0..rng.below(500))
                            .map(|i| Tuple::new(i, rng.below(64)))
                            .collect();
                        Request::Ingest {
                            chunk: mhp_pipeline::encode_chunk(&events),
                        }
                    }
                };
                requests.push(request);
            }
            let mut wire = Vec::new();
            for request in &requests {
                write_frame(&mut wire, &request.encode()).unwrap();
            }

            // Whole-frame delivery: one push of the entire stream.
            let mut whole = FrameDecoder::new();
            whole.push(&wire);
            let mut expected = Vec::new();
            while let Some(body) = whole.next_frame().unwrap() {
                expected.push(body);
            }
            assert_eq!(expected.len(), requests.len());

            // Split delivery: random cut points, biased toward tiny drips.
            let mut split = FrameDecoder::new();
            let mut got = Vec::new();
            let mut offset = 0usize;
            while offset < wire.len() {
                let remaining = wire.len() - offset;
                let step = if rng.below(3) == 0 {
                    1 // 1-byte drip
                } else {
                    1 + rng.below(remaining.min(700) as u64) as usize
                };
                let step = step.min(remaining);
                split.push(&wire[offset..offset + step]);
                offset += step;
                while let Some(body) = split.next_frame().unwrap() {
                    got.push(body);
                }
            }
            assert_eq!(got, expected, "split delivery diverged");
            assert!(!split.mid_frame());
        });
    }
}
