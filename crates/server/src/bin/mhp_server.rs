//! `mhp-server` — serve the profiling service over TCP.
//!
//! ```text
//! mhp-server --addr 127.0.0.1:7070 [--max-conns 32] [--read-timeout-ms 200]
//!            [--write-timeout-ms 30000] [--event-loop] [--workers N]
//!            [--metrics-export PATH] [--metrics-export-interval-ms 10000]
//!            [--state-dir DIR] [--checkpoint-interval-ms 5000]
//!            [--overload-conns N] [--fault-plan SPEC] [--fault-seed N]
//! ```
//!
//! Prints `listening on ADDR` once bound (an ephemeral `:0` port resolves
//! to the real one), then serves until a client sends `shutdown`. With
//! `--state-dir`, sessions are checkpointed there periodically and
//! restored on the next start (`restored N session(s)` is printed).

use std::process::ExitCode;
use std::time::Duration;

use mhp_faults::FaultPlan;
use mhp_server::{Server, ServerConfig};

const USAGE: &str = "\
usage: mhp-server [options]

options:
  --addr A             listen address (default 127.0.0.1:7070; use :0 for
                       an ephemeral port)
  --max-conns N        concurrent connection limit (default 32 threaded,
                       10000 with --event-loop)
  --read-timeout-ms N  per-connection read timeout (default 200)
  --write-timeout-ms N per-connection write timeout in threaded mode
                       (default 30000); the event loop bounds writes with
                       its write buffer instead
  --event-loop         serve every connection from one readiness-based
                       reactor thread plus a small worker pool instead of
                       one thread per connection; required for thousands
                       of concurrent clients
  --workers N          sketch worker threads for --event-loop (default 2)
  --metrics-export P   append periodic JSONL metric snapshots to file P
                       (off by default; a final snapshot is written at
                       shutdown)
  --metrics-export-interval-ms N
                       snapshot period when --metrics-export is set
                       (default 10000)
  --state-dir D        checkpoint sessions to directory D and restore any
                       checkpoints found there on start (off by default)
  --checkpoint-interval-ms N
                       checkpoint period when --state-dir is set
                       (default 5000)
  --overload-conns N   shed ingest with a typed `overloaded` error once
                       more than N connections are live (default: never)
  --tenant-max-sessions N
                       live sessions one tenant (session-name prefix
                       before the first '/') may hold at once; opens past
                       it get a typed `quota-exceeded` error
                       (default: unlimited)
  --tenant-bytes-per-sec N
                       sustained ingest budget per tenant in bytes/s,
                       enforced as a token bucket with one second of
                       burst (default: unlimited)
  --memory-budget N    estimated session-memory ceiling in bytes; idle
                       sessions are checkpointed (with --state-dir) and
                       evicted, least recently used first, to stay under
                       it (default: never evict)
  --fault-plan SPEC    arm a deterministic fault plan for chaos testing,
                       e.g. conn-drop@3,corrupt-chunk@2 (kinds:
                       worker-panic, worker-stall, truncate-frame,
                       corrupt-chunk, conn-drop, slow-consumer)
  --fault-seed N       seed for the fault plan's randomness (default 0)";

fn run(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut config = ServerConfig::default();
    let mut fault_plan: Option<String> = None;
    let mut fault_seed = 0u64;
    let mut event_loop = false;
    let mut workers: Option<usize> = None;
    let mut max_conns_set = false;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("--{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = value("addr")?,
            "--max-conns" => {
                config.max_connections = value("max-conns")?
                    .parse()
                    .map_err(|_| "--max-conns needs a number".to_string())?;
                max_conns_set = true;
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("read-timeout-ms")?
                    .parse()
                    .map_err(|_| "--read-timeout-ms needs a number".to_string())?;
                config.read_timeout = Duration::from_millis(ms.max(1));
            }
            "--write-timeout-ms" => {
                let ms: u64 = value("write-timeout-ms")?
                    .parse()
                    .map_err(|_| "--write-timeout-ms needs a number".to_string())?;
                config.write_timeout = Duration::from_millis(ms.max(1));
            }
            "--event-loop" => event_loop = true,
            "--workers" => {
                workers = Some(
                    value("workers")?
                        .parse()
                        .map_err(|_| "--workers needs a number".to_string())?,
                );
            }
            "--metrics-export" => {
                config.metrics_export_path = Some(value("metrics-export")?.into());
            }
            "--metrics-export-interval-ms" => {
                let ms: u64 = value("metrics-export-interval-ms")?
                    .parse()
                    .map_err(|_| "--metrics-export-interval-ms needs a number".to_string())?;
                config.metrics_export_interval = Duration::from_millis(ms.max(1));
            }
            "--state-dir" => {
                config.state_dir = Some(value("state-dir")?.into());
            }
            "--checkpoint-interval-ms" => {
                let ms: u64 = value("checkpoint-interval-ms")?
                    .parse()
                    .map_err(|_| "--checkpoint-interval-ms needs a number".to_string())?;
                config.checkpoint_interval = Duration::from_millis(ms.max(1));
            }
            "--overload-conns" => {
                config.overload_connection_watermark = value("overload-conns")?
                    .parse()
                    .map_err(|_| "--overload-conns needs a number".to_string())?;
            }
            "--tenant-max-sessions" => {
                config.tenant_quotas.max_sessions = value("tenant-max-sessions")?
                    .parse()
                    .map_err(|_| "--tenant-max-sessions needs a number".to_string())?;
            }
            "--tenant-bytes-per-sec" => {
                config.tenant_quotas.max_bytes_per_sec = value("tenant-bytes-per-sec")?
                    .parse()
                    .map_err(|_| "--tenant-bytes-per-sec needs a number".to_string())?;
            }
            "--memory-budget" => {
                config.session_memory_budget = Some(
                    value("memory-budget")?
                        .parse()
                        .map_err(|_| "--memory-budget needs a number".to_string())?,
                );
            }
            "--fault-plan" => fault_plan = Some(value("fault-plan")?),
            "--fault-seed" => {
                fault_seed = value("fault-seed")?
                    .parse()
                    .map_err(|_| "--fault-seed needs a number".to_string())?;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if let Some(spec) = fault_plan {
        let plan = FaultPlan::parse(&spec, fault_seed).map_err(|e| e.to_string())?;
        config.fault_hook = Some(plan.arm());
    }
    if event_loop {
        let mut el = mhp_server::EventLoopConfig::default();
        if let Some(n) = workers {
            el.workers = n.max(1);
        }
        config.event_loop = Some(el);
        // One reactor thread holds every socket, so the sensible default
        // ceiling is "lots", not the threaded mode's thread-count guard.
        if !max_conns_set {
            config.max_connections = 10_000;
        }
    } else if workers.is_some() {
        return Err("--workers only applies with --event-loop".to_string());
    }

    let server = Server::bind(addr.as_str(), config).map_err(|e| e.to_string())?;
    // The smoke scripts scrape this exact line for the resolved port.
    println!("listening on {}", server.local_addr());
    if server.restored_sessions() > 0 {
        println!("restored {} session(s)", server.restored_sessions());
    }
    server.wait();
    println!("shut down cleanly");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mhp-server: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
