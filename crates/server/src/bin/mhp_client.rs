//! `mhp-client` — record to, query, verify and load-test an `mhp-server`.
//!
//! ```text
//! mhp-client record-and-send --addr A --session NAME --stream gcc:value:42 --events 100000
//! mhp-client query --addr A --session NAME --op topk --n 10
//! mhp-client loadgen --addr A --clients 8 --events 100000
//! mhp-client loadgen --addr A --sessions 2048 --active 64 --events 50000
//! mhp-client verify --addr A --stream gcc:value:42 --events 50000
//! mhp-client traces --addr A
//! mhp-client shutdown --addr A
//! ```

use std::process::ExitCode;
use std::str::FromStr;

use mhp_core::Tuple;
use mhp_pipeline::{EngineConfig, ShardedEngine};
use mhp_server::{
    loadgen, mux_loadgen, Client, LoadgenConfig, MuxConfig, ProfileData, ProfilerKind,
    ReconnectingClient, RetryPolicy, ServerError, SessionConfig,
};
use mhp_trace::StreamSpec;

const USAGE: &str = "\
usage: mhp-client <command> [options]

commands:
  record-and-send --addr A --session NAME [--stream B:K:S] [--events N]
                  [--profiler P] [--shards N] [--interval-len N]
                  [--threshold F] [--seed S] [--chunk-events N] [--close]
                  [--retries N]
  query           --addr A --session NAME --op OP [--n N] [--interval I]
                  (OP: snapshot, topk, cut, resume, stats, metrics,
                   sessions, close; stats, metrics and sessions are
                   server-wide, no --session)
  loadgen         --addr A [--clients N] [--events N] [--chunk-events N]
                  [--profiler P] [--shards N] [--interval-len N]
                  [--sessions N] [--active N] [--deadline-secs N]
                  (--sessions N switches to the multiplexed generator:
                   N concurrent sessions over nonblocking connections on
                   one thread, --active of them streaming --events each,
                   the rest idling attached — pair with a server running
                   --event-loop)
  verify          --addr A [--stream B:K:S] [--events N] [--profiler P]
                  [--shards N] [--interval-len N] [--threshold F] [--seed S]
                  [--retries N]
  traces          --addr A
                  (the server's request-trace stream as JSONL: per-stage
                   p50/p99/p999 summaries, then sampled slow/head traces)
  shutdown        --addr A

streams are benchmark:kind:seed, e.g. gcc:value:42 or li:edge:7
profilers: multi-hash (default), single-hash, perfect
defaults: --stream gcc:value:42 --events 100000 --profiler multi-hash
          --shards 1 --interval-len 10000 --threshold 0.01 --seed 51966
          --chunk-events 4096 --clients 8 --retries 0

--retries N > 0 streams with sequence-numbered chunks through a
reconnecting client: chunks are retained and replayed from the server's
resume point across disconnects or restarts, with exponential backoff.";

fn usage_error(msg: &str) -> ServerError {
    ServerError::protocol_owned(msg.to_string())
}

/// Hand-rolled flag parser: every option takes exactly one value, except
/// the listed boolean switches.
struct Options {
    pairs: Vec<(String, String)>,
}

const SWITCHES: &[&str] = &["close"];

impl Options {
    fn parse(args: &[String]) -> Result<Options, ServerError> {
        let mut pairs = Vec::new();
        let mut iter = args.iter().peekable();
        while let Some(flag) = iter.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(usage_error(&format!("unexpected argument {flag:?}")));
            };
            if SWITCHES.contains(&name) {
                pairs.push((name.to_string(), "true".to_string()));
                continue;
            }
            let Some(value) = iter.next() else {
                return Err(usage_error(&format!("--{name} needs a value")));
            };
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Options { pairs })
    }

    fn take(&mut self, name: &str) -> Option<String> {
        let idx = self.pairs.iter().position(|(n, _)| n == name)?;
        Some(self.pairs.remove(idx).1)
    }

    fn take_parsed<T: FromStr>(&mut self, name: &str, default: T) -> Result<T, ServerError> {
        match self.take(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| usage_error(&format!("invalid value {raw:?} for --{name}"))),
        }
    }

    fn require(&mut self, name: &str) -> Result<String, ServerError> {
        self.take(name)
            .ok_or_else(|| usage_error(&format!("--{name} is required")))
    }

    fn finish(self) -> Result<(), ServerError> {
        match self.pairs.first() {
            None => Ok(()),
            Some((name, _)) => Err(usage_error(&format!("unknown option --{name}"))),
        }
    }
}

fn session_config_from(opts: &mut Options) -> Result<SessionConfig, ServerError> {
    let kind: ProfilerKind = match opts.take("profiler") {
        None => ProfilerKind::MultiHash,
        Some(raw) => raw.parse()?,
    };
    Ok(SessionConfig {
        kind,
        shards: opts.take_parsed("shards", 1u16)?,
        interval_len: opts.take_parsed("interval-len", 10_000u64)?,
        threshold: opts.take_parsed("threshold", 0.01f64)?,
        seed: opts.take_parsed("seed", 51_966u64)?,
    })
}

fn stream_from(opts: &mut Options) -> Result<StreamSpec, ServerError> {
    let raw = opts
        .take("stream")
        .unwrap_or_else(|| "gcc:value:42".to_string());
    raw.parse()
        .map_err(|e| usage_error(&format!("invalid --stream: {e}")))
}

fn print_profile(profile: &ProfileData, top: usize) {
    println!(
        "interval {} (len {}, threshold {}): {} candidates",
        profile.interval_index,
        profile.interval_len,
        profile.threshold,
        profile.candidates.len()
    );
    for candidate in profile.candidates.iter().take(top) {
        println!(
            "  {:#x}:{} = {}",
            candidate.tuple.pc().as_u64(),
            candidate.tuple.value().as_u64(),
            candidate.count
        );
    }
}

fn retry_policy_from(opts: &mut Options) -> Result<Option<RetryPolicy>, ServerError> {
    let retries: u32 = opts.take_parsed("retries", 0)?;
    Ok((retries > 0).then(|| RetryPolicy {
        max_retries: retries,
        ..RetryPolicy::default()
    }))
}

fn cmd_record_and_send(mut opts: Options) -> Result<(), ServerError> {
    let addr = opts.require("addr")?;
    let session = opts.require("session")?;
    let spec = stream_from(&mut opts)?;
    let events: usize = opts.take_parsed("events", 100_000)?;
    let chunk_events: usize = opts.take_parsed("chunk-events", 4_096)?;
    let config = session_config_from(&mut opts)?;
    let policy = retry_policy_from(&mut opts)?;
    let close = opts.take("close").is_some();
    opts.finish()?;

    let all: Vec<Tuple> = spec.events().take(events).collect();
    let mut totals = (0, 0);
    if let Some(policy) = policy {
        let mut client = ReconnectingClient::open(resolve(&addr)?, &session, config, policy)?;
        for chunk in all.chunks(chunk_events.max(1)) {
            totals = client.ingest(chunk)?;
        }
        if client.retries() > 0 {
            println!(
                "recovered from {} fault(s) across {} connection(s)",
                client.retries(),
                client.connects()
            );
        }
        if close {
            client.close_session()?;
        }
    } else {
        let mut client = Client::connect(addr.as_str())?;
        client.open_session(&session, config)?;
        for chunk in all.chunks(chunk_events.max(1)) {
            totals = client.ingest(chunk)?;
        }
        if close {
            client.close_session()?;
        }
    }
    println!(
        "session {session}: sent {events} events from {spec}; \
         server totals: {} events, {} intervals",
        totals.0, totals.1
    );
    if close {
        println!("session {session} closed");
    }
    Ok(())
}

fn cmd_query(mut opts: Options) -> Result<(), ServerError> {
    let addr = opts.require("addr")?;
    let op = opts.require("op")?;
    // `stats`, `metrics` and `sessions` are server-wide; every other op
    // targets a named session.
    let server_wide = op == "stats" || op == "metrics" || op == "sessions";
    let session = if server_wide {
        opts.take("session").unwrap_or_default()
    } else {
        opts.require("session")?
    };
    let n: u32 = opts.take_parsed("n", 10)?;
    let interval: u64 = opts.take_parsed("interval", u64::MAX)?;
    opts.finish()?;

    let mut client = Client::connect(addr.as_str())?;
    if !server_wide {
        client.attach(&session)?;
    }
    match op.as_str() {
        "snapshot" => match client.snapshot(interval)? {
            Some(profile) => print_profile(&profile, n as usize),
            None => println!("no such completed interval"),
        },
        "topk" => {
            for candidate in client.top_k(n)? {
                println!(
                    "{:#x}:{} = {}",
                    candidate.tuple.pc().as_u64(),
                    candidate.tuple.value().as_u64(),
                    candidate.count
                );
            }
        }
        "cut" => match client.cut()? {
            Some(profile) => print_profile(&profile, n as usize),
            None => println!("interval was empty; nothing cut"),
        },
        "resume" => println!("last_seq {}", client.resume()?),
        "stats" => print!("{}", client.stats()?),
        "metrics" => print!("{}", client.metrics()?),
        "sessions" => {
            for info in client.list_sessions()? {
                println!(
                    "{} kind={} shards={} events={} intervals={}",
                    info.name,
                    info.config.kind.name(),
                    info.config.shards,
                    info.events,
                    info.intervals
                );
            }
        }
        "close" => {
            client.close_session()?;
            println!("session {session} closed");
        }
        other => return Err(usage_error(&format!("unknown query op {other:?}"))),
    }
    Ok(())
}

fn cmd_loadgen(mut opts: Options) -> Result<(), ServerError> {
    let addr = opts.require("addr")?;
    if let Some(raw) = opts.take("sessions") {
        let sessions: usize = raw
            .parse()
            .map_err(|_| usage_error(&format!("invalid value {raw:?} for --sessions")))?;
        let mut config = MuxConfig {
            sessions,
            active: opts.take_parsed("active", 64)?,
            events_per_session: opts.take_parsed("events", 50_000)?,
            chunk_events: opts.take_parsed("chunk-events", 4_096)?,
            deadline: std::time::Duration::from_secs(opts.take_parsed("deadline-secs", 300)?),
            ..MuxConfig::default()
        };
        config.session = session_config_from(&mut opts)?;
        opts.finish()?;

        let report = mux_loadgen(resolve(&addr)?, &config)?;
        print!("{}", report.render());
        if report.opened < config.sessions.max(1) {
            return Err(ServerError::protocol_owned(format!(
                "only {} of {} sessions opened",
                report.opened, config.sessions
            )));
        }
        return Ok(());
    }
    let mut config = LoadgenConfig {
        clients: opts.take_parsed("clients", 8)?,
        events_per_client: opts.take_parsed("events", 100_000)?,
        chunk_events: opts.take_parsed("chunk-events", 4_096)?,
        ..LoadgenConfig::default()
    };
    config.session = session_config_from(&mut opts)?;
    opts.finish()?;

    let addr = resolve(&addr)?;
    let report = loadgen(addr, &config)?;
    print!("{}", report.render());
    if report.errors > 0 {
        return Err(ServerError::protocol_owned(format!(
            "loadgen saw {} error(s)",
            report.errors
        )));
    }
    Ok(())
}

/// Streams a workload to the server and checks every completed interval
/// (and the live top-k) against an offline [`ShardedEngine`] run of the
/// same events — the end-to-end equivalence check the CI smoke test runs.
fn cmd_verify(mut opts: Options) -> Result<(), ServerError> {
    let addr = opts.require("addr")?;
    let spec = stream_from(&mut opts)?;
    let events: usize = opts.take_parsed("events", 50_000)?;
    let chunk_events: usize = opts.take_parsed("chunk-events", 4_096)?;
    let config = session_config_from(&mut opts)?;
    let policy = retry_policy_from(&mut opts)?;
    opts.finish()?;

    let all: Vec<Tuple> = spec.events().take(events).collect();

    // Offline reference: same engine shape, fed directly.
    let interval = mhp_core::IntervalConfig::new(config.interval_len, config.threshold)
        .map_err(mhp_pipeline::Error::Config)?;
    let engine = ShardedEngine::new(
        EngineConfig::new(config.shards as usize),
        interval,
        config.kind.spec(),
        config.seed,
    );
    let mut offline = engine.start()?;
    offline.push_all(all.iter().copied())?;
    let expected_topk = offline.top_k(10)?;
    let expected: Vec<ProfileData> = offline
        .profiles()?
        .iter()
        .map(ProfileData::from_profile)
        .collect();

    // Server run: stream the same events over the wire. With `--retries`,
    // a sequence-numbered reconnecting client survives faults mid-stream —
    // the comparison against the offline run must still be bit-identical.
    let name = format!("verify-{}-{}", config.kind.name(), config.seed);
    let mut retry_client;
    let mut plain_client;
    enum Verifier<'a> {
        Retrying(&'a mut ReconnectingClient),
        Plain(&'a mut Client),
    }
    let mut verifier = if let Some(policy) = policy {
        retry_client = ReconnectingClient::open(resolve(&addr)?, &name, config.clone(), policy)?;
        Verifier::Retrying(&mut retry_client)
    } else {
        plain_client = Client::connect(addr.as_str())?;
        plain_client.open_session(&name, config.clone())?;
        Verifier::Plain(&mut plain_client)
    };
    for chunk in all.chunks(chunk_events.max(1)) {
        match &mut verifier {
            Verifier::Retrying(client) => {
                client.ingest(chunk)?;
            }
            Verifier::Plain(client) => {
                client.ingest(chunk)?;
            }
        }
    }
    let got_topk = match &mut verifier {
        Verifier::Retrying(client) => client.top_k(10)?,
        Verifier::Plain(client) => client.top_k(10)?,
    };

    let mut mismatches = 0usize;
    for (index, reference) in expected.iter().enumerate() {
        let got = match &mut verifier {
            Verifier::Retrying(client) => client.snapshot(index as u64)?,
            Verifier::Plain(client) => client.snapshot(index as u64)?,
        };
        match got {
            Some(profile) if profile == *reference => {}
            Some(_) => {
                mismatches += 1;
                eprintln!("interval {index}: server profile differs from offline run");
            }
            None => {
                mismatches += 1;
                eprintln!("interval {index}: missing on the server");
            }
        }
    }
    let extra = match &mut verifier {
        Verifier::Retrying(client) => client.snapshot(expected.len() as u64)?,
        Verifier::Plain(client) => client.snapshot(expected.len() as u64)?,
    };
    if extra.is_some() {
        mismatches += 1;
        eprintln!("server reports more intervals than the offline run");
    }
    if got_topk != expected_topk {
        mismatches += 1;
        eprintln!("live top-k differs from the offline engine");
    }
    match verifier {
        Verifier::Retrying(client) => {
            if client.retries() > 0 {
                println!(
                    "recovered from {} fault(s) across {} connection(s)",
                    client.retries(),
                    client.connects()
                );
            }
            client.close_session()?;
        }
        Verifier::Plain(client) => client.close_session()?,
    }

    if mismatches == 0 {
        println!(
            "verify ok: {} intervals + live top-k identical across {} events ({})",
            expected.len(),
            events,
            config.kind.name()
        );
        Ok(())
    } else {
        Err(ServerError::protocol_owned(format!(
            "verify failed: {mismatches} mismatch(es)"
        )))
    }
}

fn cmd_traces(mut opts: Options) -> Result<(), ServerError> {
    let addr = opts.require("addr")?;
    opts.finish()?;
    let mut client = Client::connect(addr.as_str())?;
    print!("{}", client.traces()?);
    Ok(())
}

fn cmd_shutdown(mut opts: Options) -> Result<(), ServerError> {
    let addr = opts.require("addr")?;
    opts.finish()?;
    let mut client = Client::connect(addr.as_str())?;
    client.shutdown_server()?;
    println!("shutdown requested");
    Ok(())
}

fn resolve(addr: &str) -> Result<std::net::SocketAddr, ServerError> {
    use std::net::ToSocketAddrs;
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| usage_error(&format!("cannot resolve {addr:?}")))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Options::parse(&args[1..]) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("mhp-client: {e}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "record-and-send" => cmd_record_and_send(opts),
        "query" => cmd_query(opts),
        "loadgen" => cmd_loadgen(opts),
        "verify" => cmd_verify(opts),
        "traces" => cmd_traces(opts),
        "shutdown" => cmd_shutdown(opts),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mhp-client: {e}");
            ExitCode::FAILURE
        }
    }
}
