//! Lock-free server metrics: atomic counters and gauges plus fixed-bucket
//! latency histograms, rendered as plain `key value` text for the `stats`
//! query.
//!
//! Everything here is updated from request-handler threads with relaxed
//! atomics — a metric read may lag a concurrent write by a few operations,
//! which is fine for observability and keeps the hot ingest path free of
//! locks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Power-of-two histogram buckets: bucket `i` counts samples whose value
/// `v` (in microseconds) satisfies `v < 2^i`, exclusive of lower buckets.
/// 40 buckets cover ~13 days in µs — far beyond any realistic latency.
const BUCKETS: usize = 40;

/// A fixed-bucket log₂ histogram of microsecond durations.
///
/// Recording is wait-free (one relaxed `fetch_add` per bucket/count/sum);
/// percentile estimates are upper bounds from the bucket boundary, which
/// is the usual trade for never allocating on the record path.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Records one duration.
    pub fn record(&self, duration: Duration) {
        let us = u64::try_from(duration.as_micros()).unwrap_or(u64::MAX);
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`) in
    /// microseconds: the upper boundary of the bucket holding that rank.
    /// Returns 0 for an empty histogram.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket i holds values in [2^(i-1), 2^i); report the upper
                // boundary. Bucket 0 is exactly the value 0.
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        u64::MAX
    }

    /// Renders `NAME_count`, `NAME_sum_us` and p50/p90/p99 lines.
    fn render(&self, name: &str, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "{name}_count {}", self.count());
        let _ = writeln!(out, "{name}_sum_us {}", self.sum_us());
        let _ = writeln!(out, "{name}_p50_us {}", self.quantile_us(0.50));
        let _ = writeln!(out, "{name}_p90_us {}", self.quantile_us(0.90));
        let _ = writeln!(out, "{name}_p99_us {}", self.quantile_us(0.99));
    }
}

macro_rules! metrics_struct {
    ($(#[doc = $doc:literal] $field:ident),+ $(,)?) => {
        /// The server's metrics registry: shared by every connection
        /// handler, read by the `stats` query. All counters are
        /// monotonically increasing except `connections_active`, which is
        /// a gauge.
        #[derive(Debug, Default)]
        pub struct Metrics {
            $(#[doc = $doc] pub $field: AtomicU64,)+
            /// Latency of each request, measured from decoded request to
            /// written response.
            pub request_latency: Histogram,
            /// Time spent decoding each ingested chunk.
            pub chunk_decode: Histogram,
        }

        impl Metrics {
            /// Renders every metric as one `key value` line, sorted by
            /// declaration: counters first, then histogram summaries.
            pub fn render(&self) -> String {
                let mut out = String::new();
                $(
                    out.push_str(concat!(stringify!($field), " "));
                    out.push_str(
                        &self.$field.load(Ordering::Relaxed).to_string());
                    out.push('\n');
                )+
                self.request_latency.render("request_latency", &mut out);
                self.chunk_decode.render("chunk_decode", &mut out);
                out
            }
        }
    };
}

metrics_struct! {
    /// Connections accepted and served.
    connections_accepted,
    /// Connections turned away at the max-connections limit.
    connections_rejected,
    /// Connections currently being served (gauge).
    connections_active,
    /// Sessions created by `open`.
    sessions_opened,
    /// Sessions destroyed by `close-session` or shutdown drain.
    sessions_closed,
    /// Requests decoded and dispatched, of any kind.
    requests_total,
    /// Requests answered with an error response.
    errors_total,
    /// Wire-protocol violations that dropped a connection.
    protocol_errors,
    /// Trace chunks ingested.
    chunks_ingested,
    /// Events ingested across all sessions.
    events_ingested,
    /// Intervals completed across all sessions.
    intervals_completed,
}

impl Metrics {
    /// Creates a zeroed registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Bumps a counter by one.
    pub fn incr(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Bumps a counter by `n`.
    pub fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrements a gauge by one.
    pub fn decr(&self, gauge: &AtomicU64) {
        gauge.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Parses one `key value` line out of rendered stats text; test and
/// client-side convenience.
pub fn stat_value(stats_text: &str, key: &str) -> Option<u64> {
    stats_text.lines().find_map(|line| {
        let (k, v) = line.split_once(' ')?;
        (k == key).then(|| v.parse().ok())?
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_counts_and_sums() {
        let h = Histogram::new();
        h.record(Duration::from_micros(10));
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(1_000));
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_us(), 1_110);
    }

    #[test]
    fn quantiles_are_upper_bucket_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(3)); // bucket 2: (2, 4]
        }
        h.record(Duration::from_micros(1_000_000)); // ~2^20
        assert_eq!(h.quantile_us(0.50), 4);
        assert_eq!(h.quantile_us(0.90), 4);
        assert!(h.quantile_us(1.0) >= 1_000_000);
        assert_eq!(Histogram::new().quantile_us(0.5), 0, "empty histogram");
    }

    #[test]
    fn zero_duration_lands_in_bucket_zero() {
        let h = Histogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.quantile_us(1.0), 0);
    }

    #[test]
    fn render_lists_every_counter_once() {
        let m = Metrics::new();
        m.incr(&m.requests_total);
        m.add(&m.events_ingested, 500);
        m.request_latency.record(Duration::from_micros(42));
        let text = m.render();
        assert_eq!(stat_value(&text, "requests_total"), Some(1));
        assert_eq!(stat_value(&text, "events_ingested"), Some(500));
        assert_eq!(stat_value(&text, "request_latency_count"), Some(1));
        assert_eq!(stat_value(&text, "connections_active"), Some(0));
        assert_eq!(stat_value(&text, "no_such_key"), None);
    }

    #[test]
    fn gauge_decrements() {
        let m = Metrics::new();
        m.incr(&m.connections_active);
        m.incr(&m.connections_active);
        m.decr(&m.connections_active);
        assert_eq!(stat_value(&m.render(), "connections_active"), Some(1));
    }
}
