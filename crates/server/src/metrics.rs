//! Server metrics, built on the shared `mhp-telemetry` registry.
//!
//! Every counter, gauge and latency histogram the server maintains lives
//! on one [`Registry`], under Prometheus-style names (`server_*`). The
//! same registry also carries the engine (`engine_*`) and sketch
//! (`sketch_*`) metrics that sessions report, so one
//! [`render_prometheus`](Registry::render_prometheus) call — the `metrics`
//! query — exposes the whole service.
//!
//! The legacy `stats` query format (plain `key value` lines under the
//! original short names) is preserved verbatim by [`Metrics::render`]:
//! existing scrapers keep working while new ones move to `metrics`.
//!
//! Updates are wait-free relaxed atomics throughout — a read may lag a
//! concurrent write by a few operations, which is fine for observability
//! and keeps the hot ingest path free of locks.

use mhp_telemetry::Registry;

pub use mhp_telemetry::{stat_value, Counter, Gauge, Histogram};

macro_rules! server_metrics {
    ($(#[doc = $doc:literal] ($field:ident, $kind:ident, $metric:literal)),+ $(,)?) => {
        /// The server's metric handles: shared by every connection
        /// handler, read by the `stats` and `metrics` queries. All
        /// counters are monotonically increasing except
        /// `connections_active`, which is a gauge.
        #[derive(Debug, Clone)]
        pub struct Metrics {
            registry: Registry,
            $(#[doc = $doc] pub $field: $kind,)+
            /// Latency of each request, measured from decoded request to
            /// written response, in microseconds.
            pub request_latency: Histogram,
            /// Time spent decoding each ingested chunk, in microseconds.
            pub chunk_decode: Histogram,
        }

        impl Metrics {
            /// Registers every server metric on `registry` and returns
            /// the handles.
            pub fn on_registry(registry: &Registry) -> Self {
                Metrics {
                    registry: registry.clone(),
                    $($field: registry.$kind($metric),)+
                    request_latency: registry.histogram("server_request_latency_us"),
                    chunk_decode: registry.histogram("server_chunk_decode_us"),
                }
            }

            /// Renders the legacy `stats` text: one `key value` line per
            /// metric under its original short name, counters first, then
            /// histogram summaries. Byte-identical to the pre-registry
            /// format.
            pub fn render(&self) -> String {
                let mut out = String::new();
                $(
                    out.push_str(concat!(stringify!($field), " "));
                    out.push_str(&self.$field.get().to_string());
                    out.push('\n');
                )+
                render_legacy_histogram(&self.request_latency, "request_latency", &mut out);
                render_legacy_histogram(&self.chunk_decode, "chunk_decode", &mut out);
                out
            }
        }
    };
}

// `$kind` doubles as the handle type and the Registry constructor name
// (`counter` / `gauge`), so the macro stays a single table.
#[allow(non_camel_case_types)]
type counter = Counter;
#[allow(non_camel_case_types)]
type gauge = Gauge;

server_metrics! {
    /// Connections accepted and served.
    (connections_accepted, counter, "server_connections_accepted_total"),
    /// Connections turned away at the max-connections limit.
    (connections_rejected, counter, "server_connections_rejected_total"),
    /// Connections currently being served (gauge).
    (connections_active, gauge, "server_connections_active"),
    /// Sessions created by `open`.
    (sessions_opened, counter, "server_sessions_opened_total"),
    /// Sessions destroyed by `close-session` or shutdown drain.
    (sessions_closed, counter, "server_sessions_closed_total"),
    /// Requests decoded and dispatched, of any kind.
    (requests_total, counter, "server_requests_total"),
    /// Requests answered with an error response.
    (errors_total, counter, "server_errors_total"),
    /// Wire-protocol violations that dropped a connection.
    (protocol_errors, counter, "server_protocol_errors_total"),
    /// Trace chunks ingested.
    (chunks_ingested, counter, "server_chunks_ingested_total"),
    /// Events ingested across all sessions.
    (events_ingested, counter, "server_events_ingested_total"),
    /// Intervals completed across all sessions.
    (intervals_completed, counter, "server_intervals_completed_total"),
}

impl Metrics {
    /// Creates the server metrics on a fresh registry.
    pub fn new() -> Self {
        Metrics::on_registry(&Registry::new())
    }

    /// The registry behind these handles — sessions register their engine
    /// and sketch metrics here, and the `metrics` query renders it.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// Renders one histogram in the legacy `stats` shape: `NAME_count`,
/// `NAME_sum_us` and p50/p90/p99 upper-bound lines.
fn render_legacy_histogram(h: &Histogram, name: &str, out: &mut String) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "{name}_count {}", h.count());
    let _ = writeln!(out, "{name}_sum_us {}", h.sum());
    let _ = writeln!(out, "{name}_p50_us {}", h.quantile(0.50));
    let _ = writeln!(out, "{name}_p90_us {}", h.quantile(0.90));
    let _ = writeln!(out, "{name}_p99_us {}", h.quantile(0.99));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn render_lists_every_counter_once() {
        let m = Metrics::new();
        m.requests_total.incr();
        m.events_ingested.add(500);
        m.request_latency.record_duration(Duration::from_micros(42));
        let text = m.render();
        assert_eq!(stat_value(&text, "requests_total"), Some(1));
        assert_eq!(stat_value(&text, "events_ingested"), Some(500));
        assert_eq!(stat_value(&text, "request_latency_count"), Some(1));
        assert_eq!(stat_value(&text, "connections_active"), Some(0));
        assert_eq!(stat_value(&text, "no_such_key"), None);
    }

    #[test]
    fn gauge_decrements() {
        let m = Metrics::new();
        m.connections_active.incr();
        m.connections_active.incr();
        m.connections_active.decr();
        assert_eq!(stat_value(&m.render(), "connections_active"), Some(1));
    }

    #[test]
    fn legacy_render_shape_is_stable() {
        let m = Metrics::new();
        m.request_latency.record_duration(Duration::from_micros(3));
        let text = m.render();
        let keys: Vec<&str> = text.lines().filter_map(|l| l.split(' ').next()).collect();
        assert_eq!(
            keys,
            [
                "connections_accepted",
                "connections_rejected",
                "connections_active",
                "sessions_opened",
                "sessions_closed",
                "requests_total",
                "errors_total",
                "protocol_errors",
                "chunks_ingested",
                "events_ingested",
                "intervals_completed",
                "request_latency_count",
                "request_latency_sum_us",
                "request_latency_p50_us",
                "request_latency_p90_us",
                "request_latency_p99_us",
                "chunk_decode_count",
                "chunk_decode_sum_us",
                "chunk_decode_p50_us",
                "chunk_decode_p90_us",
                "chunk_decode_p99_us",
            ]
        );
        assert_eq!(stat_value(&text, "request_latency_p50_us"), Some(4));
    }

    #[test]
    fn same_handles_feed_the_prometheus_exposition() {
        let m = Metrics::new();
        m.requests_total.add(7);
        m.connections_active.set(2);
        m.chunk_decode.record_duration(Duration::from_micros(10));
        let text = m.registry().render_prometheus();
        assert!(text.contains("# TYPE server_requests_total counter"));
        assert!(text.contains("server_requests_total 7"));
        assert!(text.contains("# TYPE server_connections_active gauge"));
        assert!(text.contains("server_connections_active 2"));
        assert!(text.contains("# TYPE server_chunk_decode_us histogram"));
        assert!(text.contains("server_chunk_decode_us_count 1"));
    }
}
