//! Multiplexed load generation: thousands of concurrent client sessions
//! driven by one thread over nonblocking connections and an
//! [`mhp_net::Reactor`] — the client-side mirror of the server's event
//! loop, and the engine behind `mhp-client loadgen --sessions` and
//! `mhp-bench server`.
//!
//! Each connection runs a tiny state machine: open a named session, then
//! either stream ingest chunks request-by-request (an *active* session)
//! or sit attached and idle (an *idle* session — the fleet-realistic case
//! where most producers are quiet at any instant). All sessions stay open
//! until the run completes, so the peak concurrency the server saw equals
//! the session count.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use mhp_net::{Interest, Reactor, Token};
use mhp_pipeline::encode_chunk;

use crate::error::ServerError;
use crate::metrics::Histogram;
use crate::protocol::{FrameDecoder, Request, Response, SessionConfig};

/// Configuration for [`mux_loadgen`].
#[derive(Debug, Clone)]
pub struct MuxConfig {
    /// Concurrent sessions, one nonblocking connection each.
    pub sessions: usize,
    /// How many of them actively stream events; the rest open their
    /// session and idle. Clamped to `sessions`.
    pub active: usize,
    /// Events each active session streams.
    pub events_per_session: usize,
    /// Events per ingest chunk.
    pub chunk_events: usize,
    /// Session configuration every connection opens with.
    pub session: SessionConfig,
    /// Prefix for the per-connection session names (`{prefix}-{i}`).
    pub session_prefix: String,
    /// Abort the run (with an error) if it has not completed by then.
    pub deadline: Duration,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            sessions: 1024,
            active: 64,
            events_per_session: 50_000,
            chunk_events: 4_096,
            session: SessionConfig::default_multi_hash(),
            session_prefix: "mux".to_string(),
            deadline: Duration::from_secs(300),
        }
    }
}

/// What [`mux_loadgen`] measured.
#[derive(Debug)]
pub struct MuxReport {
    /// Sessions requested.
    pub sessions: usize,
    /// Sessions that opened successfully (all of them, on a passing run).
    pub opened: usize,
    /// Sessions that streamed events.
    pub active: usize,
    /// Events acknowledged across all active sessions.
    pub events: u64,
    /// Ingest requests acknowledged.
    pub requests: u64,
    /// Error responses received (retries after `Overloaded` count here
    /// too, but do not abort the run).
    pub errors: u64,
    /// Wall-clock duration from first connect to last acknowledgement.
    pub elapsed: Duration,
    /// Per-request round-trip latency (open and ingest).
    pub latency: Histogram,
}

impl MuxReport {
    /// Aggregate acknowledged ingest throughput, events per second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Renders the human-readable summary the CLI prints.
    pub fn render(&self) -> String {
        format!(
            "sessions {}\nopened {}\nactive {}\nevents {}\nrequests {}\nerrors {}\n\
             elapsed_ms {}\nevents_per_sec {:.0}\n\
             latency_p50_us {}\nlatency_p90_us {}\nlatency_p99_us {}\n",
            self.sessions,
            self.opened,
            self.active,
            self.events,
            self.requests,
            self.errors,
            self.elapsed.as_millis(),
            self.events_per_sec(),
            self.latency.quantile(0.50),
            self.latency.quantile(0.90),
            self.latency.quantile(0.99),
        )
    }
}

/// Where one multiplexed session is in its life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// `open` sent, waiting for the session echo.
    Opening,
    /// Streaming chunks; one request in flight at a time.
    Ingesting,
    /// Opened and holding the session, sending nothing.
    Idle,
    /// Finished streaming; holding the session until the run ends.
    Done,
}

struct MuxConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    write_buf: Vec<u8>,
    write_pos: usize,
    phase: Phase,
    /// Index into the shared chunk pool for this connection's payload.
    chunk: usize,
    chunks_target: usize,
    chunks_acked: usize,
    request_sent: Instant,
    dead: bool,
}

impl MuxConn {
    fn push_frame(&mut self, body: &[u8]) {
        self.write_buf
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.write_buf.extend_from_slice(body);
    }

    fn flush(&mut self) {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
    }

    fn interest(&self) -> Interest {
        Interest {
            readable: !self.dead,
            writable: self.write_pos < self.write_buf.len(),
        }
    }

    /// True once this connection needs nothing further from the run.
    fn settled(&self) -> bool {
        self.dead || matches!(self.phase, Phase::Idle | Phase::Done)
    }
}

/// Drives `config.sessions` concurrent sessions against `addr` from a
/// single thread, multiplexed over nonblocking connections. See the
/// module docs for the shape of the run.
///
/// # Errors
///
/// Connection-establishment failures, or blowing
/// [`deadline`](MuxConfig::deadline). Request-level errors are counted,
/// and the affected chunk retried, rather than aborting the run.
pub fn mux_loadgen(addr: SocketAddr, config: &MuxConfig) -> Result<MuxReport, ServerError> {
    let sessions = config.sessions.max(1);
    let active = config.active.min(sessions);
    let chunk_events = config.chunk_events.max(1);
    let chunks_target = config.events_per_session.div_ceil(chunk_events);

    // A small pool of pre-encoded chunks shared across sessions: encoding
    // is done once, not per session per send, so the loadgen thread spends
    // its cycles on I/O, not on re-serializing identical payloads.
    let pool_size = 8usize.min(active.max(1));
    let chunk_pool: Vec<Vec<u8>> = (0..pool_size)
        .map(|i| {
            let spec = mhp_trace::StreamSpec::new(
                mhp_trace::Benchmark::Gcc,
                mhp_trace::StreamKind::Value,
                0x10AD ^ i as u64,
            );
            let events: Vec<mhp_core::Tuple> = spec.events().take(chunk_events).collect();
            encode_chunk(&events)
        })
        .collect();

    let latency = Histogram::new();
    let mut errors = 0u64;
    let mut requests = 0u64;
    let mut opened = 0usize;
    let started = Instant::now();
    let hard_deadline = started + config.deadline;

    let mut reactor = Reactor::new()?;
    let mut conns: Vec<MuxConn> = Vec::with_capacity(sessions);
    let mut events_buf = Vec::new();

    // Ramp up in batches: connect (blocking — loopback connects resolve
    // immediately), queue the open, and poll between batches so the
    // server's accept queue and our handshakes overlap.
    let mut pending_connect: VecDeque<usize> = (0..sessions).collect();
    const CONNECT_BATCH: usize = 64;

    loop {
        for _ in 0..CONNECT_BATCH {
            let Some(idx) = pending_connect.pop_front() else {
                break;
            };
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true).ok();
            stream.set_nonblocking(true)?;
            let fd = stream.as_raw_fd();
            let mut session = config.session.clone();
            session.seed = session.seed.wrapping_add(idx as u64);
            let open = Request::Open {
                name: format!("{}-{idx}", config.session_prefix),
                config: session,
            }
            .encode();
            let mut conn = MuxConn {
                stream,
                decoder: FrameDecoder::new(),
                write_buf: Vec::new(),
                write_pos: 0,
                phase: Phase::Opening,
                chunk: idx % pool_size,
                chunks_target: if idx < active { chunks_target } else { 0 },
                chunks_acked: 0,
                request_sent: Instant::now(),
                dead: false,
            };
            conn.push_frame(&open);
            conn.flush();
            let token = Token(idx);
            reactor.register(fd, token, conn.interest())?;
            conns.push(conn);
        }

        let all_connected = pending_connect.is_empty();
        let mut outstanding = false;
        reactor.poll(&mut events_buf, Some(Duration::from_millis(20)))?;
        for event in &events_buf {
            let idx = event.token.0;
            let conn = &mut conns[idx];
            if conn.dead {
                continue;
            }
            if event.error {
                conn.dead = true;
                errors += 1;
                let _ = reactor.deregister(event.token);
                continue;
            }
            if event.readable || event.hangup {
                let mut scratch = [0u8; 16 * 1024];
                loop {
                    match conn.stream.read(&mut scratch) {
                        Ok(0) => {
                            // Hangup mid-run is an error unless we are done.
                            if !conn.settled() {
                                errors += 1;
                            }
                            conn.dead = true;
                            break;
                        }
                        Ok(n) => conn.decoder.push(&scratch[..n]),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.dead = true;
                            break;
                        }
                    }
                }
                // Decode every complete response and advance the machine.
                loop {
                    let body = match conn.decoder.next_frame() {
                        Ok(Some(body)) => body,
                        Ok(None) => break,
                        Err(_) => {
                            conn.dead = true;
                            errors += 1;
                            break;
                        }
                    };
                    latency.record_duration(conn.request_sent.elapsed());
                    let response = Response::decode(&body);
                    match (conn.phase, response) {
                        (Phase::Opening, Ok(Response::Session(_))) => {
                            opened += 1;
                            if conn.chunks_target == 0 {
                                conn.phase = Phase::Idle;
                            } else {
                                conn.phase = Phase::Ingesting;
                                let chunk = chunk_pool[conn.chunk].clone();
                                let body = Request::Ingest { chunk }.encode();
                                conn.push_frame(&body);
                                conn.request_sent = Instant::now();
                            }
                        }
                        (Phase::Ingesting, Ok(Response::Ingested { .. })) => {
                            requests += 1;
                            conn.chunks_acked += 1;
                            if conn.chunks_acked >= conn.chunks_target {
                                conn.phase = Phase::Done;
                            } else {
                                let chunk = chunk_pool[conn.chunk].clone();
                                let body = Request::Ingest { chunk }.encode();
                                conn.push_frame(&body);
                                conn.request_sent = Instant::now();
                            }
                        }
                        (phase, Ok(Response::Error { .. })) => {
                            // Retryable shed (or a real failure): count it
                            // and repeat the in-flight request.
                            errors += 1;
                            let body = match phase {
                                Phase::Opening => {
                                    let mut session = config.session.clone();
                                    session.seed = session.seed.wrapping_add(idx as u64);
                                    Request::Open {
                                        name: format!("{}-{idx}", config.session_prefix),
                                        config: session,
                                    }
                                    .encode()
                                }
                                _ => Request::Ingest {
                                    chunk: chunk_pool[conn.chunk].clone(),
                                }
                                .encode(),
                            };
                            conn.push_frame(&body);
                            conn.request_sent = Instant::now();
                        }
                        (_, _) => {
                            errors += 1;
                            conn.dead = true;
                        }
                    }
                    if conn.dead {
                        break;
                    }
                }
            }
            conn.flush();
            if conn.dead {
                let _ = reactor.deregister(event.token);
            } else {
                reactor.set_interest(event.token, conn.interest())?;
            }
        }

        for conn in &conns {
            if !conn.settled() {
                outstanding = true;
                break;
            }
        }
        if all_connected && !outstanding {
            break;
        }
        if Instant::now() > hard_deadline {
            return Err(ServerError::protocol("mux loadgen blew its deadline"));
        }
    }

    Ok(MuxReport {
        sessions,
        opened,
        active,
        events: requests * chunk_events as u64,
        requests,
        errors,
        elapsed: started.elapsed(),
        latency,
    })
}
