//! # mhp-server — multi-client TCP profiling service
//!
//! Turns the sharded ingestion engine (`mhp-pipeline`) into a long-running
//! network service. Clients open *named sessions* — each a live
//! [`EngineSession`](mhp_pipeline::EngineSession) running the profiler of
//! their choice — stream `<pc, value>` event chunks into them, and query
//! them while the stream is still flowing:
//!
//! * `snapshot` — the merged [`IntervalProfile`](mhp_core::IntervalProfile)
//!   of any completed interval;
//! * `topk` — the hottest tuples of the *current partial* interval,
//!   straight from the accumulators;
//! * `cut` — force the global interval to end now;
//! * `stats` — server metrics as legacy `key value` text;
//! * `metrics` — the full server/engine/sketch metric registry in
//!   Prometheus text exposition format (see `mhp-telemetry`).
//!
//! Sessions are server-resident: a recorder process can stream chunks
//! while a dashboard process attaches to the same session by name and
//! polls `topk`. Ingest frames carry [`mhp_pipeline::encode_chunk`] bytes
//! verbatim, CRC and all, so recorded trace files replay onto a server
//! without re-encoding.
//!
//! The `mhp-server` binary serves; the `mhp-client` binary records,
//! queries, verifies and load-tests. See [`protocol`] for the wire format.
//!
//! ## Quick example
//!
//! ```
//! use mhp_server::{Client, Server, ServerConfig, SessionConfig};
//! use mhp_trace::{Benchmark, StreamKind, StreamSpec};
//!
//! # fn main() -> Result<(), mhp_server::ServerError> {
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! client.open_session("demo", SessionConfig::default_multi_hash())?;
//!
//! let events: Vec<_> = StreamSpec::new(Benchmark::Gcc, StreamKind::Value, 42)
//!     .events()
//!     .take(25_000)
//!     .collect();
//! for chunk in events.chunks(4_096) {
//!     client.ingest(chunk)?;
//! }
//! let profile = client.snapshot(u64::MAX)?.expect("two intervals done");
//! assert_eq!(profile.interval_index, 1);
//! let hot = client.top_k(5)?; // live view of the partial third interval
//! assert!(hot.len() <= 5);
//! client.shutdown_server()?;
//! server.join();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod client;
pub mod error;
pub mod event_loop;
pub mod metrics;
pub mod mux;
pub mod protocol;
pub mod server;

pub use client::{
    loadgen, parse_stage_latencies, Client, LoadgenConfig, LoadgenReport, ReconnectingClient,
    RetryPolicy, StageLatency,
};
pub use error::{ErrorCode, ServerError};
pub use event_loop::EventLoopConfig;
pub use metrics::{stat_value, Counter, Gauge, Histogram, Metrics};
pub use mux::{mux_loadgen, MuxConfig, MuxReport};
pub use protocol::{
    BreakerPhase, FrameDecoder, ProfileData, ProfilerKind, Request, Response, SessionConfig,
    SessionInfo, UpstreamHealth, MAX_FRAME_BYTES,
};
pub use server::{tenant_of, RunningServer, Server, ServerConfig, TenantQuotas, SERVER_STAGES};
