//! The readiness-based front end: one socket thread multiplexing every
//! connection over an [`mhp_net::Reactor`], plus a small worker pool for
//! the sketch work, so the service holds thousands of concurrent
//! connections instead of one thread each.
//!
//! ## Architecture
//!
//! ```text
//!                     ┌────────────────────────────────────┐
//!   accept ─┐         │  loop thread: poll(2) readiness    │
//!   conn ───┤ Reactor │  · FrameDecoder resumes mid-frame  │
//!   conn ───┤         │  · dispatch → bounded job queue ───┼──► worker pool
//!   conn ───┘         │  · completions → write buffers     │◄── (handle_request)
//!                     └────────────────────────────────────┘      + waker
//! ```
//!
//! Each connection is a state machine ([`EConn`], implementing
//! [`mhp_net::Conn`]): bytes arriving on a readiness event feed an
//! incremental [`FrameDecoder`] that resumes partial frames across events;
//! complete frames become jobs on a bounded queue; workers run the same
//! [`handle_request`] dispatch as the threaded front end (the connection's
//! session attachment and decode scratch move into the job and come back
//! with the completion — one job in flight per connection keeps request
//! order and makes the move exclusive); completions append to a bounded
//! write buffer flushed as the socket accepts it.
//!
//! ## Backpressure, in order of escalation
//!
//! 1. **Admission pacing**: accepted connections are parked — registered
//!    with the reactor (so errors and hangups are still observed) but
//!    without read interest — and admitted only as the worker queue has
//!    headroom. An open burst therefore ramps in at the queue's drain
//!    rate instead of slamming it and eating `Overloaded` sheds. Each
//!    admission holds a queue *reservation* until the connection's first
//!    request reaches the dispatch point, so a burst of first requests
//!    can never overflow the queue, no matter how the bytes race the
//!    admissions. Reservations are deadline-bounded: an admitted
//!    connection that sends no first request within the admission grace
//!    releases its slot (and stays admitted), so idle connections cannot
//!    starve later arrivals out of admission.
//! 2. **Busy connection**: while a job is in flight the connection's read
//!    interest is dropped — the kernel's receive buffer, and eventually
//!    the client's send buffer, absorb the pushback. No unbounded queues.
//! 3. **Full worker queue**: a further request from an already-admitted
//!    connection that finds the queue full is answered immediately with
//!    the retryable `Overloaded` error instead of being queued. After
//!    pacing, this is the fallback for pipelined requests, not the
//!    steady-state response to a connection ramp.
//! 4. **Write buffer over its cap** (client not draining responses): the
//!    response is shed for a tiny retryable `Overloaded` error; if even
//!    that cannot fit, the connection is closed.
//!
//! A peer stalling mid-frame is bounded by the same budget as the threaded
//! front end (300 × read timeout), enforced by the reactor's timer wheel
//! instead of per-read timeouts.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mhp_faults::ConnAction;
use mhp_net::{Conn, Event, Interest, Reactor, Slab, Step, TimerWheel, Token, Waker};
use mhp_telemetry::{Counter, Gauge, Trace};

use crate::error::ErrorCode;
use crate::protocol::{FrameDecoder, Request, Response, MAX_FRAME_BYTES};
use crate::server::{
    drain_sessions, handle_request, reject_overloaded, Attachment, Shared, STAGE_ADMISSION_WAIT,
    STAGE_FRAME_DECODE, STAGE_QUEUE_WAIT, STAGE_REPLY_WRITE,
};

/// Tuning for the event-loop front end. The defaults suit a small host;
/// all three knobs trade memory for tolerance of slow clients.
#[derive(Debug, Clone)]
pub struct EventLoopConfig {
    /// Worker threads running [`handle_request`]. Socket I/O stays on the
    /// loop thread regardless.
    pub workers: usize,
    /// Bounded job queue depth shared by the workers; a full queue answers
    /// `Overloaded` instead of queueing.
    pub worker_queue_depth: usize,
    /// Per-connection write buffer cap, in bytes; responses that would
    /// overflow it are shed with `Overloaded`.
    pub max_write_buffer_bytes: usize,
}

impl Default for EventLoopConfig {
    fn default() -> Self {
        EventLoopConfig {
            workers: 2,
            worker_queue_depth: 256,
            // Two maximal frames: one response mid-flush plus one queued.
            max_write_buffer_bytes: 2 * (MAX_FRAME_BYTES + 4),
        }
    }
}

/// Reactor/connection telemetry on the shared registry (satellite of the
/// event-loop work): scraped through the same `metrics` query /
/// Prometheus exposition as everything else.
#[derive(Clone)]
struct NetMetrics {
    /// Connections currently registered with the reactor.
    open_connections: Gauge,
    /// Times the reactor's poll returned due to a cross-thread wakeup
    /// (worker completions, mostly).
    wakeups_total: Counter,
    /// Readiness events that resumed a partially received frame.
    partial_frame_resumes: Counter,
    /// Responses shed because a connection's write buffer was over cap.
    write_sheds: Counter,
    /// Requests answered `Overloaded` because the worker queue was full.
    queue_sheds: Counter,
    /// Jobs sitting in the worker queue right now.
    worker_queue_depth: Gauge,
    /// Accepted connections parked, awaiting admission.
    pending_admissions: Gauge,
    /// Admitted connections still holding their first-dispatch queue
    /// reservation.
    admission_reservations: Gauge,
    /// Connections whose admission was deferred because the worker queue
    /// had no headroom — the pacing actually paced. Counted once per
    /// connection, at its first deferred pass, not once per loop pass.
    admission_deferrals: Counter,
}

impl NetMetrics {
    fn on_registry(registry: &mhp_telemetry::Registry) -> Self {
        NetMetrics {
            open_connections: registry.gauge("server_net_open_connections"),
            wakeups_total: registry.counter("server_net_wakeups_total"),
            partial_frame_resumes: registry.counter("server_net_partial_frame_resumes_total"),
            write_sheds: registry.counter("server_net_write_sheds_total"),
            queue_sheds: registry.counter("server_net_queue_sheds_total"),
            worker_queue_depth: registry.gauge("server_net_worker_queue_depth"),
            pending_admissions: registry.gauge("server_net_pending_admissions"),
            admission_reservations: registry.gauge("server_net_admission_reservations"),
            admission_deferrals: registry.counter("server_net_admission_deferrals_total"),
        }
    }
}

/// Mirror of the blocking reader's mid-frame stall budget
/// (`MAX_MID_FRAME_TIMEOUTS` in `protocol.rs`): a peer silent for this
/// many read-timeout periods partway through a frame is declared stalled.
const STALL_BUDGET: u32 = 300;

/// An admitted connection must land its first request within this many
/// read-timeout periods, or its worker-queue reservation is released (the
/// connection stays admitted; a late first request takes the normal
/// full-queue shed path). Without this bound, `worker_queue_depth`
/// connections that connect and send nothing — a client pool pre-opening
/// sockets, say — would hold every reservable slot forever and park all
/// later arrivals indefinitely.
const RESERVATION_BUDGET: u32 = 20;

/// One request moved off the loop thread.
struct Job {
    token: Token,
    request: Request,
    /// The connection's session hold, moved into the job and back.
    attached: Option<Attachment>,
    /// Injected fault: tear this job's response frame, then hang up.
    truncate: bool,
    started: Instant,
    /// The request's stage trace, riding the queue handoff: `started` to
    /// worker pickup is the `queue_wait` stage.
    trace: Trace,
}

/// A finished job, headed back to the loop thread.
struct Completion {
    token: Token,
    /// The encoded response body.
    body: Vec<u8>,
    attached: Option<Attachment>,
    truncate: bool,
    started: Instant,
    trace: Trace,
}

/// Per-connection state machine. `Interest::NONE`-style backpressure and
/// all protocol work live here; the loop only routes.
struct EConn {
    stream: TcpStream,
    /// This connection's slab token, for tagging jobs.
    token: Token,
    decoder: FrameDecoder,
    /// Pending response bytes; `write_pos..` is unflushed.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// The session hold; `None` while a job carries it.
    attached: Option<Attachment>,
    /// Past admission pacing: parked connections (`false`) are not read
    /// until the worker queue has headroom for them.
    admitted: bool,
    /// Still holding an admission reservation: one worker-queue slot is
    /// spoken for until this connection's first request reaches dispatch
    /// or the admission grace ([`RESERVATION_BUDGET`]) expires.
    reserved: bool,
    /// Already counted in `admission_deferrals`; keeps that counter at one
    /// per deferred connection rather than one per deferred pass.
    deferral_counted: bool,
    /// When the connection was accepted (and parked), for attributing the
    /// admission wait to its first request.
    accepted_at: Instant,
    /// Parked time, set at admission and consumed by the first dispatched
    /// request's trace as its `admission_wait` stage.
    admission_wait: Option<Duration>,
    /// A job is in flight; read interest is dropped until it completes.
    busy: bool,
    /// Peer sent EOF; close once buffered frames and writes are done.
    read_closed: bool,
    /// Close as soon as the write buffer drains.
    close_after_flush: bool,
    /// Close immediately, discarding buffered writes.
    close_now: bool,
    shared: Arc<Shared>,
    net: NetMetrics,
    jobs: SyncSender<Job>,
    write_cap: usize,
}

impl EConn {
    /// Releases this connection's admission reservation, if it still holds
    /// one: the first request has reached the dispatch point (or never
    /// will), so the reserved worker-queue slot is either consumed for
    /// real or freed for the next parked connection.
    fn release_reservation(&mut self) {
        if self.reserved {
            self.reserved = false;
            self.net.admission_reservations.decr();
        }
    }

    /// Appends one framed body to the write buffer.
    fn append_frame(&mut self, body: &[u8]) {
        self.write_buf
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.write_buf.extend_from_slice(body);
    }

    fn buffered_writes(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Queues a response, shedding with `Overloaded` if the write buffer
    /// is over its cap (the client is not draining responses).
    fn queue_response(&mut self, body: &[u8]) {
        if self.buffered_writes() + body.len() + 4 > self.write_cap {
            self.net.write_sheds.incr();
            self.shared.metrics.errors_total.incr();
            let shed = Response::Error {
                code: ErrorCode::Overloaded,
                message: "write buffer over capacity; back off and retry".into(),
            }
            .encode();
            if self.buffered_writes() + shed.len() + 4 <= self.write_cap {
                self.append_frame(&shed);
            } else {
                // Not draining even tiny error frames: cut the connection.
                self.close_now = true;
            }
            return;
        }
        self.append_frame(body);
    }

    /// Queues an error response built from `code`/`message`.
    fn queue_error(&mut self, code: ErrorCode, message: &str) {
        let body = Response::Error {
            code,
            message: message.into(),
        }
        .encode();
        self.queue_response(&body);
    }

    /// Reads everything the socket has, feeding the decoder.
    fn drain_socket(&mut self) {
        let resumed_partial = self.decoder.mid_frame();
        let mut scratch = [0u8; 16 * 1024];
        let mut any = false;
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => {
                    any = true;
                    self.decoder.push(&scratch[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_now = true;
                    break;
                }
            }
        }
        if any && resumed_partial {
            self.net.partial_frame_resumes.incr();
        }
    }

    /// Pops buffered frames and dispatches them until a job is in flight,
    /// the frames run out, or the connection is marked for close.
    fn dispatch_frames(&mut self) {
        while !self.busy && !self.close_now && !self.close_after_flush {
            let body = match self.decoder.next_frame() {
                Ok(Some(body)) => body,
                Ok(None) => break,
                Err(err) => {
                    // Unrecoverable framing violation: answer best-effort,
                    // then hang up — same as the threaded front end.
                    self.shared.metrics.protocol_errors.incr();
                    self.queue_error(err.code(), &err.wire_message());
                    self.close_after_flush = true;
                    break;
                }
            };
            if self.shared.shutdown.load(Ordering::SeqCst) {
                self.queue_error(ErrorCode::ShuttingDown, "server is shutting down");
                self.close_after_flush = true;
                break;
            }
            self.shared.metrics.requests_total.incr();
            let decode_started = Instant::now();
            let request = match Request::decode(&body) {
                Ok(request) => request,
                Err(err) => {
                    self.shared.metrics.protocol_errors.incr();
                    self.shared.metrics.errors_total.incr();
                    self.queue_error(err.code(), &err.wire_message());
                    self.close_after_flush = true;
                    break;
                }
            };
            // Decode runs on the loop thread; the trace begins here (kind
            // is the decoded opcode) with decode time folded in as lead.
            // The connection's parked time lands on its first request.
            let trace = self.shared.tracer.begin(request.op_name());
            trace.add_lead(STAGE_FRAME_DECODE, decode_started.elapsed());
            if let Some(parked) = self.admission_wait.take() {
                trace.add_lead(STAGE_ADMISSION_WAIT, parked);
            }
            // Injected connection faults, mirroring the threaded handler:
            // `Drop` cuts the connection before the request applies;
            // `TruncateResponse` applies it but tears the acknowledgement.
            let mut truncate = false;
            if let Some(hook) = &self.shared.config.fault_hook {
                match hook.on_request() {
                    ConnAction::Drop => {
                        self.close_now = true;
                        break;
                    }
                    ConnAction::TruncateResponse => truncate = true,
                    ConnAction::Proceed => {}
                }
            }
            let job = Job {
                token: self.token,
                request,
                attached: self.attached.take(),
                truncate,
                started: Instant::now(),
                trace,
            };
            // The queue slot the admission reserved is consumed (or the
            // shed fallback below answers) right now.
            self.release_reservation();
            match self.jobs.try_send(job) {
                Ok(()) => {
                    self.net.worker_queue_depth.incr();
                    self.busy = true;
                }
                Err(TrySendError::Full(job)) => {
                    // Backpressure, escalation 2: the pool is saturated.
                    // Hand the state back and answer retryably.
                    self.attached = job.attached;
                    self.net.queue_sheds.incr();
                    self.shared.metrics.errors_total.incr();
                    self.queue_error(
                        ErrorCode::Overloaded,
                        "worker queue is full; back off and retry",
                    );
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.close_now = true;
                }
            }
        }
    }

    /// Flushes buffered writes until the socket pushes back.
    fn flush_writes(&mut self) {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    self.close_now = true;
                    break;
                }
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_now = true;
                    break;
                }
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        } else if self.write_pos > 64 * 1024 {
            // Reclaim the flushed prefix of a long-lived buffer.
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
    }

    /// The step this connection wants from the loop right now.
    fn settle(&mut self) -> Step {
        if self.close_now {
            return Step::Close;
        }
        let flushed = self.buffered_writes() == 0;
        if flushed && self.close_after_flush {
            return Step::Close;
        }
        // EOF with nothing in flight: a clean hangup between requests, or
        // — if bytes stop partway through a frame — a truncated one.
        if flushed && self.read_closed && !self.busy {
            if self.decoder.mid_frame() {
                self.shared.metrics.protocol_errors.incr();
            }
            return Step::Close;
        }
        Step::Continue(Interest {
            // Backpressure, escalations 1 and 2: a parked connection is
            // not read until admitted; a busy one not until completion.
            readable: self.admitted && !self.busy && !self.read_closed && !self.close_after_flush,
            writable: !flushed,
        })
    }

    /// Folds a completed job back in: restore the moved state, queue the
    /// response (or its injected torn version), and dispatch any frames
    /// that buffered while the job ran.
    fn on_completion(&mut self, completion: Completion) {
        self.net.worker_queue_depth.decr();
        self.busy = false;
        self.attached = completion.attached;
        self.shared
            .metrics
            .request_latency
            .record_duration(completion.started.elapsed());
        if completion.truncate {
            // Injected torn frame: full length prefix, half the body, then
            // hang up — what a server crashing mid-write produces. The
            // trace is dropped unfinished and records nothing, matching
            // the threaded front end's abort paths.
            let body = &completion.body;
            self.write_buf
                .extend_from_slice(&(body.len() as u32).to_le_bytes());
            self.write_buf.extend_from_slice(&body[..body.len() / 2]);
            self.close_after_flush = true;
            self.flush_writes();
            return;
        }
        self.queue_response(&completion.body);
        {
            // `reply_write` covers the synchronous flush attempt only: a
            // backpressured tail drains on later writability events, off
            // this trace (see DESIGN §17).
            let write_timer = completion.trace.stage(STAGE_REPLY_WRITE);
            self.flush_writes();
            write_timer.finish();
        }
        completion.trace.finish();
        self.dispatch_frames();
        self.flush_writes();
    }
}

impl Conn for EConn {
    fn on_ready(&mut self, event: &Event) -> Step {
        if event.error {
            return Step::Close;
        }
        // While parked or busy, readiness is left in the kernel buffer:
        // POLLIN is not subscribed, and a POLLHUP (unmaskable) is
        // re-examined at admission or after the in-flight job completes —
        // reading here would race the job for the connection's state, or
        // dispatch ahead of the admission pacing.
        if self.admitted && !self.busy && (event.readable || event.hangup) {
            self.drain_socket();
            self.dispatch_frames();
        }
        self.flush_writes();
        self.settle()
    }

    fn on_timer(&mut self, _now: Instant) -> Step {
        // While the reservation is held, the only timer armed is the
        // admission grace (finish_step defers the stall clock until the
        // reservation resolves) — so firing here means the grace expired
        // without a first request. Release the reserved slot so idle
        // admitted connections cannot starve the pending queue; the
        // connection itself stays admitted and readable, and if it is
        // mid-frame the settle below arms a fresh stall budget.
        if self.reserved {
            self.release_reservation();
            return self.settle();
        }
        // Armed only while a partial frame is pending; if it still is, the
        // peer stalled mid-frame past the budget.
        if !self.busy && self.decoder.mid_frame() {
            self.shared.metrics.protocol_errors.incr();
            return Step::Close;
        }
        self.settle()
    }
}

/// The worker-pool thread body: run jobs through the same dispatch as the
/// threaded front end, push the completion, wake the loop.
fn worker(
    jobs: Arc<Mutex<Receiver<Job>>>,
    shared: Arc<Shared>,
    completions: Arc<Mutex<Vec<Completion>>>,
    waker: Waker,
) {
    loop {
        let job = {
            let guard = jobs.lock().expect("job queue lock poisoned");
            guard.recv()
        };
        let Ok(mut job) = job else { return };
        // Enqueue-to-pickup, measured across the thread handoff.
        job.trace.add(STAGE_QUEUE_WAIT, job.started.elapsed());
        let result = handle_request(job.request, &mut job.attached, &shared, &job.trace);
        let body = match result {
            Ok(response) => response.encode(),
            Err(err) => {
                shared.metrics.errors_total.incr();
                Response::Error {
                    code: err.code(),
                    message: err.wire_message(),
                }
                .encode()
            }
        };
        completions
            .lock()
            .expect("completion queue lock poisoned")
            .push(Completion {
                token: job.token,
                body,
                attached: job.attached,
                truncate: job.truncate,
                started: job.started,
                trace: job.trace,
            });
        waker.wake();
    }
}

/// Sentinel token for the listener registration. Collides with a slab
/// token only at generation `u32::MAX`, index `u32::MAX` — unreachable.
const LISTENER: Token = Token(usize::MAX);

/// Runs the event loop until shutdown: the `--event-loop` counterpart of
/// `accept_loop`, owning the listener, every connection, the timer wheel
/// and the worker pool. Returns after flushing in-flight work (bounded
/// grace) and draining every session.
pub(crate) fn run(listener: &TcpListener, shared: &Arc<Shared>) {
    let config = shared
        .config
        .event_loop
        .clone()
        .expect("event_loop::run without event-loop config");
    let net = NetMetrics::on_registry(shared.metrics.registry());

    let mut reactor = match Reactor::new() {
        Ok(reactor) => reactor,
        Err(_) => return,
    };
    if listener.set_nonblocking(true).is_err()
        || reactor
            .register(listener.as_raw_fd(), LISTENER, Interest::READABLE)
            .is_err()
    {
        return;
    }

    let (job_tx, job_rx) = std::sync::mpsc::sync_channel::<Job>(config.worker_queue_depth.max(1));
    let job_rx = Arc::new(Mutex::new(job_rx));
    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
    let workers: Vec<_> = (0..config.workers.max(1))
        .map(|_| {
            let jobs = Arc::clone(&job_rx);
            let shared = Arc::clone(shared);
            let completions = Arc::clone(&completions);
            let waker = reactor.waker();
            std::thread::spawn(move || worker(jobs, shared, completions, waker))
        })
        .collect();

    let mut slab: Slab<EConn> = Slab::new();
    // Accepted-but-parked connections, in arrival order, awaiting
    // worker-queue headroom (backpressure escalation 1).
    let mut pending: VecDeque<Token> = VecDeque::new();
    let tick = Duration::from_millis(50);
    let mut wheel = TimerWheel::new(tick, 256);
    let mut events: Vec<Event> = Vec::new();
    let mut fired: Vec<Token> = Vec::new();
    let mut done: Vec<Completion> = Vec::new();
    // Set when shutdown is first observed; the drain grace deadline.
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let wakeups_before = reactor.wakeups();
        let _ = reactor.poll(&mut events, Some(tick));
        net.wakeups_total.add(reactor.wakeups() - wakeups_before);
        let now = Instant::now();

        // Completions first: they free connections to take buffered work.
        done.clear();
        std::mem::swap(
            &mut done,
            &mut completions.lock().expect("completion queue lock poisoned"),
        );
        for completion in done.drain(..) {
            let token = completion.token;
            let Some(conn) = slab.get_mut(token) else {
                // The connection died mid-job; dropping the completion
                // releases its session attachment.
                continue;
            };
            conn.on_completion(completion);
            apply_step(
                token,
                &mut reactor,
                &mut wheel,
                &mut slab,
                &net,
                shared,
                now,
            );
        }

        for event in &events {
            let event = *event;
            if event.token == LISTENER {
                accept_ready(
                    listener,
                    shared,
                    &net,
                    &config,
                    &job_tx,
                    &mut reactor,
                    &mut slab,
                    &mut pending,
                );
                continue;
            }
            let Some(conn) = slab.get_mut(event.token) else {
                continue; // closed earlier this batch
            };
            let step = conn.on_ready(&event);
            finish_step(
                step,
                event.token,
                &mut reactor,
                &mut wheel,
                &mut slab,
                &net,
                shared,
                now,
            );
        }

        wheel.expire(now, &mut fired);
        for token in fired.drain(..) {
            let Some(conn) = slab.get_mut(token) else {
                continue;
            };
            let step = conn.on_timer(now);
            finish_step(
                step,
                token,
                &mut reactor,
                &mut wheel,
                &mut slab,
                &net,
                shared,
                now,
            );
        }

        // Admission pacing: with completions folded in and fresh accepts
        // parked, the queue depth is current — admit as much of the parked
        // backlog as the headroom covers.
        admit_pending(
            &mut pending,
            &config,
            &mut reactor,
            &mut wheel,
            &mut slab,
            &net,
            shared,
            now,
        );

        if shared.shutdown.load(Ordering::SeqCst) {
            let deadline = *drain_deadline.get_or_insert_with(|| {
                // Stop accepting; existing connections get a bounded grace
                // to finish in-flight work and drain their write buffers.
                let _ = reactor.deregister(LISTENER);
                now + Duration::from_secs(2)
            });
            // Close every connection with nothing left in flight.
            for token in slab.tokens() {
                let conn = slab.get_mut(token).expect("live token");
                if !conn.busy && conn.buffered_writes() == 0 {
                    close_conn(token, &mut reactor, &mut wheel, &mut slab, &net, shared);
                }
            }
            if slab.is_empty() || now >= deadline {
                break;
            }
        }
    }

    // Force-close stragglers, discarding their buffered writes.
    for token in slab.tokens() {
        close_conn(token, &mut reactor, &mut wheel, &mut slab, &net, shared);
    }
    // Workers exit once every sender is gone (connections held clones,
    // but the slab is empty now).
    drop(job_tx);
    for handle in workers {
        let _ = handle.join();
    }
    drain_sessions(shared);
}

/// Applies a connection's settle() outcome outside `on_ready`/`on_timer`
/// call sites (completions), where no Step was produced by the trait.
fn apply_step(
    token: Token,
    reactor: &mut Reactor,
    wheel: &mut TimerWheel,
    slab: &mut Slab<EConn>,
    net: &NetMetrics,
    shared: &Arc<Shared>,
    now: Instant,
) {
    let Some(conn) = slab.get_mut(token) else {
        return;
    };
    let step = conn.settle();
    finish_step(step, token, reactor, wheel, slab, net, shared, now);
}

/// Routes a [`Step`] back into the reactor: update interest and the stall
/// timer, or tear the connection down.
#[allow(clippy::too_many_arguments)]
fn finish_step(
    step: Step,
    token: Token,
    reactor: &mut Reactor,
    wheel: &mut TimerWheel,
    slab: &mut Slab<EConn>,
    net: &NetMetrics,
    shared: &Arc<Shared>,
    now: Instant,
) {
    match step {
        Step::Continue(interest) => {
            let _ = reactor.set_interest(token, interest);
            let conn = slab.get_mut(token).expect("continuing conn is live");
            if conn.reserved {
                // The admission-grace deadline armed by admit_pending stays
                // put: activity short of a dispatched first request (write
                // readiness, dribbled partial bytes) must not extend the
                // reservation's hold on its worker-queue slot. The stall
                // clock takes over once the reservation resolves.
            } else if !conn.busy && conn.decoder.mid_frame() {
                // The stall clock runs only while a partial frame is
                // pending; fresh bytes re-arm it, completion cancels it.
                let stall = shared
                    .config
                    .read_timeout
                    .saturating_mul(STALL_BUDGET)
                    .max(Duration::from_millis(50));
                wheel.schedule(token, now, stall);
            } else {
                wheel.cancel(token);
            }
        }
        Step::Close => close_conn(token, reactor, wheel, slab, net, shared),
    }
}

/// Deregisters, unschedules and drops one connection. Dropping the
/// [`EConn`] releases its session attachment (if any) back to eviction.
fn close_conn(
    token: Token,
    reactor: &mut Reactor,
    wheel: &mut TimerWheel,
    slab: &mut Slab<EConn>,
    net: &NetMetrics,
    shared: &Arc<Shared>,
) {
    if let Some(conn) = slab.remove(token) {
        // A connection dying before admission (or before its first
        // dispatch) gives its place back; its stale token in the pending
        // queue is skipped when admission reaches it.
        if !conn.admitted {
            net.pending_admissions.decr();
        }
        if conn.reserved {
            net.admission_reservations.decr();
        }
        let _ = reactor.deregister(token);
        wheel.cancel(token);
        net.open_connections.decr();
        shared.metrics.connections_active.decr();
    }
}

/// Admits parked connections, oldest first, while the worker queue has
/// headroom for their first requests. Each admission both counts live
/// jobs and the reservations of admitted connections whose first request
/// has not reached dispatch yet, so a connection burst is physically
/// unable to overflow the queue — the shed path remains only for
/// pipelined requests beyond the first. Each reservation is bounded by an
/// admission-grace deadline ([`RESERVATION_BUDGET`] read-timeouts) so a
/// connection that sends nothing gives its slot back instead of deferring
/// later arrivals forever.
#[allow(clippy::too_many_arguments)]
fn admit_pending(
    pending: &mut VecDeque<Token>,
    config: &EventLoopConfig,
    reactor: &mut Reactor,
    wheel: &mut TimerWheel,
    slab: &mut Slab<EConn>,
    net: &NetMetrics,
    shared: &Arc<Shared>,
    now: Instant,
) {
    let cap = config.worker_queue_depth.max(1) as u64;
    while let Some(&token) = pending.front() {
        if net.worker_queue_depth.get() + net.admission_reservations.get() >= cap {
            // The pacing actually paced: somebody waits for the drain.
            // Count each connection's transition into the deferred state
            // once, not once per 50ms pass. New arrivals sit at the back
            // and counted connections only leave from the front, so
            // walking back-to-front and stopping at the first counted one
            // touches each connection O(1) times across its parked life.
            for &parked in pending.iter().rev() {
                let Some(conn) = slab.get_mut(parked) else {
                    continue; // died while parked; skipped at pop too
                };
                if conn.deferral_counted {
                    break;
                }
                conn.deferral_counted = true;
                net.admission_deferrals.incr();
            }
            break;
        }
        pending.pop_front();
        let Some(conn) = slab.get_mut(token) else {
            continue; // died while parked; close_conn settled the gauges
        };
        net.pending_admissions.decr();
        conn.admitted = true;
        // The parked interval ends here; the first dispatched request
        // claims it as its admission wait.
        conn.admission_wait = Some(conn.accepted_at.elapsed());
        conn.reserved = true;
        net.admission_reservations.incr();
        // The reservation is deadline-bounded: if no first request has
        // reached dispatch when this fires, on_timer releases the slot
        // back to the parked queue. While the reservation is held this is
        // the only timer armed for the connection (see finish_step), so
        // an idle or dribbling peer cannot extend it.
        let grace = shared
            .config
            .read_timeout
            .saturating_mul(RESERVATION_BUDGET)
            .max(Duration::from_millis(50));
        wheel.schedule(token, now, grace);
        // Pull whatever arrived while parked: in a burst the request is
        // usually already here, so it dispatches — consuming this
        // admission's reserved slot — before the next parked connection
        // is considered.
        conn.drain_socket();
        conn.dispatch_frames();
        conn.flush_writes();
        apply_step(token, reactor, wheel, slab, net, shared, now);
    }
}

/// Accepts every pending connection: over-capacity peers get the
/// retryable `Overloaded` rejection, the rest join the reactor *parked* —
/// registered for errors and hangups only — until [`admit_pending`] finds
/// worker-queue headroom for them.
#[allow(clippy::too_many_arguments)]
fn accept_ready(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    net: &NetMetrics,
    config: &EventLoopConfig,
    job_tx: &SyncSender<Job>,
    reactor: &mut Reactor,
    slab: &mut Slab<EConn>,
    pending: &mut VecDeque<Token>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if slab.len() >= shared.config.max_connections {
                    shared.metrics.connections_rejected.incr();
                    reject_overloaded(stream);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let fd = stream.as_raw_fd();
                shared.metrics.connections_accepted.incr();
                shared.metrics.connections_active.incr();
                net.open_connections.incr();
                let token = slab.insert(EConn {
                    stream,
                    token: Token(0), // patched below, once known
                    decoder: FrameDecoder::new(),
                    write_buf: Vec::new(),
                    write_pos: 0,
                    attached: None,
                    admitted: false,
                    reserved: false,
                    deferral_counted: false,
                    accepted_at: Instant::now(),
                    admission_wait: None,
                    busy: false,
                    read_closed: false,
                    close_after_flush: false,
                    close_now: false,
                    shared: Arc::clone(shared),
                    net: net.clone(),
                    jobs: job_tx.clone(),
                    write_cap: config.max_write_buffer_bytes.max(MAX_FRAME_BYTES + 4),
                });
                slab.get_mut(token).expect("just inserted").token = token;
                if reactor.register(fd, token, Interest::NONE).is_err() {
                    slab.remove(token);
                    net.open_connections.decr();
                    shared.metrics.connections_active.decr();
                    continue;
                }
                net.pending_admissions.incr();
                pending.push_back(token);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}
