//! Client library for the profiling service: a blocking [`Client`] wrapping
//! one TCP connection, plus the [`loadgen`] harness that drives a server
//! with many concurrent recorders and reports throughput and latency.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use mhp_core::{Candidate, Tuple};
use mhp_pipeline::encode_chunk;

use crate::error::ServerError;
use crate::metrics::Histogram;
use crate::protocol::{
    read_frame, write_frame, ProfileData, Request, Response, SessionConfig, SessionInfo,
};

/// A blocking connection to an `mhp-server`.
///
/// One request is in flight at a time; every method sends a frame and
/// waits for the response. Error responses surface as
/// [`ServerError::Remote`]; unexpected-but-valid responses (a server
/// newer than this client) surface as protocol errors.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServerError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// I/O and protocol failures; an error *response* is returned as
    /// `Ok(Response::Error { .. })` for callers that want to inspect it.
    pub fn call(&mut self, request: &Request) -> Result<Response, ServerError> {
        write_frame(&mut self.writer, &request.encode())?;
        let body = read_frame(&mut self.reader)?
            .ok_or_else(|| ServerError::protocol("server hung up before responding"))?;
        Response::decode(&body)
    }

    /// Like [`call`](Self::call), but converts an error response into
    /// [`ServerError::Remote`].
    fn call_ok(&mut self, request: &Request) -> Result<Response, ServerError> {
        match self.call(request)? {
            Response::Error { code, message } => Err(ServerError::Remote { code, message }),
            response => Ok(response),
        }
    }

    /// Opens a named session and attaches this connection to it.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::SessionExists`](crate::ErrorCode::SessionExists) if the name is taken, plus the usual
    /// transport failures.
    pub fn open_session(
        &mut self,
        name: &str,
        config: SessionConfig,
    ) -> Result<SessionInfo, ServerError> {
        match self.call_ok(&Request::Open {
            name: name.to_string(),
            config,
        })? {
            Response::Session(info) => Ok(info),
            other => Err(unexpected(&other)),
        }
    }

    /// Attaches to an existing named session.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownSession`](crate::ErrorCode::UnknownSession) if no such session exists.
    pub fn attach(&mut self, name: &str) -> Result<SessionInfo, ServerError> {
        match self.call_ok(&Request::Attach {
            name: name.to_string(),
        })? {
            Response::Session(info) => Ok(info),
            other => Err(unexpected(&other)),
        }
    }

    /// Streams raw events to the attached session as one encoded chunk.
    /// Returns the session's running `(events, intervals)` totals.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::Ingest`](crate::ErrorCode::Ingest) if the server rejected the chunk.
    pub fn ingest(&mut self, events: &[Tuple]) -> Result<(u64, u64), ServerError> {
        self.ingest_chunk(encode_chunk(events))
    }

    /// Sends an already-encoded trace chunk (e.g. straight out of a trace
    /// file) to the attached session.
    ///
    /// # Errors
    ///
    /// As [`ingest`](Self::ingest).
    pub fn ingest_chunk(&mut self, chunk: Vec<u8>) -> Result<(u64, u64), ServerError> {
        match self.call_ok(&Request::Ingest { chunk })? {
            Response::Ingested { events, intervals } => Ok((events, intervals)),
            other => Err(unexpected(&other)),
        }
    }

    /// Forces the session's global interval to end; `None` if it was empty.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side engine error.
    pub fn cut(&mut self) -> Result<Option<ProfileData>, ServerError> {
        match self.call_ok(&Request::Cut)? {
            Response::Profile(profile) => Ok(Some(profile)),
            Response::NoProfile => Ok(None),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the merged profile of a completed interval; `None` if that
    /// interval does not exist (yet). Pass [`u64::MAX`] for the latest.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side engine error.
    pub fn snapshot(&mut self, interval: u64) -> Result<Option<ProfileData>, ServerError> {
        match self.call_ok(&Request::Snapshot { interval })? {
            Response::Profile(profile) => Ok(Some(profile)),
            Response::NoProfile => Ok(None),
            other => Err(unexpected(&other)),
        }
    }

    /// The hottest `n` tuples of the session's current partial interval.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side engine error.
    pub fn top_k(&mut self, n: u32) -> Result<Vec<Candidate>, ServerError> {
        match self.call_ok(&Request::TopK { n })? {
            Response::TopK(candidates) => Ok(candidates),
            other => Err(unexpected(&other)),
        }
    }

    /// The server's metrics as `key value` text.
    ///
    /// # Errors
    ///
    /// Transport failures only; stats always succeed server-side.
    pub fn stats(&mut self) -> Result<String, ServerError> {
        match self.call_ok(&Request::Stats)? {
            Response::Stats(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// The server's full metric registry (server, engine and sketch
    /// metrics) in Prometheus text exposition format.
    ///
    /// # Errors
    ///
    /// Transport failures only; the metrics query always succeeds
    /// server-side.
    pub fn metrics(&mut self) -> Result<String, ServerError> {
        match self.call_ok(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Destroys the attached session.
    ///
    /// # Errors
    ///
    /// A protocol error if no session is attached.
    pub fn close_session(&mut self) -> Result<(), ServerError> {
        match self.call_ok(&Request::CloseSession)? {
            Response::Done => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn shutdown_server(&mut self) -> Result<(), ServerError> {
        match self.call_ok(&Request::Shutdown)? {
            Response::Done => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(response: &Response) -> ServerError {
    ServerError::protocol_owned(format!("unexpected response {response:?}"))
}

/// Configuration for [`loadgen`].
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client connections, each with its own session.
    pub clients: usize,
    /// Events each client streams.
    pub events_per_client: usize,
    /// Events per ingest chunk.
    pub chunk_events: usize,
    /// Session configuration every client opens with.
    pub session: SessionConfig,
    /// Prefix for the per-client session names (`{prefix}-{i}`).
    pub session_prefix: String,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 8,
            events_per_client: 100_000,
            chunk_events: 4_096,
            session: SessionConfig::default_multi_hash(),
            session_prefix: "loadgen".to_string(),
        }
    }
}

/// What [`loadgen`] measured.
#[derive(Debug)]
pub struct LoadgenReport {
    /// Events streamed across all clients.
    pub events: u64,
    /// Ingest requests issued across all clients.
    pub requests: u64,
    /// Error responses received (any of these is a failed run).
    pub errors: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Per-ingest-request round-trip latency.
    pub latency: Histogram,
}

impl LoadgenReport {
    /// Aggregate ingest throughput, events per second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Renders the human-readable summary the CLI prints.
    pub fn render(&self) -> String {
        format!(
            "events {}\nrequests {}\nerrors {}\nelapsed_ms {}\nevents_per_sec {:.0}\n\
             latency_p50_us {}\nlatency_p90_us {}\nlatency_p99_us {}\n",
            self.events,
            self.requests,
            self.errors,
            self.elapsed.as_millis(),
            self.events_per_sec(),
            self.latency.quantile(0.50),
            self.latency.quantile(0.90),
            self.latency.quantile(0.99),
        )
    }
}

/// Drives `config.clients` concurrent connections against `addr`: each
/// opens its own session, streams a deterministic synthetic workload in
/// chunks, closes the session, and records per-request latency.
///
/// Distinct per-client stream seeds keep the shard hashes from colliding
/// into lockstep; distinct session names keep the registry honest under
/// concurrent opens.
///
/// # Errors
///
/// Connection-establishment failures. Request-level failures do not abort
/// the run; they are counted in [`LoadgenReport::errors`].
pub fn loadgen(
    addr: std::net::SocketAddr,
    config: &LoadgenConfig,
) -> Result<LoadgenReport, ServerError> {
    use std::sync::atomic::{AtomicU64, Ordering};

    let latency = Histogram::new();
    let errors = AtomicU64::new(0);
    let requests = AtomicU64::new(0);
    let started = Instant::now();

    std::thread::scope(|scope| -> Result<(), ServerError> {
        let mut handles = Vec::new();
        for client_idx in 0..config.clients {
            let latency = &latency;
            let errors = &errors;
            let requests = &requests;
            handles.push(scope.spawn(move || -> Result<(), ServerError> {
                let mut client = Client::connect(addr)?;
                let name = format!("{}-{client_idx}", config.session_prefix);
                let mut session = config.session.clone();
                session.seed = session.seed.wrapping_add(client_idx as u64);
                client.open_session(&name, session)?;

                let spec = mhp_trace::StreamSpec::new(
                    mhp_trace::Benchmark::Gcc,
                    mhp_trace::StreamKind::Value,
                    0x10AD ^ client_idx as u64,
                );
                let events: Vec<Tuple> = spec.events().take(config.events_per_client).collect();
                for chunk in events.chunks(config.chunk_events.max(1)) {
                    let sent = Instant::now();
                    let outcome = client.call(&Request::Ingest {
                        chunk: encode_chunk(chunk),
                    });
                    latency.record_duration(sent.elapsed());
                    requests.fetch_add(1, Ordering::Relaxed);
                    match outcome {
                        Ok(Response::Ingested { .. }) => {}
                        Ok(_) | Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                client.close_session()?;
                Ok(())
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(_)) | Err(_) => {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    })?;

    Ok(LoadgenReport {
        events: (config.clients * config.events_per_client) as u64,
        requests: requests.into_inner(),
        errors: errors.into_inner(),
        elapsed: started.elapsed(),
        latency,
    })
}
