//! Client library for the profiling service: a blocking [`Client`] wrapping
//! one TCP connection, plus the [`loadgen`] harness that drives a server
//! with many concurrent recorders and reports throughput and latency.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use mhp_core::{Candidate, Tuple};
use mhp_pipeline::encode_chunk;

use crate::error::{ErrorCode, ServerError};
use crate::metrics::Histogram;
use crate::protocol::{
    read_frame, write_frame, ProfileData, Request, Response, SessionConfig, SessionInfo,
    UpstreamHealth,
};

/// A blocking connection to an `mhp-server`.
///
/// One request is in flight at a time; every method sends a frame and
/// waits for the response. Error responses surface as
/// [`ServerError::Remote`]; unexpected-but-valid responses (a server
/// newer than this client) surface as protocol errors.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServerError> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream)
    }

    /// Connects to a server, failing if the TCP handshake has not
    /// completed within `timeout`. A plain [`connect`](Self::connect)
    /// blocks at the OS's pleasure (minutes against a black-holed peer);
    /// supervised callers like the aggregator's pull workers need the
    /// bound.
    ///
    /// When `addr` resolves to several addresses, each is tried with the
    /// full `timeout` until one succeeds.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if no address accepts within the deadline, or
    /// if `addr` resolves to nothing.
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Client, ServerError> {
        let mut last_err: Option<std::io::Error> = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(stream) => return Client::from_stream(stream),
                Err(err) => last_err = Some(err),
            }
        }
        Err(ServerError::Io(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to no socket addresses",
            )
        })))
    }

    fn from_stream(stream: TcpStream) -> Result<Client, ServerError> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sets (or clears) the read timeout on the underlying socket. A
    /// server that accepts but never answers then surfaces as a
    /// [`ServerError::Io`] timeout at the next frame boundary instead of
    /// blocking forever.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if the socket rejects the option.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServerError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// I/O and protocol failures; an error *response* is returned as
    /// `Ok(Response::Error { .. })` for callers that want to inspect it.
    pub fn call(&mut self, request: &Request) -> Result<Response, ServerError> {
        write_frame(&mut self.writer, &request.encode())?;
        let body = read_frame(&mut self.reader)?
            .ok_or_else(|| ServerError::protocol("server hung up before responding"))?;
        Response::decode(&body)
    }

    /// Like [`call`](Self::call), but converts an error response into
    /// [`ServerError::Remote`].
    fn call_ok(&mut self, request: &Request) -> Result<Response, ServerError> {
        match self.call(request)? {
            Response::Error { code, message } => Err(ServerError::Remote { code, message }),
            response => Ok(response),
        }
    }

    /// Opens a named session and attaches this connection to it.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::SessionExists`](crate::ErrorCode::SessionExists) if the name is taken, plus the usual
    /// transport failures.
    pub fn open_session(
        &mut self,
        name: &str,
        config: SessionConfig,
    ) -> Result<SessionInfo, ServerError> {
        match self.call_ok(&Request::Open {
            name: name.to_string(),
            config,
        })? {
            Response::Session(info) => Ok(info),
            other => Err(unexpected(&other)),
        }
    }

    /// Attaches to an existing named session.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownSession`](crate::ErrorCode::UnknownSession) if no such session exists.
    pub fn attach(&mut self, name: &str) -> Result<SessionInfo, ServerError> {
        match self.call_ok(&Request::Attach {
            name: name.to_string(),
        })? {
            Response::Session(info) => Ok(info),
            other => Err(unexpected(&other)),
        }
    }

    /// Streams raw events to the attached session as one encoded chunk.
    /// Returns the session's running `(events, intervals)` totals.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::Ingest`](crate::ErrorCode::Ingest) if the server rejected the chunk.
    pub fn ingest(&mut self, events: &[Tuple]) -> Result<(u64, u64), ServerError> {
        self.ingest_chunk(encode_chunk(events))
    }

    /// Sends an already-encoded trace chunk (e.g. straight out of a trace
    /// file) to the attached session.
    ///
    /// # Errors
    ///
    /// As [`ingest`](Self::ingest).
    pub fn ingest_chunk(&mut self, chunk: Vec<u8>) -> Result<(u64, u64), ServerError> {
        match self.call_ok(&Request::Ingest { chunk })? {
            Response::Ingested { events, intervals } => Ok((events, intervals)),
            other => Err(unexpected(&other)),
        }
    }

    /// Sends an encoded chunk under a 1-based sequence number. A replay
    /// (`seq` at or below the session's last applied sequence) is
    /// acknowledged without being re-applied, which makes retrying after
    /// a torn connection safe.
    ///
    /// # Errors
    ///
    /// As [`ingest`](Self::ingest), plus
    /// [`ErrorCode::BadRequest`](crate::ErrorCode::BadRequest) on a
    /// sequence gap.
    pub fn ingest_seq(&mut self, seq: u64, chunk: Vec<u8>) -> Result<(u64, u64), ServerError> {
        match self.call_ok(&Request::IngestSeq { seq, chunk })? {
            Response::Ingested { events, intervals } => Ok((events, intervals)),
            other => Err(unexpected(&other)),
        }
    }

    /// The last sequence number the attached session has applied (`0` if
    /// none) — the point a reconnecting sender should replay from.
    ///
    /// # Errors
    ///
    /// Transport failures, or a protocol error if no session is attached.
    pub fn resume(&mut self) -> Result<u64, ServerError> {
        match self.call_ok(&Request::Resume)? {
            Response::Resume { last_seq } => Ok(last_seq),
            other => Err(unexpected(&other)),
        }
    }

    /// Forces the session's global interval to end; `None` if it was empty.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side engine error.
    pub fn cut(&mut self) -> Result<Option<ProfileData>, ServerError> {
        match self.call_ok(&Request::Cut)? {
            Response::Profile(profile) => Ok(Some(profile)),
            Response::NoProfile => Ok(None),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the merged profile of a completed interval; `None` if that
    /// interval does not exist (yet). Pass [`u64::MAX`] for the latest.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side engine error.
    pub fn snapshot(&mut self, interval: u64) -> Result<Option<ProfileData>, ServerError> {
        match self.call_ok(&Request::Snapshot { interval })? {
            Response::Profile(profile) => Ok(Some(profile)),
            Response::NoProfile => Ok(None),
            other => Err(unexpected(&other)),
        }
    }

    /// The hottest `n` tuples of the session's current partial interval.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side engine error.
    pub fn top_k(&mut self, n: u32) -> Result<Vec<Candidate>, ServerError> {
        match self.call_ok(&Request::TopK { n })? {
            Response::TopK(candidates) => Ok(candidates),
            other => Err(unexpected(&other)),
        }
    }

    /// Every session resident on the server, sorted by name. Works
    /// without an attached session — this is how aggregators and
    /// dashboards discover what a server is holding.
    ///
    /// # Errors
    ///
    /// Transport failures only; the listing always succeeds server-side.
    pub fn list_sessions(&mut self) -> Result<Vec<SessionInfo>, ServerError> {
        Ok(self.list_sessions_with_health()?.0)
    }

    /// Like [`list_sessions`](Self::list_sessions), but also returns the
    /// per-upstream health block an aggregator attaches to its listing
    /// (empty when the peer is a leaf server).
    ///
    /// # Errors
    ///
    /// As [`list_sessions`](Self::list_sessions).
    pub fn list_sessions_with_health(
        &mut self,
    ) -> Result<(Vec<SessionInfo>, Vec<UpstreamHealth>), ServerError> {
        match self.call_ok(&Request::ListSessions)? {
            Response::SessionList {
                sessions,
                upstreams,
            } => Ok((sessions, upstreams)),
            other => Err(unexpected(&other)),
        }
    }

    /// The server's metrics as `key value` text.
    ///
    /// # Errors
    ///
    /// Transport failures only; stats always succeed server-side.
    pub fn stats(&mut self) -> Result<String, ServerError> {
        match self.call_ok(&Request::Stats)? {
            Response::Stats(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// The server's full metric registry (server, engine and sketch
    /// metrics) in Prometheus text exposition format.
    ///
    /// # Errors
    ///
    /// Transport failures only; the metrics query always succeeds
    /// server-side.
    pub fn metrics(&mut self) -> Result<String, ServerError> {
        match self.call_ok(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// The server's request-trace stream as JSONL: `stage_summary` lines
    /// (per-stage p50/p99/p999) followed by sampled `trace` lines. Parse
    /// the summaries with [`parse_stage_latencies`].
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadRequest`](crate::ErrorCode::BadRequest) from a
    /// server predating the `traces` op (the unknown-opcode answer), plus
    /// transport failures.
    pub fn traces(&mut self) -> Result<String, ServerError> {
        match self.call_ok(&Request::Traces)? {
            Response::Traces(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Destroys the attached session.
    ///
    /// # Errors
    ///
    /// A protocol error if no session is attached.
    pub fn close_session(&mut self) -> Result<(), ServerError> {
        match self.call_ok(&Request::CloseSession)? {
            Response::Done => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn shutdown_server(&mut self) -> Result<(), ServerError> {
        match self.call_ok(&Request::Shutdown)? {
            Response::Done => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(response: &Response) -> ServerError {
    ServerError::protocol_owned(format!("unexpected response {response:?}"))
}

/// One per-stage latency row scraped from a server's trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageLatency {
    /// Stage name (`"total"` for the whole-request histogram).
    pub stage: String,
    /// Requests that touched this stage.
    pub count: u64,
    /// Median, in microseconds.
    pub p50_us: u64,
    /// 99th percentile, in microseconds.
    pub p99_us: u64,
    /// 99.9th percentile, in microseconds.
    pub p999_us: u64,
}

/// Extracts the value of a numeric `"key":123` field from one JSON line.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let pattern = format!("\"{key}\":");
    let rest = &line[line.find(&pattern)? + pattern.len()..];
    let digits = rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    rest[..digits].parse().ok()
}

/// Extracts the value of a string `"key":"..."` field from one JSON line.
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pattern = format!("\"{key}\":\"");
    let rest = &line[line.find(&pattern)? + pattern.len()..];
    rest.split('"').next()
}

/// Parses the `stage_summary` lines out of a `traces` JSONL stream (see
/// [`Client::traces`]) into per-stage latency rows, in stream order.
/// Non-summary lines (sampled traces) and malformed lines are skipped.
pub fn parse_stage_latencies(jsonl: &str) -> Vec<StageLatency> {
    jsonl
        .lines()
        .filter(|line| line.contains("\"type\":\"stage_summary\""))
        .filter_map(|line| {
            Some(StageLatency {
                stage: json_str(line, "stage")?.to_string(),
                count: json_u64(line, "count")?,
                p50_us: json_u64(line, "p50_us")?,
                p99_us: json_u64(line, "p99_us")?,
                p999_us: json_u64(line, "p999_us")?,
            })
        })
        .collect()
}

/// Retry and backoff policy for [`ReconnectingClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries per operation beyond the first attempt (`0` fails on the
    /// first error).
    pub max_retries: u32,
    /// First backoff; doubles per consecutive failure.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter mixed into each backoff, so
    /// reconnecting fleets do not thunder in lockstep while tests stay
    /// reproducible.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The pause before retry `attempt` (1-based): exponential from
    /// [`base_backoff`](Self::base_backoff), capped at
    /// [`max_backoff`](Self::max_backoff), plus deterministic jitter of
    /// up to half the pause. Public so other supervised retry loops (the
    /// aggregator's pull workers) share the exact same discipline.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(16);
        let backoff = self
            .base_backoff
            .saturating_mul(1 << doublings)
            .min(self.max_backoff);
        let jitter_range = (backoff.as_millis() as u64 / 2).max(1);
        let jitter = splitmix64(self.jitter_seed ^ u64::from(attempt)) % jitter_range;
        backoff + Duration::from_millis(jitter)
    }
}

/// SplitMix64 finalizer, for deterministic backoff jitter.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether an error is worth a reconnect-and-retry: transport failures
/// and torn frames (the server or network died under us), `overloaded`
/// sheds (the server asked us to back off), `quota-exceeded` ingest
/// rejections (the tenant's token bucket refills within a second, so
/// backing off clears them), and `ingest` rejections (covers transient
/// corruption caught by the chunk CRC — a sequenced replay of the same
/// chunk is idempotent, so retrying is safe). Every other remote
/// rejection is a permanent answer, not a transient fault.
fn retryable(error: &ServerError) -> bool {
    match error {
        ServerError::Io(_) | ServerError::Protocol(_) => true,
        ServerError::Remote { code, .. } => {
            matches!(
                code,
                ErrorCode::Overloaded | ErrorCode::Ingest | ErrorCode::QuotaExceeded
            )
        }
        ServerError::Pipeline(_) => false,
    }
}

/// A [`Client`] wrapper that survives disconnects, server restarts and
/// overload sheds: every chunk is sent under a sequence number and
/// retained, so after a reconnect the wrapper asks the server where it
/// got to (`resume`) and replays exactly the missing suffix. The server
/// deduplicates replays, so a chunk whose acknowledgement was lost is
/// never double-counted.
#[derive(Debug)]
pub struct ReconnectingClient {
    addr: std::net::SocketAddr,
    session: String,
    config: SessionConfig,
    policy: RetryPolicy,
    client: Option<Client>,
    /// Every chunk sent so far; index `i` holds sequence `i + 1`. Retained
    /// so a restart from an older checkpoint can be replayed from any
    /// resume point the server reports.
    sent: Vec<Vec<u8>>,
    /// Highest sequence the server has acknowledged applying.
    acked: u64,
    retries: u64,
    connects: u64,
}

impl ReconnectingClient {
    /// Connects and opens (or, if it already exists — e.g. restored from
    /// a checkpoint after a server restart — attaches to) the named
    /// session, retrying per `policy`.
    ///
    /// # Errors
    ///
    /// The last connection error once retries are exhausted, or a
    /// non-retryable server rejection.
    pub fn open(
        addr: std::net::SocketAddr,
        session: &str,
        config: SessionConfig,
        policy: RetryPolicy,
    ) -> Result<ReconnectingClient, ServerError> {
        let mut this = ReconnectingClient {
            addr,
            session: session.to_string(),
            config,
            policy,
            client: None,
            sent: Vec::new(),
            acked: 0,
            retries: 0,
            connects: 0,
        };
        this.retry_loop(Self::ensure_connected)?;
        Ok(this)
    }

    /// Streams raw events as the next sequenced chunk; returns the
    /// session's `(events, intervals)` totals once acknowledged.
    ///
    /// # Errors
    ///
    /// As [`ingest_chunk`](Self::ingest_chunk).
    pub fn ingest(&mut self, events: &[Tuple]) -> Result<(u64, u64), ServerError> {
        self.ingest_chunk(encode_chunk(events))
    }

    /// Sends an already-encoded chunk under the next sequence number,
    /// reconnecting and replaying from the server's resume point as
    /// needed until it is acknowledged or retries are exhausted.
    ///
    /// # Errors
    ///
    /// The last error once retries are exhausted, or a non-retryable
    /// server rejection.
    pub fn ingest_chunk(&mut self, chunk: Vec<u8>) -> Result<(u64, u64), ServerError> {
        self.sent.push(chunk);
        let target = self.sent.len() as u64;
        self.retry_loop(|this| this.drive_to(target))
    }

    /// The hottest `n` tuples of the current partial interval, with
    /// reconnect-and-retry.
    ///
    /// # Errors
    ///
    /// As [`ingest_chunk`](Self::ingest_chunk).
    pub fn top_k(&mut self, n: u32) -> Result<Vec<Candidate>, ServerError> {
        self.retry_loop(|this| {
            this.ensure_connected()?;
            this.client.as_mut().expect("connected").top_k(n)
        })
    }

    /// The merged profile of a completed interval (`u64::MAX` for the
    /// latest), with reconnect-and-retry.
    ///
    /// # Errors
    ///
    /// As [`ingest_chunk`](Self::ingest_chunk).
    pub fn snapshot(&mut self, interval: u64) -> Result<Option<ProfileData>, ServerError> {
        self.retry_loop(|this| {
            this.ensure_connected()?;
            this.client.as_mut().expect("connected").snapshot(interval)
        })
    }

    /// Destroys the session. Best-effort idempotent: an `unknown-session`
    /// answer after a retried transport failure means a previous attempt
    /// already won, and is success.
    ///
    /// # Errors
    ///
    /// As [`ingest_chunk`](Self::ingest_chunk).
    pub fn close_session(&mut self) -> Result<(), ServerError> {
        let result = self.retry_loop(|this| {
            this.ensure_connected()?;
            this.client.as_mut().expect("connected").close_session()
        });
        match result {
            Err(ServerError::Remote {
                code: ErrorCode::UnknownSession,
                ..
            }) => Ok(()),
            other => other,
        }
    }

    /// Highest sequence number the server has acknowledged.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Retry attempts performed so far, across all operations.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Connections established so far (1 for an undisturbed stream).
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Runs `op`, reconnecting with exponential backoff on retryable
    /// failures until it succeeds or the retry budget is spent.
    fn retry_loop<T>(
        &mut self,
        mut op: impl FnMut(&mut Self) -> Result<T, ServerError>,
    ) -> Result<T, ServerError> {
        let mut attempt = 0u32;
        loop {
            match op(self) {
                Ok(value) => return Ok(value),
                Err(error) if !retryable(&error) => return Err(error),
                Err(error) => {
                    if attempt >= self.policy.max_retries {
                        return Err(error);
                    }
                    attempt += 1;
                    self.retries += 1;
                    // The stream may be desynced mid-frame; start fresh.
                    self.client = None;
                    std::thread::sleep(self.policy.backoff(attempt));
                }
            }
        }
    }

    /// Connects, attaches-or-opens the session, and resyncs the ack
    /// cursor from the server's authoritative resume point. No-op when
    /// already connected.
    fn ensure_connected(&mut self) -> Result<(), ServerError> {
        if self.client.is_some() {
            return Ok(());
        }
        let mut client = Client::connect(self.addr)?;
        match client.attach(&self.session) {
            Ok(_) => {
                // A restart from an older checkpoint lowers the resume
                // point; replaying from there is what makes the restored
                // session converge on the uninterrupted result.
                self.acked = client.resume()?;
            }
            Err(ServerError::Remote {
                code: ErrorCode::UnknownSession,
                ..
            }) => {
                client.open_session(&self.session, self.config.clone())?;
                self.acked = 0;
            }
            Err(error) => return Err(error),
        }
        self.connects += 1;
        self.client = Some(client);
        Ok(())
    }

    /// Replays sequences `acked + 1 ..= target` (or just `target`, as an
    /// idempotent ack-fetch, when everything is already applied) and
    /// returns the session totals from the last acknowledgement.
    fn drive_to(&mut self, target: u64) -> Result<(u64, u64), ServerError> {
        self.ensure_connected()?;
        let client = self.client.as_mut().expect("connected");
        let start = (self.acked + 1).min(target);
        let mut totals = (0, 0);
        for seq in start..=target {
            let chunk = self.sent[(seq - 1) as usize].clone();
            totals = client.ingest_seq(seq, chunk)?;
            self.acked = self.acked.max(seq);
        }
        Ok(totals)
    }
}

/// Configuration for [`loadgen`].
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client connections, each with its own session.
    pub clients: usize,
    /// Events each client streams.
    pub events_per_client: usize,
    /// Events per ingest chunk.
    pub chunk_events: usize,
    /// Session configuration every client opens with.
    pub session: SessionConfig,
    /// Prefix for the per-client session names (`{prefix}-{i}`).
    pub session_prefix: String,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 8,
            events_per_client: 100_000,
            chunk_events: 4_096,
            session: SessionConfig::default_multi_hash(),
            session_prefix: "loadgen".to_string(),
        }
    }
}

/// What [`loadgen`] measured.
#[derive(Debug)]
pub struct LoadgenReport {
    /// Events streamed across all clients.
    pub events: u64,
    /// Ingest requests issued across all clients.
    pub requests: u64,
    /// Error responses received (any of these is a failed run).
    pub errors: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Per-ingest-request round-trip latency.
    pub latency: Histogram,
    /// Per-stage server-side latency breakdown, scraped from the server's
    /// trace stream after the run; `None` against a server predating the
    /// `traces` op (the probe degrades gracefully to client-side
    /// percentiles only).
    pub stages: Option<Vec<StageLatency>>,
}

impl LoadgenReport {
    /// Aggregate ingest throughput, events per second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Renders the human-readable summary the CLI prints: the client-side
    /// totals and percentiles, then — when the server advertises tracing —
    /// one line per server-side stage.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "events {}\nrequests {}\nerrors {}\nelapsed_ms {}\nevents_per_sec {:.0}\n\
             latency_p50_us {}\nlatency_p90_us {}\nlatency_p99_us {}\n",
            self.events,
            self.requests,
            self.errors,
            self.elapsed.as_millis(),
            self.events_per_sec(),
            self.latency.quantile(0.50),
            self.latency.quantile(0.90),
            self.latency.quantile(0.99),
        );
        if let Some(stages) = &self.stages {
            for s in stages {
                let _ = writeln!(
                    out,
                    "stage_{} count {} p50_us {} p99_us {} p999_us {}",
                    s.stage, s.count, s.p50_us, s.p99_us, s.p999_us
                );
            }
        }
        out
    }
}

/// Probes the server once for its per-stage trace summaries. An older
/// server answers the unknown `traces` opcode with `bad-request` (and
/// hangs up), which degrades to `None` — loadgen then reports client-side
/// percentiles only. Any other failure also degrades rather than failing
/// a finished run.
fn fetch_stage_latencies(addr: std::net::SocketAddr) -> Option<Vec<StageLatency>> {
    let mut client = Client::connect(addr).ok()?;
    match client.traces() {
        Ok(jsonl) => Some(parse_stage_latencies(&jsonl)),
        Err(ServerError::Remote {
            code: ErrorCode::BadRequest,
            ..
        }) => None,
        Err(_) => None,
    }
}

/// Drives `config.clients` concurrent connections against `addr`: each
/// opens its own session, streams a deterministic synthetic workload in
/// chunks, closes the session, and records per-request latency.
///
/// Distinct per-client stream seeds keep the shard hashes from colliding
/// into lockstep; distinct session names keep the registry honest under
/// concurrent opens.
///
/// # Errors
///
/// Connection-establishment failures. Request-level failures do not abort
/// the run; they are counted in [`LoadgenReport::errors`].
pub fn loadgen(
    addr: std::net::SocketAddr,
    config: &LoadgenConfig,
) -> Result<LoadgenReport, ServerError> {
    use std::sync::atomic::{AtomicU64, Ordering};

    let latency = Histogram::new();
    let errors = AtomicU64::new(0);
    let requests = AtomicU64::new(0);
    let started = Instant::now();

    std::thread::scope(|scope| -> Result<(), ServerError> {
        let mut handles = Vec::new();
        for client_idx in 0..config.clients {
            let latency = &latency;
            let errors = &errors;
            let requests = &requests;
            handles.push(scope.spawn(move || -> Result<(), ServerError> {
                let mut client = Client::connect(addr)?;
                let name = format!("{}-{client_idx}", config.session_prefix);
                let mut session = config.session.clone();
                session.seed = session.seed.wrapping_add(client_idx as u64);
                client.open_session(&name, session)?;

                let spec = mhp_trace::StreamSpec::new(
                    mhp_trace::Benchmark::Gcc,
                    mhp_trace::StreamKind::Value,
                    0x10AD ^ client_idx as u64,
                );
                let events: Vec<Tuple> = spec.events().take(config.events_per_client).collect();
                for chunk in events.chunks(config.chunk_events.max(1)) {
                    let sent = Instant::now();
                    let outcome = client.call(&Request::Ingest {
                        chunk: encode_chunk(chunk),
                    });
                    latency.record_duration(sent.elapsed());
                    requests.fetch_add(1, Ordering::Relaxed);
                    match outcome {
                        Ok(Response::Ingested { .. }) => {}
                        Ok(_) | Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                client.close_session()?;
                Ok(())
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(_)) | Err(_) => {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    })?;

    let elapsed = started.elapsed();
    Ok(LoadgenReport {
        events: (config.clients * config.events_per_client) as u64,
        requests: requests.into_inner(),
        errors: errors.into_inner(),
        elapsed,
        latency,
        // Probed after the clock stops, so the extra round trip never
        // skews the throughput figure.
        stages: fetch_stage_latencies(addr),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_stage_latencies_reads_summary_lines_and_skips_the_rest() {
        let jsonl = concat!(
            "{\"type\":\"stage_summary\",\"stage\":\"ingest\",\"count\":80,",
            "\"p50_us\":120,\"p99_us\":900,\"p999_us\":2500}\n",
            "{\"type\":\"stage_summary\",\"stage\":\"total\",\"count\":80,",
            "\"p50_us\":140,\"p99_us\":1100,\"p999_us\":3000}\n",
            "{\"type\":\"trace\",\"sample\":\"slow\",\"seq\":7,\"kind\":\"ingest\",",
            "\"detail\":0,\"start_us\":12,\"total_us\":999,\"stages\":{\"ingest\":999}}\n",
            "not json at all\n",
        );
        let stages = parse_stage_latencies(jsonl);
        assert_eq!(
            stages,
            vec![
                StageLatency {
                    stage: "ingest".to_string(),
                    count: 80,
                    p50_us: 120,
                    p99_us: 900,
                    p999_us: 2500,
                },
                StageLatency {
                    stage: "total".to_string(),
                    count: 80,
                    p50_us: 140,
                    p99_us: 1100,
                    p999_us: 3000,
                },
            ]
        );
    }

    #[test]
    fn parse_stage_latencies_skips_summary_lines_with_missing_fields() {
        let jsonl = concat!(
            "{\"type\":\"stage_summary\",\"stage\":\"ingest\"}\n",
            "{\"type\":\"stage_summary\",\"stage\":\"reply_write\",\"count\":9,",
            "\"p50_us\":1,\"p99_us\":2,\"p999_us\":3}\n",
        );
        let stages = parse_stage_latencies(jsonl);
        assert_eq!(stages.len(), 1, "truncated line dropped, full line kept");
        assert_eq!(stages[0].stage, "reply_write");
    }
}
