//! End-to-end acceptance tests: a real server on an ephemeral port, real
//! TCP clients, and equivalence against offline engine runs.

use mhp_core::Tuple;
use mhp_pipeline::{EngineConfig, ShardedEngine};
use mhp_server::{
    loadgen, stat_value, Client, ErrorCode, LoadgenConfig, ProfileData, ProfilerKind, Server,
    ServerConfig, ServerError, SessionConfig,
};
use mhp_trace::{Benchmark, StreamKind, StreamSpec};

fn workload(seed: u64, n: usize) -> Vec<Tuple> {
    StreamSpec::new(Benchmark::Gcc, StreamKind::Value, seed)
        .events()
        .take(n)
        .collect()
}

fn offline_profiles(config: &SessionConfig, events: &[Tuple]) -> Vec<ProfileData> {
    let interval = mhp_core::IntervalConfig::new(config.interval_len, config.threshold).unwrap();
    let engine = ShardedEngine::new(
        EngineConfig::new(config.shards as usize),
        interval,
        config.kind.spec(),
        config.seed,
    );
    let report = engine.run(events.iter().copied()).unwrap();
    report
        .profiles
        .iter()
        .map(ProfileData::from_profile)
        .collect()
}

/// The core acceptance criterion: a workload streamed chunk-by-chunk over
/// TCP yields snapshots identical to an offline single-process run — exact
/// for the perfect profiler across shards, exact for multi-hash on one
/// shard (where the engine is literally the single-threaded computation).
#[test]
fn streamed_snapshots_match_offline_runs_exactly() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let events = workload(42, 25_000);

    let configs = [
        SessionConfig {
            kind: ProfilerKind::MultiHash,
            shards: 1,
            interval_len: 5_000,
            threshold: 0.01,
            seed: 7,
        },
        SessionConfig {
            kind: ProfilerKind::Perfect,
            shards: 4,
            interval_len: 5_000,
            threshold: 0.01,
            seed: 7,
        },
    ];
    for (idx, config) in configs.iter().enumerate() {
        let expected = offline_profiles(config, &events);
        assert_eq!(expected.len(), 5);

        let mut client = Client::connect(server.local_addr()).unwrap();
        let name = format!("equiv-{idx}");
        client.open_session(&name, config.clone()).unwrap();
        let mut totals = (0, 0);
        for chunk in events.chunks(1_024) {
            totals = client.ingest(chunk).unwrap();
        }
        assert_eq!(totals, (25_000, 5), "{}", config.kind.name());

        for (interval, reference) in expected.iter().enumerate() {
            let got = client.snapshot(interval as u64).unwrap().unwrap();
            assert_eq!(
                got,
                *reference,
                "{} interval {interval}",
                config.kind.name()
            );
        }
        // u64::MAX resolves to the newest completed interval.
        let latest = client.snapshot(u64::MAX).unwrap().unwrap();
        assert_eq!(latest, expected[4]);
        assert!(client.snapshot(5).unwrap().is_none(), "only 5 intervals");
        client.close_session().unwrap();
    }
    server.join();
}

/// Live top-k over the wire equals the offline engine's live top-k, and a
/// forced cut returns the partial interval's profile.
#[test]
fn top_k_and_forced_cut_match_the_offline_engine() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let events = workload(9, 7_500); // 5 000-interval => 2 500 partial
    let config = SessionConfig {
        kind: ProfilerKind::Perfect,
        shards: 2,
        interval_len: 5_000,
        threshold: 0.01,
        seed: 1,
    };

    let interval = mhp_core::IntervalConfig::new(config.interval_len, config.threshold).unwrap();
    let engine = ShardedEngine::new(
        EngineConfig::new(2),
        interval,
        config.kind.spec(),
        config.seed,
    );
    let mut offline = engine.start().unwrap();
    offline.push_all(events.iter().copied()).unwrap();
    let expected_topk = offline.top_k(10).unwrap();
    let expected_cut = offline.cut().unwrap().unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    client.open_session("livetopk", config).unwrap();
    for chunk in events.chunks(512) {
        client.ingest(chunk).unwrap();
    }
    let got_topk = client.top_k(10).unwrap();
    assert_eq!(got_topk, expected_topk);
    let got_cut = client.cut().unwrap().unwrap();
    assert_eq!(got_cut, ProfileData::from_profile(&expected_cut));
    // Nothing pending now: cutting again is a clean no-op.
    assert!(client.cut().unwrap().is_none());
    server.join();
}

/// A second connection can attach to a session by name and observe the
/// state the first connection built.
#[test]
fn sessions_are_shared_across_connections() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let events = workload(3, 12_000);

    let mut recorder = Client::connect(server.local_addr()).unwrap();
    recorder
        .open_session("shared", SessionConfig::default_multi_hash())
        .unwrap();
    for chunk in events.chunks(2_048) {
        recorder.ingest(chunk).unwrap();
    }

    let mut dashboard = Client::connect(server.local_addr()).unwrap();
    let info = dashboard.attach("shared").unwrap();
    assert_eq!(info.events, 12_000);
    assert_eq!(info.intervals, 1);
    assert!(dashboard.snapshot(u64::MAX).unwrap().is_some());

    // Unknown names are a typed error, not a hang or a disconnect.
    let mut stranger = Client::connect(server.local_addr()).unwrap();
    match stranger.attach("nope") {
        Err(ServerError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("expected unknown-session, got {other:?}"),
    }
    // Re-opening a taken name is refused.
    match stranger.open_session("shared", SessionConfig::default_multi_hash()) {
        Err(ServerError::Remote { code, .. }) => assert_eq!(code, ErrorCode::SessionExists),
        other => panic!("expected session-exists, got {other:?}"),
    }
    server.join();
}

/// Eight concurrent loadgen clients complete with zero protocol errors,
/// and the server's metrics show the traffic: non-zero counters and
/// populated latency histograms.
#[test]
fn loadgen_eight_clients_clean_and_stats_populated() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let config = LoadgenConfig {
        clients: 8,
        events_per_client: 20_000,
        chunk_events: 2_048,
        session: SessionConfig::default_multi_hash(),
        session_prefix: "lg".to_string(),
    };
    let report = loadgen(server.local_addr(), &config).unwrap();
    assert_eq!(report.errors, 0, "no protocol errors under concurrency");
    assert_eq!(report.events, 160_000);
    assert_eq!(report.requests, 8 * 10);
    assert!(report.events_per_sec() > 0.0);
    assert!(report.latency.count() >= 80);

    let mut client = Client::connect(server.local_addr()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stat_value(&stats, "events_ingested"), Some(160_000));
    assert_eq!(stat_value(&stats, "chunks_ingested"), Some(80));
    assert_eq!(stat_value(&stats, "sessions_opened"), Some(8));
    assert_eq!(stat_value(&stats, "sessions_closed"), Some(8));
    assert!(stat_value(&stats, "requests_total").unwrap() >= 80);
    assert!(stat_value(&stats, "connections_accepted").unwrap() >= 8);
    assert!(stat_value(&stats, "request_latency_count").unwrap() >= 80);
    assert!(stat_value(&stats, "request_latency_p99_us").unwrap() > 0);
    assert!(stat_value(&stats, "chunk_decode_count").unwrap() >= 80);
    assert_eq!(stat_value(&stats, "protocol_errors"), Some(0));

    // The Prometheus exposition covers the same traffic across all three
    // layers: server counters, engine dispatch, sketch introspection.
    let metrics = client.metrics().unwrap();
    assert!(metrics.contains("# TYPE server_requests_total counter"));
    assert_eq!(
        stat_value(&metrics, "server_events_ingested_total"),
        Some(160_000)
    );
    assert_eq!(stat_value(&metrics, "engine_events_total"), Some(160_000));
    assert!(stat_value(&metrics, "engine_cuts_total").unwrap() >= 8);
    assert!(stat_value(&metrics, "sketch_intervals_total").unwrap() >= 8);
    assert!(stat_value(&metrics, "sketch_promotions_total").unwrap() > 0);
    assert!(metrics.contains("# TYPE server_request_latency_us histogram"));
    assert!(metrics.contains("server_request_latency_us_bucket{le=\"+Inf\"}"));
    server.join();
}

/// The JSONL metrics exporter writes at least a final snapshot at
/// shutdown, and each line is a self-contained JSON object.
#[test]
fn metrics_export_writes_jsonl_snapshots() {
    let dir = std::env::temp_dir().join(format!("mhp-metrics-export-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.jsonl");
    let _ = std::fs::remove_file(&path);

    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            metrics_export_path: Some(path.clone()),
            metrics_export_interval: std::time::Duration::from_millis(100),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .open_session("export", SessionConfig::default_multi_hash())
        .unwrap();
    client.ingest(&workload(11, 12_000)).unwrap();
    client.shutdown_server().unwrap();
    drop(client);
    server.wait();

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "at least the shutdown snapshot");
    // Registry snapshots first, then the shutdown trace stream: every
    // line is a self-contained JSON object, snapshots carry a wall-clock
    // stamp, trace lines carry a type tag.
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "JSONL: {line}"
        );
        assert!(
            line.contains("\"ts_ms\":")
                || line.contains("\"type\":\"stage_summary\"")
                || line.contains("\"type\":\"trace\""),
            "neither snapshot nor trace line: {line}"
        );
    }
    // The final snapshot saw the session's traffic.
    let last_snapshot = lines.iter().rfind(|l| l.contains("\"ts_ms\":")).unwrap();
    assert!(
        last_snapshot.contains("\"server_events_ingested_total\":12000"),
        "{last_snapshot}"
    );
    // The trailing trace stream attributes the ingest stage.
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"type\":\"stage_summary\"") && l.contains("\"stage\":\"ingest\"")),
        "trace stream missing from export"
    );
    let _ = std::fs::remove_file(&path);
}

/// Connections beyond the limit receive a graceful, retryable
/// `overloaded` error response instead of hanging or being reset.
#[test]
fn over_limit_connections_are_rejected_gracefully() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut first = Client::connect(server.local_addr()).unwrap();
    first
        .open_session("holder", SessionConfig::default_multi_hash())
        .unwrap();

    // The accept loop is single-threaded, so after the first client's
    // request round-trips, a second connection must see `overloaded` —
    // a retryable code, so well-behaved clients back off and reconnect.
    let mut second = Client::connect(server.local_addr()).unwrap();
    match second.call(&mhp_server::Request::Stats) {
        Ok(mhp_server::Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected overloaded rejection, got {other:?}"),
    }
    drop(second);
    drop(first);
    server.join();
}

/// Malformed bytes get an error response and the connection is dropped;
/// the server survives and keeps serving others.
#[test]
fn protocol_violations_are_contained() {
    use std::io::Write as _;
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();

    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    // An oversized declared frame: 4 GiB of nothing.
    raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
    raw.flush().unwrap();
    // The server answers with an error frame and hangs up.
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let body = mhp_server::protocol::read_frame(&mut reader)
        .unwrap()
        .unwrap();
    match mhp_server::Response::decode(&body).unwrap() {
        mhp_server::Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected error response, got {other:?}"),
    }

    // A fresh, well-behaved client still gets served.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let stats = client.stats().unwrap();
    assert!(stat_value(&stats, "protocol_errors").unwrap() >= 1);
    server.join();
}

/// Graceful shutdown over the wire: in-flight sessions are drained, the
/// accept loop exits, and the server process (here: thread) terminates.
#[test]
fn shutdown_request_drains_sessions_and_stops_the_server() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    client
        .open_session("draining", SessionConfig::default_multi_hash())
        .unwrap();
    client.ingest(&workload(5, 3_000)).unwrap();
    client.shutdown_server().unwrap();
    drop(client);

    // wait() returns only when the accept loop has drained everything.
    server.wait();

    // The port is closed: new connections are refused.
    assert!(std::net::TcpStream::connect(addr).is_err());
}

/// `sessions` lists every resident session, sorted by name, without an
/// attached session — the discovery primitive an aggregator polls.
#[test]
fn session_listing_reports_every_resident_session_sorted() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert!(client.list_sessions().unwrap().is_empty());

    for name in ["acme/web", "acme/api", "beta/db"] {
        let mut opener = Client::connect(server.local_addr()).unwrap();
        opener
            .open_session(name, SessionConfig::default_multi_hash())
            .unwrap();
        opener.ingest(&workload(9, 2_000)).unwrap();
    }

    let listed = client.list_sessions().unwrap();
    let names: Vec<&str> = listed.iter().map(|info| info.name.as_str()).collect();
    assert_eq!(names, ["acme/api", "acme/web", "beta/db"]);
    for info in &listed {
        assert_eq!(info.events, 2_000);
    }
    server.join();
}

/// Per-tenant session quota: the tenant at its limit gets a typed
/// `quota-exceeded` rejection (visible in the Prometheus exposition as a
/// labeled counter) while other tenants keep opening sessions.
#[test]
fn tenant_session_quota_rejects_with_labeled_counter() {
    let config = ServerConfig {
        tenant_quotas: mhp_server::TenantQuotas {
            max_sessions: 2,
            max_bytes_per_sec: u64::MAX,
        },
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();

    let mut holders = Vec::new();
    for name in ["acme/one", "acme/two"] {
        let mut client = Client::connect(server.local_addr()).unwrap();
        client
            .open_session(name, SessionConfig::default_multi_hash())
            .unwrap();
        holders.push(client);
    }
    let mut third = Client::connect(server.local_addr()).unwrap();
    match third.open_session("acme/three", SessionConfig::default_multi_hash()) {
        Err(ServerError::Remote { code, .. }) => assert_eq!(code, ErrorCode::QuotaExceeded),
        other => panic!("expected quota rejection, got {other:?}"),
    }
    // A different tenant is unaffected by acme's quota.
    third
        .open_session("beta/one", SessionConfig::default_multi_hash())
        .unwrap();

    let exposition = third.metrics().unwrap();
    assert!(
        exposition.contains("server_tenant_quota_rejections_total{tenant=\"acme\"} 1"),
        "missing quota counter in:\n{exposition}"
    );
    assert!(
        exposition.contains("server_tenant_sessions_opened_total{tenant=\"acme\"} 2"),
        "missing opened counter in:\n{exposition}"
    );
    assert!(
        exposition.contains("server_tenant_sessions_opened_total{tenant=\"beta\"} 1"),
        "missing beta counter in:\n{exposition}"
    );
    server.join();
}

/// Per-tenant ingest byte budget: a tiny token bucket rejects the second
/// chunk with `quota-exceeded`, and the rejection clears as the bucket
/// refills — the error is transient, not a dead end.
#[test]
fn tenant_byte_budget_throttles_and_recovers() {
    let config = ServerConfig {
        tenant_quotas: mhp_server::TenantQuotas {
            max_sessions: usize::MAX,
            // One 1k-event chunk (~6.7 KB varint-encoded) fits; two do
            // not.
            max_bytes_per_sec: 10_000,
        },
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .open_session("acme/throttled", SessionConfig::default_multi_hash())
        .unwrap();

    let events = workload(3, 2_000);
    client.ingest(&events[..1_000]).unwrap();
    match client.ingest(&events[1_000..]) {
        Err(ServerError::Remote { code, .. }) => assert_eq!(code, ErrorCode::QuotaExceeded),
        other => panic!("expected throttle, got {other:?}"),
    }
    // The bucket refills continuously; within ~1s the same chunk goes
    // through.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        match client.ingest(&events[1_000..]) {
            Ok(_) => break,
            Err(ServerError::Remote {
                code: ErrorCode::QuotaExceeded,
                ..
            }) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            other => panic!("throttle never cleared: {other:?}"),
        }
    }

    let exposition = client.metrics().unwrap();
    assert!(
        exposition.contains("server_tenant_quota_rejections_total{tenant=\"acme\"}"),
        "missing rejection counter in:\n{exposition}"
    );
    server.join();
}

/// Memory-budget eviction: with a tiny budget, idle sessions are
/// checkpointed and evicted LRU-first (counted per tenant), and a later
/// attach restores the evicted session transparently with its data
/// intact.
#[test]
fn idle_sessions_evict_under_memory_budget_and_restore_on_attach() {
    let dir = std::env::temp_dir().join(format!("mhp-evict-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig {
        state_dir: Some(dir.clone()),
        // Far below one engine's ~64 KiB/shard floor: every idle session
        // is over budget.
        session_memory_budget: Some(1),
        // Keep the periodic checkpointer quiet; eviction checkpoints on
        // its own.
        checkpoint_interval: std::time::Duration::from_secs(3_600),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();

    let events = workload(11, 12_000);
    let expected_topk = {
        let mut client = Client::connect(server.local_addr()).unwrap();
        client
            .open_session("acme/evictee", SessionConfig::default_multi_hash())
            .unwrap();
        client.ingest(&events).unwrap();
        client.top_k(5).unwrap()
        // Dropping the connection releases the attachment; the session
        // becomes evictable.
    };

    // The sweep runs every ~100ms; wait for the eviction counter.
    let mut query = Client::connect(server.local_addr()).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let exposition = query.metrics().unwrap();
        if exposition.contains("server_tenant_evictions_total{tenant=\"acme\"}") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "eviction never happened:\n{exposition}"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    // Attach restores the checkpointed session with its state intact.
    let mut back = Client::connect(server.local_addr()).unwrap();
    let info = back.attach("acme/evictee").unwrap();
    assert_eq!(info.events, 12_000);
    assert_eq!(back.top_k(5).unwrap(), expected_topk);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A chunk with trailing garbage is rejected *before* anything reaches the
/// engine: the request fails with a protocol error, no event or counter
/// moves, and a retry with the clean chunk lands exactly once — the
/// half-ingested-then-rejected state would make every client retry a
/// double ingest.
#[test]
fn trailing_garbage_chunk_is_rejected_before_ingest() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let events = workload(3, 1_000);

    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .open_session("trailing", SessionConfig::default_multi_hash())
        .unwrap();

    let mut dirty = mhp_pipeline::encode_chunk(&events);
    dirty.extend_from_slice(b"trailing garbage");
    match client.ingest_chunk(dirty.clone()) {
        Err(ServerError::Remote { code, .. }) => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected a protocol rejection, got {other:?}"),
    }

    // Nothing was applied and nothing was counted: the engine and the
    // ingest counters agree the rejected chunk never happened.
    let stats = client.stats().unwrap();
    assert_eq!(stat_value(&stats, "events_ingested"), Some(0));
    assert_eq!(stat_value(&stats, "chunks_ingested"), Some(0));

    // The retry (the clean prefix of the same bytes) lands exactly once.
    let clean = mhp_pipeline::encode_chunk(&events);
    let (total, _intervals) = client.ingest_chunk(clean).unwrap();
    assert_eq!(total, 1_000, "retry after rejection must not double-ingest");

    // The sequenced path pre-checks identically.
    let (total, _intervals) = match client.ingest_seq(1, dirty) {
        Err(ServerError::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::BadRequest);
            client
                .ingest_seq(1, mhp_pipeline::encode_chunk(&events))
                .unwrap()
        }
        other => panic!("expected a protocol rejection, got {other:?}"),
    };
    assert_eq!(total, 2_000);

    client.close_session().unwrap();
    client.shutdown_server().unwrap();
    server.join();
}

/// Request tracing end to end on the threaded front end: the `traces`
/// query returns a summary for every stage of the taxonomy, the sampled
/// trace records carry every stage field, the stage histograms reach the
/// Prometheus exposition, and loadgen surfaces the per-stage breakdown.
#[test]
fn traces_expose_stage_quantiles_and_sampled_records() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let config = LoadgenConfig {
        clients: 4,
        events_per_client: 20_000,
        chunk_events: 2_048,
        session: SessionConfig::default_multi_hash(),
        session_prefix: "tr".to_string(),
    };
    let report = loadgen(server.local_addr(), &config).unwrap();
    assert_eq!(report.errors, 0);
    let stages = report.stages.as_ref().expect("server advertises tracing");
    assert!(
        stages.iter().any(|s| s.stage == "ingest" && s.count > 0),
        "loadgen picked up a populated ingest stage: {stages:?}"
    );
    assert!(report.render().contains("stage_ingest"));

    let mut client = Client::connect(server.local_addr()).unwrap();
    let traces = client.traces().unwrap();
    for stage in mhp_server::SERVER_STAGES {
        assert!(
            traces.contains(&format!("\"stage\":\"{stage}\"")),
            "missing stage summary for {stage}"
        );
    }
    assert!(traces.contains("\"stage\":\"total\""));
    let trace_lines: Vec<&str> = traces
        .lines()
        .filter(|l| l.contains("\"type\":\"trace\""))
        .collect();
    assert!(!trace_lines.is_empty(), "sampled traces present");
    for line in &trace_lines {
        for stage in mhp_server::SERVER_STAGES {
            assert!(
                line.contains(&format!("\"{stage}\":")),
                "trace line missing {stage}: {line}"
            );
        }
    }
    let parsed = mhp_server::parse_stage_latencies(&traces);
    assert!(parsed.iter().any(|s| s.stage == "ingest" && s.count > 0));

    let metrics = client.metrics().unwrap();
    for stage in mhp_server::SERVER_STAGES {
        assert!(
            metrics.contains(&format!("# TYPE server_stage_{stage}_us histogram")),
            "missing server_stage_{stage}_us exposition"
        );
    }
    assert!(stat_value(&metrics, "server_traces_total").unwrap() > 0);
    assert!(stat_value(&metrics, "server_trace_spans_recorded").unwrap() > 0);
    client.shutdown_server().unwrap();
    server.join();
}

/// A server that predates the `traces` opcode answers it with a
/// non-retryable bad-request error, and the loadgen stage probe degrades
/// to `stages: None` instead of failing the run.
#[test]
fn traces_query_against_older_server_degrades_gracefully() {
    use mhp_server::protocol::{read_frame, write_frame};
    use std::net::TcpListener;

    // Fake "older server": answers every frame the way the real request
    // decoder answers an unknown opcode — a BadRequest error response.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let old_server = std::thread::spawn(move || {
        // One connection is all the test sends.
        if let Some(stream) = listener.incoming().next() {
            let mut stream = stream.unwrap();
            while let Ok(Some(_body)) = read_frame(&mut stream) {
                let reply = mhp_server::Response::Error {
                    code: ErrorCode::BadRequest,
                    message: "unknown request opcode 0x0e".to_string(),
                }
                .encode();
                if write_frame(&mut stream, &reply).is_err() {
                    break;
                }
            }
        }
    });

    let mut client = Client::connect(addr).unwrap();
    match client.traces() {
        Err(ServerError::Remote { code, .. }) => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected remote BadRequest, got {other:?}"),
    }
    drop(client);
    old_server.join().unwrap();
}
