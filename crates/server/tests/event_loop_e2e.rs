//! Event-loop acceptance tests: the readiness-based front end behind
//! `--event-loop` must be observationally identical to the threaded one —
//! bit-for-bit snapshots, the same typed errors, the same fault-injection
//! recovery story — while multiplexing every connection onto one reactor
//! thread plus a small worker pool.

use std::io::Write;
use std::time::Duration;

use mhp_core::Tuple;
use mhp_faults::{FaultKind, FaultPlan};
use mhp_pipeline::{EngineConfig, ShardedEngine};
use mhp_server::{
    mux_loadgen, Client, ErrorCode, EventLoopConfig, MuxConfig, ProfileData, ProfilerKind,
    ReconnectingClient, RetryPolicy, Server, ServerConfig, SessionConfig,
};
use mhp_trace::{Benchmark, StreamKind, StreamSpec};

fn workload(seed: u64, n: usize) -> Vec<Tuple> {
    StreamSpec::new(Benchmark::Gcc, StreamKind::Value, seed)
        .events()
        .take(n)
        .collect()
}

fn offline_profiles(config: &SessionConfig, events: &[Tuple]) -> Vec<ProfileData> {
    let interval = mhp_core::IntervalConfig::new(config.interval_len, config.threshold).unwrap();
    let engine = ShardedEngine::new(
        EngineConfig::new(config.shards as usize),
        interval,
        config.kind.spec(),
        config.seed,
    );
    let report = engine.run(events.iter().copied()).unwrap();
    report
        .profiles
        .iter()
        .map(ProfileData::from_profile)
        .collect()
}

fn event_loop_config() -> ServerConfig {
    ServerConfig {
        event_loop: Some(EventLoopConfig::default()),
        ..ServerConfig::default()
    }
}

/// Value of an unlabelled metric in the Prometheus text exposition.
fn metric_value(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .find_map(|line| line.strip_prefix(name)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from exposition"))
}

/// The tentpole equivalence criterion, now against the reactor: a workload
/// streamed over the event-loop server yields snapshots bit-identical to
/// an offline single-process run.
#[test]
fn event_loop_snapshots_match_offline_runs_exactly() {
    let server = Server::bind("127.0.0.1:0", event_loop_config()).unwrap();
    let events = workload(42, 25_000);

    let configs = [
        SessionConfig {
            kind: ProfilerKind::MultiHash,
            shards: 1,
            interval_len: 5_000,
            threshold: 0.01,
            seed: 7,
        },
        SessionConfig {
            kind: ProfilerKind::Perfect,
            shards: 4,
            interval_len: 5_000,
            threshold: 0.01,
            seed: 7,
        },
    ];
    for (idx, config) in configs.iter().enumerate() {
        let expected = offline_profiles(config, &events);
        assert_eq!(expected.len(), 5);

        let mut client = Client::connect(server.local_addr()).unwrap();
        client
            .open_session(&format!("equiv-{idx}"), config.clone())
            .unwrap();
        let mut totals = (0, 0);
        for chunk in events.chunks(1_024) {
            totals = client.ingest(chunk).unwrap();
        }
        assert_eq!(totals, (25_000, 5), "{}", config.kind.name());

        for (interval, reference) in expected.iter().enumerate() {
            let got = client.snapshot(interval as u64).unwrap().unwrap();
            assert_eq!(
                got,
                *reference,
                "{} interval {interval}",
                config.kind.name()
            );
        }
        client.close_session().unwrap();
    }

    let mut probe = Client::connect(server.local_addr()).unwrap();
    probe.shutdown_server().unwrap();
    server.join();
}

/// A request dripped one byte at a time must decode exactly as a request
/// delivered whole: the connection state machine parks mid-frame between
/// readiness events and resumes without losing bytes. The reactor's
/// partial-frame-resume counter proves the slow path actually ran.
#[test]
fn dripped_requests_resume_mid_frame() {
    let server = Server::bind("127.0.0.1:0", event_loop_config()).unwrap();

    // Hand-roll the drip on a raw socket so nothing buffers for us.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    raw.set_nodelay(true).unwrap();
    let body = mhp_server::Request::Stats.encode();
    let mut wire = (body.len() as u32).to_le_bytes().to_vec();
    wire.extend_from_slice(&body);
    for byte in &wire {
        raw.write_all(std::slice::from_ref(byte)).unwrap();
        raw.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let response = mhp_server::protocol::read_frame(&mut raw)
        .unwrap()
        .expect("server closed instead of answering the dripped request");
    match mhp_server::Response::decode(&response).unwrap() {
        mhp_server::Response::Stats(text) => assert!(text.contains("requests_total")),
        other => panic!("expected stats, got {other:?}"),
    }
    drop(raw);

    let mut probe = Client::connect(server.local_addr()).unwrap();
    let exposition = probe.metrics().unwrap();
    assert!(
        metric_value(&exposition, "server_net_partial_frame_resumes_total") > 0,
        "dripped request never exercised the mid-frame resume path"
    );
    probe.shutdown_server().unwrap();
    server.join();
}

/// Connection-level fault injection behaves identically under the event
/// loop: dropped connections and truncated response frames are survived by
/// a reconnecting client, and results stay bit-identical to an
/// uninterrupted run.
#[test]
fn conn_faults_recover_bit_identically_under_event_loop() {
    let events = workload(11, 25_000);
    let config = SessionConfig {
        kind: ProfilerKind::MultiHash,
        shards: 1,
        interval_len: 5_000,
        threshold: 0.01,
        seed: 7,
    };
    let expected = offline_profiles(&config, &events);

    for kind in [FaultKind::DropConnection, FaultKind::TruncateFrame] {
        let hook = FaultPlan::new(0xC0FFEE).with_fault(kind, 4).arm();
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                fault_hook: Some(hook.clone()),
                ..event_loop_config()
            },
        )
        .unwrap();

        let mut client = ReconnectingClient::open(
            server.local_addr(),
            &format!("chaos-{}", kind.name()),
            config.clone(),
            RetryPolicy::default(),
        )
        .unwrap();
        for chunk in events.chunks(1_000) {
            client.ingest(chunk).unwrap();
        }
        for (interval, reference) in expected.iter().enumerate() {
            let got = client.snapshot(interval as u64).unwrap().unwrap();
            assert_eq!(got, *reference, "{} interval {interval}", kind.name());
        }
        client.close_session().unwrap();
        assert_eq!(hook.injected(kind), 1, "{}: fault never fired", kind.name());
        assert!(client.connects() >= 2, "{}: never reconnected", kind.name());

        let mut probe = Client::connect(server.local_addr()).unwrap();
        probe.shutdown_server().unwrap();
        server.join();
    }
}

/// Beyond `max_connections` the event loop answers with a retryable
/// `overloaded` rejection, exactly like the threaded front end.
#[test]
fn event_loop_rejects_over_capacity_with_overloaded() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 1,
            ..event_loop_config()
        },
    )
    .unwrap();
    let mut first = Client::connect(server.local_addr()).unwrap();
    first
        .open_session("holder", SessionConfig::default_multi_hash())
        .unwrap();

    let mut second = Client::connect(server.local_addr()).unwrap();
    match second.call(&mhp_server::Request::Stats) {
        Ok(mhp_server::Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected overloaded rejection, got {other:?}"),
    }
    drop(second);

    first.close_session().unwrap();
    first.shutdown_server().unwrap();
    server.join();
}

/// An open burst is paced through admission instead of shed: with a
/// worker queue of depth 1, eight clients that connect and then fire a
/// request simultaneously must all be answered without a single queue
/// shed — the reactor parks the accepts and admits each connection only
/// as the queue drains, instead of dispatching the whole burst into a
/// shower of `Overloaded` retries.
#[test]
fn open_burst_is_admitted_without_queue_sheds() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            event_loop: Some(EventLoopConfig {
                workers: 1,
                worker_queue_depth: 1,
                ..EventLoopConfig::default()
            }),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Connect everyone first, then fire every request at once — the worst
    // case for an accept path that admits faster than the queue drains.
    let mut socks: Vec<std::net::TcpStream> = (0..8)
        .map(|_| {
            let sock = std::net::TcpStream::connect(server.local_addr()).unwrap();
            sock.set_nodelay(true).unwrap();
            sock
        })
        .collect();
    let body = mhp_server::Request::Stats.encode();
    let mut wire = (body.len() as u32).to_le_bytes().to_vec();
    wire.extend_from_slice(&body);
    for sock in &mut socks {
        sock.write_all(&wire).unwrap();
        sock.flush().unwrap();
    }
    for sock in &mut socks {
        let frame = mhp_server::protocol::read_frame(sock)
            .unwrap()
            .expect("server closed instead of answering a burst request");
        match mhp_server::Response::decode(&frame).unwrap() {
            mhp_server::Response::Stats(_) => {}
            other => panic!("expected stats, got {other:?}"),
        }
    }
    drop(socks);

    let mut probe = Client::connect(server.local_addr()).unwrap();
    let exposition = probe.metrics().unwrap();
    assert_eq!(
        metric_value(&exposition, "server_net_queue_sheds_total"),
        0,
        "the burst was shed instead of paced"
    );
    let deferrals = metric_value(&exposition, "server_net_admission_deferrals_total");
    assert!(deferrals > 0, "the burst never exercised admission pacing");
    assert!(
        deferrals <= 8,
        "deferrals must count connections, not pacing passes; got {deferrals}"
    );
    assert_eq!(
        metric_value(&exposition, "server_net_pending_admissions"),
        0,
        "admission backlog gauge did not drain back to zero"
    );
    assert_eq!(
        metric_value(&exposition, "server_net_admission_reservations"),
        0,
        "reservation gauge did not drain back to zero"
    );
    probe.shutdown_server().unwrap();
    server.join();
}

/// An admitted connection that never sends its first request must not hold
/// its worker-queue reservation forever: with a queue of depth 1, one
/// client that connects and goes silent would otherwise keep
/// `reservations + depth >= cap` true on every admission pass and park all
/// later connections indefinitely — a total denial of service. The
/// admission grace releases the idle reservation, the second client is
/// admitted and served, and the idler itself stays admitted (a late first
/// request still gets an answer).
#[test]
fn idle_connection_cannot_starve_admissions() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            // Admission grace = RESERVATION_BUDGET (20) × 10ms = 200ms.
            read_timeout: Duration::from_millis(10),
            event_loop: Some(EventLoopConfig {
                workers: 1,
                worker_queue_depth: 1,
                ..EventLoopConfig::default()
            }),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Connects, gets admitted, takes the only reservation — then nothing.
    let mut idle = std::net::TcpStream::connect(server.local_addr()).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Let the loop admit the idler before the real client arrives, so the
    // reservation is genuinely held when the contender shows up.
    std::thread::sleep(Duration::from_millis(120));

    let mut sock = std::net::TcpStream::connect(server.local_addr()).unwrap();
    sock.set_nodelay(true).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = mhp_server::Request::Stats.encode();
    let mut wire = (body.len() as u32).to_le_bytes().to_vec();
    wire.extend_from_slice(&body);
    sock.write_all(&wire).unwrap();
    sock.flush().unwrap();
    let frame = mhp_server::protocol::read_frame(&mut sock)
        .unwrap()
        .expect("server closed instead of answering past the idle holder");
    match mhp_server::Response::decode(&frame).unwrap() {
        mhp_server::Response::Stats(_) => {}
        other => panic!("expected stats, got {other:?}"),
    }
    drop(sock);

    // The idler stayed admitted: its (late) first request is still served.
    idle.write_all(&wire).unwrap();
    idle.flush().unwrap();
    let frame = mhp_server::protocol::read_frame(&mut idle)
        .unwrap()
        .expect("idle connection was cut instead of kept admitted");
    match mhp_server::Response::decode(&frame).unwrap() {
        mhp_server::Response::Stats(_) => {}
        other => panic!("expected stats, got {other:?}"),
    }
    drop(idle);

    let mut probe = Client::connect(server.local_addr()).unwrap();
    let exposition = probe.metrics().unwrap();
    assert!(
        metric_value(&exposition, "server_net_admission_deferrals_total") > 0,
        "the second connection was never actually deferred behind the idler"
    );
    assert_eq!(
        metric_value(&exposition, "server_net_admission_reservations"),
        0,
        "reservation gauge did not drain after the grace released the idler"
    );
    probe.shutdown_server().unwrap();
    server.join();
}

/// The multiplexed load generator holds hundreds of concurrent sessions
/// open against the reactor from a single thread; every session opens, the
/// active subset streams to completion, and the server's gauges agree.
#[test]
fn mux_loadgen_holds_hundreds_of_concurrent_sessions() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 4_096,
            ..event_loop_config()
        },
    )
    .unwrap();

    let report = mux_loadgen(
        server.local_addr(),
        &MuxConfig {
            sessions: 256,
            active: 16,
            events_per_session: 8_192,
            chunk_events: 4_096,
            session_prefix: "mux-e2e".to_string(),
            deadline: Duration::from_secs(120),
            ..MuxConfig::default()
        },
    )
    .unwrap();

    assert_eq!(report.opened, 256, "every session must open");
    assert_eq!(report.requests, 16 * 2, "2 chunks per active session");
    assert_eq!(report.events, 16 * 8_192);

    // The server really did see them all: every one of the 256 sessions
    // opened (mux holds every connection until the run completes, so the
    // peak concurrency equals the session count).
    let mut probe = Client::connect(server.local_addr()).unwrap();
    let exposition = probe.metrics().unwrap();
    assert_eq!(
        metric_value(&exposition, "server_sessions_opened_total"),
        256
    );
    assert!(metric_value(&exposition, "server_net_wakeups_total") > 0);
    probe.shutdown_server().unwrap();
    server.join();
}

/// Request tracing under the reactor: every stage of the taxonomy —
/// including `queue_wait`, which only the event loop's worker handoff
/// populates — shows up in the `traces` stream and the Prometheus
/// exposition after real multiplexed traffic.
#[test]
fn event_loop_traces_attribute_every_stage() {
    let server = Server::bind("127.0.0.1:0", event_loop_config()).unwrap();
    let report = mux_loadgen(
        server.local_addr(),
        &MuxConfig {
            sessions: 16,
            active: 4,
            events_per_session: 8_192,
            chunk_events: 2_048,
            session_prefix: "el-tr".to_string(),
            ..MuxConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.opened, 16);

    let mut client = Client::connect(server.local_addr()).unwrap();
    let traces = client.traces().unwrap();
    for stage in mhp_server::SERVER_STAGES {
        assert!(
            traces.contains(&format!("\"stage\":\"{stage}\"")),
            "missing stage summary for {stage}"
        );
    }
    let summaries = mhp_server::parse_stage_latencies(&traces);
    let queue_wait = summaries
        .iter()
        .find(|s| s.stage == "queue_wait")
        .expect("queue_wait summary");
    assert!(
        queue_wait.count > 0,
        "worker handoff populated queue_wait: {summaries:?}"
    );
    assert!(
        traces.lines().any(|l| l.contains("\"type\":\"trace\"")),
        "sampled traces present"
    );

    let exposition = client.metrics().unwrap();
    assert!(exposition.contains("# TYPE server_stage_queue_wait_us histogram"));
    assert!(metric_value(&exposition, "server_traces_total") > 0);
    client.shutdown_server().unwrap();
    server.join();
}
