//! Chaos and durability acceptance tests: checkpoint/restore across a
//! server restart, sequenced-ingest resume semantics, deterministic fault
//! injection for every [`FaultKind`], admission control, and corrupt
//! checkpoint handling. The bar everywhere is the tentpole criterion:
//! every fault either recovers to *bit-identical* results or fails with a
//! typed error — no panic escapes, and the server keeps serving.

use std::time::Duration;

use mhp_core::Tuple;
use mhp_faults::{FaultKind, FaultPlan, ALL_FAULT_KINDS};
use mhp_pipeline::{encode_chunk, EngineConfig, ShardedEngine};
use mhp_server::{
    Client, ErrorCode, ProfileData, ProfilerKind, ReconnectingClient, RetryPolicy, Server,
    ServerConfig, ServerError, SessionConfig,
};
use mhp_trace::{Benchmark, StreamKind, StreamSpec};

fn workload(seed: u64, n: usize) -> Vec<Tuple> {
    StreamSpec::new(Benchmark::Gcc, StreamKind::Value, seed)
        .events()
        .take(n)
        .collect()
}

/// The two shapes whose streamed results are exactly reproducible offline
/// (see `e2e.rs`): multi-hash on one shard, perfect across shards.
fn exact_configs() -> [SessionConfig; 2] {
    [
        SessionConfig {
            kind: ProfilerKind::MultiHash,
            shards: 1,
            interval_len: 5_000,
            threshold: 0.01,
            seed: 7,
        },
        SessionConfig {
            kind: ProfilerKind::Perfect,
            shards: 4,
            interval_len: 5_000,
            threshold: 0.01,
            seed: 7,
        },
    ]
}

/// Completed-interval profiles and live top-k of an uninterrupted
/// single-process run — the reference every recovery is compared against.
fn offline_reference(
    config: &SessionConfig,
    events: &[Tuple],
) -> (Vec<ProfileData>, Vec<mhp_core::Candidate>) {
    let interval = mhp_core::IntervalConfig::new(config.interval_len, config.threshold).unwrap();
    let engine = ShardedEngine::new(
        EngineConfig::new(config.shards as usize),
        interval,
        config.kind.spec(),
        config.seed,
    );
    let mut session = engine.start().unwrap();
    session.push_all(events.iter().copied()).unwrap();
    let topk = session.top_k(10).unwrap();
    let profiles = session
        .profiles()
        .unwrap()
        .iter()
        .map(ProfileData::from_profile)
        .collect();
    (profiles, topk)
}

/// Value of an unlabelled counter in the Prometheus text exposition.
fn metric_value(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .find_map(|line| line.strip_prefix(name)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from exposition"))
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mhp-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The kill-and-restore acceptance test: stream half a workload, shut the
/// server down (its drain takes the durable checkpoint), restart from the
/// same state directory, resume the stream, and demand results
/// bit-identical to a run that was never interrupted.
#[test]
fn restart_from_checkpoints_is_bit_identical() {
    let dir = scratch_dir("restart");
    let events = workload(42, 25_000);
    let chunks: Vec<Vec<u8>> = events.chunks(1_000).map(encode_chunk).collect();
    let split = 13; // "crash" after 13 of 25 chunks

    let config_a = ServerConfig {
        state_dir: Some(dir.clone()),
        // Rely on the drain-time checkpoint alone; the periodic loop is
        // exercised separately.
        checkpoint_interval: Duration::from_secs(3_600),
        ..ServerConfig::default()
    };
    let server_a = Server::bind("127.0.0.1:0", config_a).unwrap();
    for (idx, config) in exact_configs().iter().enumerate() {
        let mut client = Client::connect(server_a.local_addr()).unwrap();
        client
            .open_session(&format!("restore-{idx}"), config.clone())
            .unwrap();
        for (i, chunk) in chunks.iter().take(split).enumerate() {
            client.ingest_seq((i + 1) as u64, chunk.clone()).unwrap();
        }
    }
    let mut admin = Client::connect(server_a.local_addr()).unwrap();
    admin.shutdown_server().unwrap();
    server_a.join();

    let config_b = ServerConfig {
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let server_b = Server::bind("127.0.0.1:0", config_b).unwrap();
    assert_eq!(server_b.restored_sessions(), 2);

    for (idx, config) in exact_configs().iter().enumerate() {
        let (expected_profiles, expected_topk) = offline_reference(config, &events);
        let mut client = Client::connect(server_b.local_addr()).unwrap();
        let info = client.attach(&format!("restore-{idx}")).unwrap();
        assert_eq!(
            info.events,
            (split * 1_000) as u64,
            "{}",
            config.kind.name()
        );
        assert_eq!(client.resume().unwrap(), split as u64);

        // Replay from the last acked chunk — the overlap must dedup, not
        // double-count — then stream the remainder.
        for (i, chunk) in chunks.iter().enumerate().skip(split - 1) {
            client.ingest_seq((i + 1) as u64, chunk.clone()).unwrap();
        }
        for (interval, reference) in expected_profiles.iter().enumerate() {
            let got = client.snapshot(interval as u64).unwrap().unwrap();
            assert_eq!(
                got,
                *reference,
                "{} interval {interval}",
                config.kind.name()
            );
        }
        assert!(client
            .snapshot(expected_profiles.len() as u64)
            .unwrap()
            .is_none());
        assert_eq!(
            client.top_k(10).unwrap(),
            expected_topk,
            "{}",
            config.kind.name()
        );
        client.close_session().unwrap();
    }
    // CloseSession removed both checkpoint files.
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);

    let mut admin = Client::connect(server_b.local_addr()).unwrap();
    let metrics = admin.metrics().unwrap();
    assert_eq!(metric_value(&metrics, "server_restore_total"), 2);
    assert_eq!(metric_value(&metrics, "server_restore_errors_total"), 0);
    admin.shutdown_server().unwrap();
    server_b.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sequenced_ingest_dedups_replays_and_rejects_gaps() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let events = workload(7, 3_000);
    let chunks: Vec<Vec<u8>> = events.chunks(1_000).map(encode_chunk).collect();

    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .open_session("seq", exact_configs()[0].clone())
        .unwrap();
    let first = client.ingest_seq(1, chunks[0].clone()).unwrap();
    assert_eq!(first.0, 1_000);

    // A replay is acknowledged with the *current* totals, not re-applied.
    let replay = client.ingest_seq(1, chunks[0].clone()).unwrap();
    assert_eq!(replay, first);

    let gap = client.ingest_seq(3, chunks[2].clone()).unwrap_err();
    assert!(
        matches!(
            gap,
            ServerError::Remote {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "gap: {gap}"
    );
    let zero = client.ingest_seq(0, chunks[1].clone()).unwrap_err();
    assert!(
        matches!(
            zero,
            ServerError::Remote {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "zero: {zero}"
    );

    assert_eq!(client.resume().unwrap(), 1);
    let second = client.ingest_seq(2, chunks[1].clone()).unwrap();
    assert_eq!(second.0, 2_000);

    let metrics = client.metrics().unwrap();
    assert_eq!(metric_value(&metrics, "server_dedup_chunks_total"), 1);
    client.shutdown_server().unwrap();
    server.join();
}

/// One pass per fault kind. Retryable faults must end in results
/// bit-identical to the uninterrupted offline run; the one fault that
/// kills the engine (a worker panic) must surface as a typed remote error
/// after retries are exhausted. In every case the server itself survives
/// and keeps serving fresh sessions.
#[test]
fn every_fault_kind_recovers_bit_identically_or_fails_typed() {
    let events = workload(11, 25_000);
    let config = exact_configs()[0].clone();
    let (expected_profiles, expected_topk) = offline_reference(&config, &events);

    for kind in ALL_FAULT_KINDS {
        // Each hook counts in its own units: worker faults in events,
        // connection faults in requests, chunk faults in ingest chunks.
        // All land mid-stream of the 25-chunk workload.
        let at = match kind {
            FaultKind::WorkerPanic | FaultKind::WorkerStall => 8_000,
            FaultKind::DropConnection | FaultKind::TruncateFrame => 4,
            FaultKind::CorruptChunk | FaultKind::SlowConsumer => 3,
            // Pull-plane faults fire only in an aggregator's pull hooks
            // (see crates/agg tests); a leaf server never consults them.
            FaultKind::UpstreamStall | FaultKind::SlowRead => continue,
        };
        let hook = FaultPlan::new(0xC0FFEE).with_fault(kind, at).arm();
        let server_config = ServerConfig {
            fault_hook: Some(hook.clone()),
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", server_config).unwrap();

        let mut client = ReconnectingClient::open(
            server.local_addr(),
            &format!("chaos-{}", kind.name()),
            config.clone(),
            RetryPolicy::default(),
        )
        .unwrap();
        // Worker faults fire asynchronously on the shard thread, so a
        // failure may surface during the stream *or* at the first query
        // that forces a worker round-trip. Either way the whole pass is
        // one fallible outcome.
        let outcome = (|| -> Result<(Vec<ProfileData>, Vec<mhp_core::Candidate>), ServerError> {
            for chunk in events.chunks(1_000) {
                client.ingest(chunk)?;
            }
            let mut profiles = Vec::new();
            for interval in 0..expected_profiles.len() {
                match client.snapshot(interval as u64)? {
                    Some(profile) => profiles.push(profile),
                    None => panic!("{}: interval {interval} missing", kind.name()),
                }
            }
            let topk = client.top_k(10)?;
            client.close_session()?;
            Ok((profiles, topk))
        })();

        assert_eq!(hook.injected(kind), 1, "{}: fault never fired", kind.name());
        match outcome {
            Ok((profiles, topk)) => {
                assert_ne!(
                    kind,
                    FaultKind::WorkerPanic,
                    "a panicked worker cannot answer queries"
                );
                for (interval, (got, reference)) in
                    profiles.iter().zip(&expected_profiles).enumerate()
                {
                    assert_eq!(got, reference, "{} interval {interval}", kind.name());
                }
                assert_eq!(topk, expected_topk, "{}", kind.name());
            }
            Err(err) => {
                // Containment, not recovery: only the engine-killing fault
                // may fail, and only with a typed remote error.
                assert_eq!(
                    kind,
                    FaultKind::WorkerPanic,
                    "{}: unexpected failure {err}",
                    kind.name()
                );
                assert!(
                    matches!(err, ServerError::Remote { .. }),
                    "worker panic leaked an untyped error: {err}"
                );
            }
        }

        // The server survives the fault: a fresh session still works.
        let mut probe = Client::connect(server.local_addr()).unwrap();
        probe.open_session("probe", config.clone()).unwrap();
        probe.ingest(&events[..1_000]).unwrap();
        probe.close_session().unwrap();
        probe.shutdown_server().unwrap();
        server.join();
    }
}

#[test]
fn overload_watermark_sheds_ingest_with_typed_error() {
    let server_config = ServerConfig {
        overload_connection_watermark: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", server_config).unwrap();
    let events = workload(3, 2_000);

    let mut holder = Client::connect(server.local_addr()).unwrap();
    holder
        .open_session("shed", exact_configs()[0].clone())
        .unwrap();
    // A single connection sits at the watermark, not over it.
    holder.ingest(&events[..1_000]).unwrap();

    let mut second = Client::connect(server.local_addr()).unwrap();
    second.attach("shed").unwrap();
    let err = second.ingest(&events[1_000..]).unwrap_err();
    assert!(
        matches!(
            err,
            ServerError::Remote {
                code: ErrorCode::Overloaded,
                ..
            }
        ),
        "shed: {err}"
    );
    // Only ingest is shed; queries still answer under pressure.
    let metrics = second.metrics().unwrap();
    assert!(metric_value(&metrics, "server_shed_total") >= 1);

    // Once the held connection goes away the retry goes through — the
    // back-off-and-retry contract the Overloaded code promises.
    drop(holder);
    let mut recovered = false;
    for _ in 0..100 {
        match second.ingest(&events[1_000..]) {
            Ok(_) => {
                recovered = true;
                break;
            }
            Err(ServerError::Remote {
                code: ErrorCode::Overloaded,
                ..
            }) => std::thread::sleep(Duration::from_millis(20)),
            Err(other) => panic!("unexpected error while shedding: {other}"),
        }
    }
    assert!(recovered, "ingest kept shedding after the load dropped");
    second.shutdown_server().unwrap();
    server.join();
}

#[test]
fn periodic_checkpoints_are_written_and_removed_on_close() {
    let dir = scratch_dir("periodic");
    let server_config = ServerConfig {
        state_dir: Some(dir.clone()),
        checkpoint_interval: Duration::from_millis(50),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", server_config).unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .open_session("periodic", exact_configs()[0].clone())
        .unwrap();
    client.ingest(&workload(1, 1_000)).unwrap();

    let snap_count = |dir: &std::path::Path| {
        std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "snap"))
                    .count()
            })
            .unwrap_or(0)
    };
    let mut checkpointed = false;
    for _ in 0..100 {
        if snap_count(&dir) == 1 {
            checkpointed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(checkpointed, "no checkpoint appeared within 2s");
    let metrics = client.metrics().unwrap();
    assert!(metric_value(&metrics, "server_checkpoints_total") >= 1);

    client.close_session().unwrap();
    assert_eq!(snap_count(&dir), 0, "close left the checkpoint behind");
    client.shutdown_server().unwrap();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoints_are_skipped_and_counted() {
    let dir = scratch_dir("badsnap");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("deadbeef.snap"), b"this is not a snapshot").unwrap();

    let server_config = ServerConfig {
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", server_config).unwrap();
    assert_eq!(server.restored_sessions(), 0);

    let mut client = Client::connect(server.local_addr()).unwrap();
    let metrics = client.metrics().unwrap();
    assert_eq!(metric_value(&metrics, "server_restore_errors_total"), 1);

    // A poisoned state directory does not stop fresh sessions.
    client
        .open_session("fresh", exact_configs()[0].clone())
        .unwrap();
    client.ingest(&workload(1, 1_000)).unwrap();
    client.close_session().unwrap();
    client.shutdown_server().unwrap();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
