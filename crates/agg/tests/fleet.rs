//! Fleet-level acceptance tests: real servers, real aggregators, real
//! TCP in between, and equivalence against offline merges.

use std::time::{Duration, Instant};

use mhp_agg::{AggConfig, AggState, Aggregator, CUMULATIVE_SUFFIX};
use mhp_core::{Candidate, Tuple};
use mhp_pipeline::{EngineConfig, ShardedEngine};
use mhp_server::{Client, ErrorCode, Server, ServerConfig, ServerError, SessionConfig};
use mhp_trace::{Benchmark, StreamKind, StreamSpec};

const INTERVAL_LEN: u64 = 5_000;
const EVENTS: usize = 20_000; // 4 completed intervals per session

fn session_config(seed: u64) -> SessionConfig {
    SessionConfig {
        interval_len: INTERVAL_LEN,
        seed,
        ..SessionConfig::default_multi_hash()
    }
}

fn stream(seed: u64) -> Vec<Tuple> {
    StreamSpec::new(Benchmark::Gcc, StreamKind::Value, seed)
        .events()
        .take(EVENTS)
        .collect()
}

/// Feeds `events` into a fresh session on `addr` and leaves it resident.
fn feed(addr: std::net::SocketAddr, name: &str, seed: u64, events: &[Tuple]) {
    let mut client = Client::connect(addr).unwrap();
    client.open_session(name, session_config(seed)).unwrap();
    for chunk in events.chunks(2_048) {
        client.ingest(chunk).unwrap();
    }
}

/// The offline reference for one member: completed-interval profiles from
/// an identically configured engine fed the same events directly.
fn offline_fold(state: &mut AggState, tenant: &str, seed: u64, events: &[Tuple]) {
    let interval = mhp_core::IntervalConfig::new(INTERVAL_LEN, 0.01).unwrap();
    let engine = ShardedEngine::new(
        EngineConfig::new(1),
        interval,
        mhp_server::ProfilerKind::MultiHash.spec(),
        seed,
    );
    let report = engine.run(events.iter().copied()).unwrap();
    for profile in &report.profiles {
        state.add_leaf_profile(tenant, profile.candidates());
    }
}

/// Polls `f` until it returns true or the deadline passes.
fn eventually(deadline: Duration, mut f: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

/// The tentpole acceptance test: two servers with multi-tenant sessions,
/// a child aggregator over both, and a parent aggregator over the child —
/// the parent's per-tenant global top-k must converge on exactly the
/// offline merge of the same streams, through two protocol hops.
#[test]
fn two_level_fleet_matches_offline_merge_exactly() {
    let server_a = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let server_b = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();

    // Two tenants spread across both servers.
    let members: [(&str, u64); 4] = [
        ("acme/web", 11),
        ("acme/api", 22),
        ("beta/db", 33),
        ("beta/cache", 44),
    ];
    let mut expected = AggState::new();
    for (name, seed) in members {
        let events = stream(seed);
        let addr = if seed % 2 == 1 {
            server_a.local_addr()
        } else {
            server_b.local_addr()
        };
        feed(addr, name, seed, &events);
        offline_fold(&mut expected, mhp_server::tenant_of(name), seed, &events);
    }

    let child = Aggregator::bind(
        "127.0.0.1:0",
        AggConfig {
            upstreams: vec![
                server_a.local_addr().to_string(),
                server_b.local_addr().to_string(),
            ],
            pull_interval: Duration::from_millis(25),
            ..AggConfig::default()
        },
    )
    .unwrap();
    let parent = Aggregator::bind(
        "127.0.0.1:0",
        AggConfig {
            upstreams: vec![child.local_addr().to_string()],
            pull_interval: Duration::from_millis(25),
            ..AggConfig::default()
        },
    )
    .unwrap();

    for tenant in ["acme", "beta"] {
        let want = expected.top_k(tenant, 50);
        assert!(!want.is_empty());
        assert!(
            eventually(Duration::from_secs(10), || parent.top_k(tenant, 50) == want),
            "parent never converged for {tenant}: got {:?}, want {want:?}",
            parent.top_k(tenant, 50)
        );
    }

    // The wire path answers identically to the in-process handle, and the
    // cumulative listing carries the tenants.
    let mut query = Client::connect(parent.local_addr()).unwrap();
    let listed = query.list_sessions().unwrap();
    let names: Vec<&str> = listed.iter().map(|i| i.name.as_str()).collect();
    assert_eq!(
        names,
        [
            format!("acme{CUMULATIVE_SUFFIX}"),
            format!("beta{CUMULATIVE_SUFFIX}")
        ]
    );
    query.attach("acme").unwrap();
    let wire: Vec<Candidate> = query.top_k(50).unwrap();
    assert_eq!(wire, expected.top_k("acme", 50));

    // Aggregators are read-only on the wire.
    match query.open_session("x/y", SessionConfig::default_multi_hash()) {
        Err(ServerError::Remote { code, .. }) => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected read-only rejection, got {other:?}"),
    }

    parent.join();
    child.join();
    server_a.join();
    server_b.join();
}

/// Crash recovery: an aggregator is torn down mid-flight (its state file
/// survives), a replacement restores from the checkpoint, and converges
/// on the same global answer without double-counting any interval.
#[test]
fn aggregator_restores_from_checkpoint_without_double_counting() {
    let dir = std::env::temp_dir().join(format!("mhp-agg-restore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let state_path = dir.join("agg.snap");

    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let first_half = stream(7);
    feed(server.local_addr(), "acme/web", 7, &first_half[..10_000]);

    let config = AggConfig {
        upstreams: vec![server.local_addr().to_string()],
        pull_interval: Duration::from_millis(25),
        state_path: Some(state_path.clone()),
        ..AggConfig::default()
    };
    let agg = Aggregator::bind("127.0.0.1:0", config.clone()).unwrap();
    assert!(
        eventually(Duration::from_secs(10), || agg.epoch() > 2
            && !agg.top_k("acme", 5).is_empty()),
        "first aggregator never pulled"
    );
    // Simulate the crash: drop the aggregator without any graceful
    // handoff. The checkpoint on disk is whatever the last cycle wrote.
    let epoch_before = agg.epoch();
    drop(agg);

    // More data lands while the aggregator is down.
    {
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.attach("acme/web").unwrap();
        for chunk in first_half[10_000..].chunks(2_048) {
            client.ingest(chunk).unwrap();
        }
    }

    let restored = Aggregator::bind("127.0.0.1:0", config).unwrap();
    assert!(restored.epoch() >= epoch_before.saturating_sub(1));

    let mut expected = AggState::new();
    offline_fold(&mut expected, "acme", 7, &first_half);
    let want = expected.top_k("acme", 50);
    assert!(
        eventually(Duration::from_secs(10), || restored.top_k("acme", 50)
            == want),
        "restored aggregator diverged: got {:?}, want {want:?}",
        restored.top_k("acme", 50)
    );

    restored.join();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pull faults (dropped upstream connections) delay convergence but never
/// corrupt it: with a fault plan injecting drops, the aggregator still
/// reaches the exact offline answer.
#[test]
fn pull_faults_delay_but_do_not_corrupt() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let events = stream(99);
    feed(server.local_addr(), "acme/web", 99, &events);

    let plan = mhp_faults::FaultPlan::parse("conn-drop@3", 0xFEED).unwrap();
    let agg = Aggregator::bind(
        "127.0.0.1:0",
        AggConfig {
            upstreams: vec![server.local_addr().to_string()],
            pull_interval: Duration::from_millis(25),
            fault_hook: Some(plan.arm()),
            ..AggConfig::default()
        },
    )
    .unwrap();

    let mut expected = AggState::new();
    offline_fold(&mut expected, "acme", 99, &events);
    let want = expected.top_k("acme", 50);
    assert!(
        eventually(Duration::from_secs(10), || agg.top_k("acme", 50) == want),
        "aggregator never converged under faults"
    );
    let metrics = agg.metrics();
    assert!(
        metrics.contains("agg_pull_errors_total"),
        "missing pull-error counter:\n{metrics}"
    );
    agg.join();
    server.join();
}
