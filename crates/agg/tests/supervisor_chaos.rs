//! Chaos acceptance tests for the fault-isolated pull plane: stalled,
//! flapping, and dead upstreams must cost only their own slot — the
//! healthy rest of the fleet converges on the exact offline answer on
//! its usual schedule, and broken upstreams are quarantined, surfaced in
//! the health block, and recovered via half-open probes.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mhp_agg::{AggConfig, AggState, Aggregator, PullPolicy};
use mhp_core::Tuple;
use mhp_pipeline::{EngineConfig, ShardedEngine};
use mhp_server::{
    BreakerPhase, Client, ErrorCode, Server, ServerConfig, ServerError, SessionConfig,
};
use mhp_trace::{Benchmark, StreamKind, StreamSpec};

const INTERVAL_LEN: u64 = 5_000;
const EVENTS: usize = 20_000;

fn session_config(seed: u64) -> SessionConfig {
    SessionConfig {
        interval_len: INTERVAL_LEN,
        seed,
        ..SessionConfig::default_multi_hash()
    }
}

fn stream(seed: u64) -> Vec<Tuple> {
    StreamSpec::new(Benchmark::Gcc, StreamKind::Value, seed)
        .events()
        .take(EVENTS)
        .collect()
}

fn feed(addr: std::net::SocketAddr, name: &str, seed: u64, events: &[Tuple]) {
    let mut client = Client::connect(addr).unwrap();
    client.open_session(name, session_config(seed)).unwrap();
    for chunk in events.chunks(2_048) {
        client.ingest(chunk).unwrap();
    }
}

fn offline_fold(state: &mut AggState, tenant: &str, seed: u64, events: &[Tuple]) {
    let interval = mhp_core::IntervalConfig::new(INTERVAL_LEN, 0.01).unwrap();
    let engine = ShardedEngine::new(
        EngineConfig::new(1),
        interval,
        mhp_server::ProfilerKind::MultiHash.spec(),
        seed,
    );
    let report = engine.run(events.iter().copied()).unwrap();
    for profile in &report.profiles {
        state.add_leaf_profile(tenant, profile.candidates());
    }
}

fn eventually(deadline: Duration, mut f: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

/// A black hole: accepts TCP connections and never writes a byte —
/// exactly what a wedged server looks like from the pull plane. Holds
/// the accepted sockets open until dropped.
struct StallListener {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl StallListener {
    fn bind() -> StallListener {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut held: Vec<TcpStream> = Vec::new();
            while !thread_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => held.push(stream),
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        });
        StallListener {
            addr,
            stop,
            handle: Some(handle),
        }
    }

    /// Stops accepting and releases the port (held sockets close too).
    fn shut_down(mut self) -> std::net::SocketAddr {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        self.addr
    }
}

impl Drop for StallListener {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Fast supervisor tuning for tests: tight deadlines, quick quarantine.
fn test_policy() -> PullPolicy {
    PullPolicy {
        connect_timeout: Duration::from_millis(200),
        read_timeout: Duration::from_millis(100),
        pull_budget: Duration::from_secs(2),
        breaker_threshold: 3,
        quarantine: Duration::from_millis(300),
        ..PullPolicy::default()
    }
}

/// The isolation guarantee (and the test a serial pull loop fails): an
/// upstream that accepts TCP but never answers `list_sessions` must not
/// delay the healthy upstream's convergence beyond its own deadline
/// budget. With the old serial loop — one unbounded `Client::connect`
/// per upstream per cycle — the stalled socket wedges the whole plane
/// and the healthy tenant never converges.
#[test]
fn stalled_upstream_does_not_delay_healthy_convergence() {
    let healthy = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let stalled = StallListener::bind();

    let events = stream(7);
    feed(healthy.local_addr(), "acme/web", 7, &events);
    let mut expected = AggState::new();
    offline_fold(&mut expected, "acme", 7, &events);
    let want = expected.top_k("acme", 50);
    assert!(!want.is_empty());

    let agg = Aggregator::bind(
        "127.0.0.1:0",
        AggConfig {
            upstreams: vec![healthy.local_addr().to_string(), stalled.addr.to_string()],
            pull_interval: Duration::from_millis(25),
            policy: test_policy(),
            ..AggConfig::default()
        },
    )
    .unwrap();

    // The healthy tenant converges on its usual schedule; the 10s bound
    // is two orders of magnitude above the healthy pull path and far
    // below "waits out the stalled socket".
    assert!(
        eventually(Duration::from_secs(10), || agg.top_k("acme", 50) == want),
        "healthy upstream was delayed by the stalled one"
    );

    // The stalled upstream trips the breaker within the threshold (three
    // deadline-bounded failures) and is flagged unhealthy in the health
    // block, with staleness accruing.
    assert!(
        eventually(Duration::from_secs(10), || {
            let health = agg.upstream_health();
            !health[1].healthy && health[1].phase != BreakerPhase::Closed
        }),
        "stalled upstream was never marked unhealthy: {:?}",
        agg.upstream_health()
    );
    let health = agg.upstream_health();
    assert!(health[0].healthy, "healthy upstream flagged: {health:?}");
    assert!(health[1].consecutive_failures >= 3);
    assert!(
        health[1].staleness_cycles > 0,
        "stalled upstream shows no staleness: {health:?}"
    );

    // The health block also rides the wire in the session listing.
    let mut query = Client::connect(agg.local_addr()).unwrap();
    let (_sessions, upstreams) = query.list_sessions_with_health().unwrap();
    assert_eq!(upstreams.len(), 2);
    assert_eq!(upstreams[1].addr, stalled.addr.to_string());
    assert!(!upstreams[1].healthy);

    agg.join();
    healthy.join();
}

/// The full chaos scenario: one upstream stalls (then dies, then comes
/// back as a real server), another drops half its pull connections. The
/// stalled upstream is quarantined and later recovered via a half-open
/// probe; the flapping one never corrupts the merge; and the final
/// aggregate equals the offline merge of both servers' streams exactly —
/// no double-counting through any of it.
#[test]
fn quarantined_upstream_recovers_and_aggregate_stays_exact() {
    let flaky = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let flaky_events = stream(11);
    feed(flaky.local_addr(), "acme/web", 11, &flaky_events);

    let stalled = StallListener::bind();
    let stalled_addr = stalled.addr;

    // 50% of pull attempts (across both upstreams) drop their connection
    // before touching the network — flapping, deterministic per seed.
    let plan = mhp_faults::FaultPlan::parse("conn-drop%50", 0xC0FFEE).unwrap();
    let agg = Aggregator::bind(
        "127.0.0.1:0",
        AggConfig {
            upstreams: vec![flaky.local_addr().to_string(), stalled_addr.to_string()],
            pull_interval: Duration::from_millis(25),
            policy: test_policy(),
            fault_hook: Some(plan.arm()),
            ..AggConfig::default()
        },
    )
    .unwrap();

    // Phase 1: the stalled upstream is quarantined (breaker leaves
    // Closed) while the flaky one still converges through its drops.
    assert!(
        eventually(Duration::from_secs(10), || {
            !agg.upstream_health()[1].healthy
        }),
        "stalled upstream never quarantined: {:?}",
        agg.upstream_health()
    );
    let mut expected = AggState::new();
    offline_fold(&mut expected, "acme", 11, &flaky_events);
    assert!(
        eventually(Duration::from_secs(10), || {
            agg.top_k("acme", 50) == expected.top_k("acme", 50)
        }),
        "flaky upstream never converged through 50% connection drops"
    );

    // Phase 2: the dead upstream restarts as a real server on the same
    // address, with data of its own. The half-open probe finds it, the
    // breaker closes, and the upstream is healthy again.
    let addr = stalled.shut_down();
    let revived = Server::bind(addr, ServerConfig::default()).unwrap();
    let revived_events = stream(22);
    feed(revived.local_addr(), "beta/db", 22, &revived_events);
    offline_fold(&mut expected, "beta", 22, &revived_events);

    assert!(
        eventually(Duration::from_secs(15), || {
            let health = agg.upstream_health();
            health[1].healthy && health[1].phase == BreakerPhase::Closed
        }),
        "quarantined upstream never recovered: {:?}",
        agg.upstream_health()
    );

    // Phase 3: byte-exact equivalence against the offline merge of both
    // streams, and the supervisor counters tell the story.
    for tenant in ["acme", "beta"] {
        let want = expected.top_k(tenant, 50);
        assert!(
            eventually(Duration::from_secs(10), || agg.top_k(tenant, 50) == want),
            "aggregate diverged for {tenant} after recovery"
        );
    }
    let metrics = agg.metrics();
    for needle in [
        "agg_upstream_quarantines_total",
        "agg_upstream_recoveries_total",
        "agg_pull_errors_total",
        "agg_upstream_healthy",
    ] {
        assert!(metrics.contains(needle), "missing {needle}:\n{metrics}");
    }

    agg.join();
    flaky.join();
    revived.join();
}

/// The query plane's connection cap: arrivals beyond `max_query_conns`
/// get a typed retryable `overloaded` rejection instead of a thread, and
/// capacity frees as soon as a connection closes.
#[test]
fn query_connections_beyond_cap_get_typed_busy_rejection() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    feed(server.local_addr(), "acme/web", 5, &stream(5)[..6_000]);

    let agg = Aggregator::bind(
        "127.0.0.1:0",
        AggConfig {
            upstreams: vec![server.local_addr().to_string()],
            pull_interval: Duration::from_millis(25),
            max_query_conns: 1,
            ..AggConfig::default()
        },
    )
    .unwrap();

    // Occupy the only slot.
    let mut first = Client::connect(agg.local_addr()).unwrap();
    first.list_sessions().unwrap();

    // The next connection is answered with `overloaded` — a typed,
    // retryable error, not a hang or a silent close.
    let rejected = eventually(Duration::from_secs(5), || {
        let mut second = match Client::connect(agg.local_addr()) {
            Ok(client) => client,
            Err(_) => return false,
        };
        matches!(
            second.list_sessions(),
            Err(ServerError::Remote {
                code: ErrorCode::Overloaded,
                ..
            })
        )
    });
    assert!(
        rejected,
        "over-cap connection was not rejected as overloaded"
    );
    assert!(
        agg.metrics().contains("agg_query_busy_rejections_total"),
        "busy rejections not counted:\n{}",
        agg.metrics()
    );

    // Capacity frees when the resident connection hangs up.
    drop(first);
    assert!(
        eventually(Duration::from_secs(5), || {
            Client::connect(agg.local_addr())
                .and_then(|mut c| c.list_sessions())
                .is_ok()
        }),
        "slot never freed after the first connection closed"
    );

    agg.join();
    server.join();
}

/// Checkpoint write failures are counted, not swallowed: pointing the
/// state path into a directory that does not exist makes every cycle's
/// checkpoint fail, and `agg_checkpoint_errors_total` says so while the
/// in-memory aggregate keeps serving.
#[test]
fn checkpoint_write_failures_are_counted() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let events = stream(13);
    feed(server.local_addr(), "acme/web", 13, &events);

    let agg = Aggregator::bind(
        "127.0.0.1:0",
        AggConfig {
            upstreams: vec![server.local_addr().to_string()],
            pull_interval: Duration::from_millis(25),
            state_path: Some(
                std::env::temp_dir()
                    .join(format!("mhp-agg-missing-{}", std::process::id()))
                    .join("nested")
                    .join("agg.snap"),
            ),
            ..AggConfig::default()
        },
    )
    .unwrap();

    let mut expected = AggState::new();
    offline_fold(&mut expected, "acme", 13, &events);
    let want = expected.top_k("acme", 50);
    assert!(
        eventually(Duration::from_secs(10), || agg.top_k("acme", 50) == want),
        "aggregate stopped serving under checkpoint failures"
    );
    assert!(
        eventually(Duration::from_secs(5), || {
            agg.metrics().lines().any(|line| {
                line.starts_with("agg_checkpoint_errors_total") && !line.ends_with(" 0")
            })
        }),
        "checkpoint failures not counted:\n{}",
        agg.metrics()
    );

    agg.join();
    server.join();
}
