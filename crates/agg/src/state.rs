//! The aggregator's merge tree: per-tenant cumulative count tables, the
//! pull cursors that make leaf pulls exactly-once, and the deterministic
//! [`KIND_AGGREGATOR`] checkpoint envelope.
//!
//! ## Two contribution kinds
//!
//! A leaf `mhp-server` session contributes **additively**: each completed
//! interval's profile is pulled exactly once (the per-session cursor
//! advances past it) and its counts are summed into the session tenant's
//! table. A child aggregator contributes with **replace** semantics: its
//! exported per-tenant cumulative table (a `<tenant>/__cumulative__`
//! session) is re-fetched whole every cycle and swaps out the previous
//! fetch, so stacking aggregators never double-counts.
//!
//! Everything lives in `BTreeMap`s, so iteration — and therefore the
//! checkpoint encoding and every rendered table — is deterministic with
//! no sorting step. Two aggregators that merged the same profiles hold
//! byte-identical checkpoints.

use std::collections::BTreeMap;

use mhp_core::state::KIND_AGGREGATOR;
use mhp_core::{top_k_by_count, Candidate, SnapshotError, SnapshotReader, SnapshotWriter, Tuple};

/// Suffix an aggregator appends to a tenant name to form the session name
/// of its exported cumulative table. A parent aggregator recognizes the
/// suffix in an upstream's session listing and switches to replace
/// semantics for it.
pub const CUMULATIVE_SUFFIX: &str = "/__cumulative__";

/// One tenant's cumulative count table.
pub type TenantTable = BTreeMap<Tuple, u64>;

/// The aggregator's entire mergeable state. Mutated by the pull loop,
/// read by query connections; the node wraps it in one mutex.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct AggState {
    /// Completed pull cycles. Exported as the `intervals` field of every
    /// cumulative session, so a downstream parent (or a test) can watch
    /// progress.
    pub epoch: u64,
    /// Additive totals per tenant, from leaf-server sessions.
    tenants: BTreeMap<String, TenantTable>,
    /// Replace-semantics contributions keyed by `(upstream, tenant)`,
    /// from child aggregators.
    children: BTreeMap<(String, String), TenantTable>,
    /// Next interval index to pull, per `(upstream, session name)`.
    cursors: BTreeMap<(String, String), u64>,
}

impl AggState {
    /// An empty state.
    pub fn new() -> AggState {
        AggState::default()
    }

    /// Sums one pulled leaf-interval profile into `tenant`'s table.
    /// Returns the events (total count) the profile added.
    pub fn add_leaf_profile(&mut self, tenant: &str, candidates: &[Candidate]) -> u64 {
        let table = self.tenants.entry(tenant.to_string()).or_default();
        let mut added = 0;
        for c in candidates {
            *table.entry(c.tuple).or_insert(0) += c.count;
            added += c.count;
        }
        added
    }

    /// Replaces the child contribution for `(upstream, tenant)` with a
    /// freshly fetched cumulative table.
    pub fn set_child(&mut self, upstream: &str, tenant: &str, candidates: &[Candidate]) {
        let mut table = TenantTable::new();
        for c in candidates {
            *table.entry(c.tuple).or_insert(0) += c.count;
        }
        self.children
            .insert((upstream.to_string(), tenant.to_string()), table);
    }

    /// The next interval to pull from `(upstream, session)`; `0` before
    /// the first pull.
    pub fn cursor(&self, upstream: &str, session: &str) -> u64 {
        self.cursors
            .get(&(upstream.to_string(), session.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Advances the pull cursor for `(upstream, session)`.
    pub fn set_cursor(&mut self, upstream: &str, session: &str, cursor: u64) {
        self.cursors
            .insert((upstream.to_string(), session.to_string()), cursor);
    }

    /// Every tenant with any contribution, sorted.
    pub fn tenant_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tenants.keys().cloned().collect();
        for (_, tenant) in self.children.keys() {
            if !names.contains(tenant) {
                names.push(tenant.clone());
            }
        }
        names.sort();
        names
    }

    /// The tenant's global cumulative table: additive leaf totals plus
    /// the latest contribution from every child. `None` for a tenant the
    /// aggregator has never seen.
    pub fn tenant_table(&self, tenant: &str) -> Option<TenantTable> {
        let mut merged = self.tenants.get(tenant).cloned();
        for ((_, child_tenant), table) in &self.children {
            if child_tenant != tenant {
                continue;
            }
            let merged = merged.get_or_insert_with(TenantTable::new);
            for (tuple, count) in table {
                *merged.entry(*tuple).or_insert(0) += count;
            }
        }
        merged
    }

    /// The tenant's global top-k, hottest first with deterministic
    /// tie-breaking (see [`top_k_by_count`]) — the fleet-wide answer this
    /// whole tier exists to produce.
    pub fn top_k(&self, tenant: &str, k: usize) -> Vec<Candidate> {
        let Some(table) = self.tenant_table(tenant) else {
            return Vec::new();
        };
        top_k_by_count(table.into_iter().collect(), k)
            .into_iter()
            .map(|(tuple, count)| Candidate { tuple, count })
            .collect()
    }

    /// Total events (sum of counts) in the tenant's global table.
    pub fn tenant_events(&self, tenant: &str) -> u64 {
        self.tenant_table(tenant)
            .map(|table| table.values().sum())
            .unwrap_or(0)
    }

    /// Serializes the whole state into a CRC-guarded
    /// [`KIND_AGGREGATOR`] envelope. Deterministic: equal states encode
    /// to equal bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(KIND_AGGREGATOR);
        w.put_u64(self.epoch);
        w.put_u64(self.tenants.len() as u64);
        for (tenant, table) in &self.tenants {
            w.put_bytes(tenant.as_bytes());
            put_table(&mut w, table);
        }
        w.put_u64(self.children.len() as u64);
        for ((upstream, tenant), table) in &self.children {
            w.put_bytes(upstream.as_bytes());
            w.put_bytes(tenant.as_bytes());
            put_table(&mut w, table);
        }
        w.put_u64(self.cursors.len() as u64);
        for ((upstream, session), cursor) in &self.cursors {
            w.put_bytes(upstream.as_bytes());
            w.put_bytes(session.as_bytes());
            w.put_u64(*cursor);
        }
        w.finish()
    }

    /// Parses a checkpoint back, validating the envelope (magic, version,
    /// kind, CRC) and every length.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on any corruption or truncation.
    pub fn decode(bytes: &[u8]) -> Result<AggState, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, KIND_AGGREGATOR)?;
        let epoch = r.take_u64("epoch")?;
        let mut tenants = BTreeMap::new();
        let tenant_count = r.take_count(1, "tenant count")?;
        for _ in 0..tenant_count {
            let tenant = take_string(&mut r, "tenant name")?;
            tenants.insert(tenant, take_table(&mut r)?);
        }
        let mut children = BTreeMap::new();
        let child_count = r.take_count(1, "child count")?;
        for _ in 0..child_count {
            let upstream = take_string(&mut r, "child upstream")?;
            let tenant = take_string(&mut r, "child tenant")?;
            children.insert((upstream, tenant), take_table(&mut r)?);
        }
        let mut cursors = BTreeMap::new();
        let cursor_count = r.take_count(1, "cursor count")?;
        for _ in 0..cursor_count {
            let upstream = take_string(&mut r, "cursor upstream")?;
            let session = take_string(&mut r, "cursor session")?;
            cursors.insert((upstream, session), r.take_u64("cursor")?);
        }
        r.expect_end()?;
        Ok(AggState {
            epoch,
            tenants,
            children,
            cursors,
        })
    }
}

fn put_table(w: &mut SnapshotWriter, table: &TenantTable) {
    w.put_u64(table.len() as u64);
    for (tuple, count) in table {
        w.put_u64(tuple.pc().as_u64());
        w.put_u64(tuple.value().as_u64());
        w.put_u64(*count);
    }
}

fn take_table(r: &mut SnapshotReader<'_>) -> Result<TenantTable, SnapshotError> {
    let len = r.take_count(24, "table length")?;
    let mut table = TenantTable::new();
    for _ in 0..len {
        let pc = r.take_u64("tuple pc")?;
        let value = r.take_u64("tuple value")?;
        let count = r.take_u64("tuple count")?;
        table.insert(Tuple::new(pc, value), count);
    }
    Ok(table)
}

fn take_string(r: &mut SnapshotReader<'_>, context: &'static str) -> Result<String, SnapshotError> {
    String::from_utf8(r.take_bytes(context)?.to_vec())
        .map_err(|_| SnapshotError::Corrupt { context })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(pc: u64, value: u64, count: u64) -> Candidate {
        Candidate {
            tuple: Tuple::new(pc, value),
            count,
        }
    }

    #[test]
    fn leaf_profiles_sum_and_children_replace() {
        let mut state = AggState::new();
        state.add_leaf_profile("acme", &[candidate(1, 0, 10), candidate(2, 0, 5)]);
        state.add_leaf_profile("acme", &[candidate(1, 0, 3)]);
        state.set_child("child:1", "acme", &[candidate(3, 0, 7)]);
        state.set_child("child:1", "acme", &[candidate(3, 0, 9)]); // replaces, not adds

        let top = state.top_k("acme", 10);
        assert_eq!(
            top,
            vec![candidate(1, 0, 13), candidate(3, 0, 9), candidate(2, 0, 5)]
        );
        assert_eq!(state.tenant_events("acme"), 27);
        assert!(state.top_k("ghost", 10).is_empty());
    }

    #[test]
    fn checkpoints_round_trip_and_are_byte_deterministic() {
        let mut a = AggState::new();
        a.epoch = 4;
        a.add_leaf_profile("beta", &[candidate(9, 1, 2)]);
        a.add_leaf_profile("acme", &[candidate(1, 0, 10), candidate(2, 2, 5)]);
        a.set_child("child:1", "acme", &[candidate(3, 0, 7)]);
        a.set_cursor("up:1", "acme/web", 6);
        a.set_cursor("up:0", "beta/db", 2);

        // Same contributions in a different arrival order.
        let mut b = AggState::new();
        b.epoch = 4;
        b.set_cursor("up:0", "beta/db", 2);
        b.add_leaf_profile("acme", &[candidate(2, 2, 5)]);
        b.set_child("child:1", "acme", &[candidate(3, 0, 7)]);
        b.add_leaf_profile("acme", &[candidate(1, 0, 10)]);
        b.set_cursor("up:1", "acme/web", 6);
        b.add_leaf_profile("beta", &[candidate(9, 1, 2)]);

        assert_eq!(a.encode(), b.encode());
        let restored = AggState::decode(&a.encode()).unwrap();
        assert_eq!(restored, a);
        assert_eq!(restored.tenant_names(), vec!["acme", "beta"]);
        assert_eq!(restored.cursor("up:1", "acme/web"), 6);
        assert_eq!(restored.cursor("up:9", "nope"), 0);
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        let mut state = AggState::new();
        state.add_leaf_profile("acme", &[candidate(1, 0, 10)]);
        let mut bytes = state.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(AggState::decode(&bytes).is_err());
        assert!(AggState::decode(&bytes[..bytes.len() - 3]).is_err());
    }
}
