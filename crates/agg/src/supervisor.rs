//! Per-upstream pull supervision: deadlines, exponential backoff, and a
//! circuit breaker.
//!
//! Each upstream of an aggregator gets its own supervisor-owned worker
//! thread (see `node.rs`), so a dead, slow, or flapping upstream costs its
//! own slot and nothing else. This module holds the *policy* half of that
//! design — pure state machines with injected clocks, unit-testable
//! without sockets or sleeps:
//!
//! * [`PullPolicy`] — the deadline/backoff/breaker knobs for one node.
//! * [`CircuitBreaker`] — closed → open (quarantine) → half-open (trial
//!   probe) per upstream, driven by pull outcomes.
//! * [`UpstreamStatus`] — lock-free per-upstream health shared between the
//!   worker, the metrics gauges, the `stats` text, and the protocol's
//!   session-listing health block.
//!
//! The state machine (DESIGN §18):
//!
//! ```text
//!            success                    failure < threshold
//!          ┌─────────┐                  ┌──────────────────┐
//!          ▼         │                  ▼                  │
//!       CLOSED ──────┴───────────── (backoff) ─────────────┘
//!          │  consecutive_failures >= threshold
//!          ▼
//!        OPEN ── quarantine elapses ──► HALF-OPEN ── probe ok ──► CLOSED
//!          ▲                               │
//!          └────────── probe fails ────────┘
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

use mhp_server::{BreakerPhase, RetryPolicy, UpstreamHealth};

/// Deadlines, backoff, and breaker tuning for every pull worker of one
/// aggregator.
#[derive(Debug, Clone)]
pub struct PullPolicy {
    /// TCP connect deadline per pull attempt.
    pub connect_timeout: Duration,
    /// Socket read deadline on the pull connection: an upstream that
    /// accepts but never answers fails at the next frame boundary instead
    /// of wedging the worker forever.
    pub read_timeout: Duration,
    /// Whole-pull budget: checked between in-pull operations, so a
    /// dribbling upstream (every read just under the read timeout) cannot
    /// hold a pull open indefinitely. The harvest completed before the
    /// budget tripped is still applied.
    pub pull_budget: Duration,
    /// First post-failure backoff; doubles per consecutive failure with
    /// deterministic jitter — the exact [`RetryPolicy`] discipline the
    /// reconnecting ingest client uses.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Jitter seed (mixed with the upstream index so a fleet of workers
    /// does not thunder in lockstep).
    pub jitter_seed: u64,
    /// Consecutive failures that open the breaker (quarantine).
    pub breaker_threshold: u32,
    /// How long an opened breaker quarantines its upstream before
    /// half-opening for a trial probe.
    pub quarantine: Duration,
}

impl Default for PullPolicy {
    fn default() -> Self {
        PullPolicy {
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_millis(250),
            pull_budget: Duration::from_secs(2),
            backoff_base: Duration::from_millis(25),
            backoff_max: Duration::from_millis(500),
            jitter_seed: 0xA66_5EED,
            breaker_threshold: 3,
            quarantine: Duration::from_millis(1_000),
        }
    }
}

impl PullPolicy {
    /// The pause before the next attempt after `consecutive_failures`
    /// failures (1-based), delegated to [`RetryPolicy::backoff`] so the
    /// pull plane and the ingest client share one backoff discipline.
    pub fn backoff(&self, consecutive_failures: u32, upstream_index: usize) -> Duration {
        let policy = RetryPolicy {
            max_retries: 0, // unused by backoff()
            base_backoff: self.backoff_base,
            max_backoff: self.backoff_max,
            jitter_seed: self.jitter_seed ^ (upstream_index as u64).wrapping_mul(0x9E37),
        };
        policy.backoff(consecutive_failures)
    }
}

/// What the supervisor should do with the upcoming pull slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PullDecision {
    /// Breaker closed: pull normally.
    Pull,
    /// Quarantine elapsed: pull once as a half-open trial probe.
    Probe,
    /// Quarantined: skip, re-check after the given remaining time.
    Skip(Duration),
}

/// The outcome [`CircuitBreaker::on_failure`] reports, so the caller can
/// bump the right counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureOutcome {
    /// The breaker transitioned to open on this failure (a fresh
    /// quarantine — either the threshold tripped or a half-open probe
    /// failed).
    pub quarantined: bool,
}

/// Per-upstream circuit breaker. Owned by one worker thread; the clock is
/// passed in so tests can drive it without sleeping.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    quarantine: Duration,
    phase: BreakerPhase,
    consecutive_failures: u32,
    open_until: Option<Instant>,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive failures
    /// and quarantines for `quarantine` per opening.
    pub fn new(threshold: u32, quarantine: Duration) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            quarantine,
            phase: BreakerPhase::Closed,
            consecutive_failures: 0,
            open_until: None,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> BreakerPhase {
        self.phase
    }

    /// Consecutive failures since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Decides what to do with the upcoming pull slot. An open breaker
    /// half-opens here once its quarantine has elapsed.
    pub fn decide(&mut self, now: Instant) -> PullDecision {
        match self.phase {
            BreakerPhase::Closed => PullDecision::Pull,
            BreakerPhase::HalfOpen => PullDecision::Probe,
            BreakerPhase::Open => {
                let until = self.open_until.expect("open breaker has a deadline");
                if now >= until {
                    self.phase = BreakerPhase::HalfOpen;
                    PullDecision::Probe
                } else {
                    PullDecision::Skip(until - now)
                }
            }
        }
    }

    /// Records a successful pull. Returns `true` when this closed a
    /// non-closed breaker (a recovery worth counting).
    pub fn on_success(&mut self) -> bool {
        let recovered = self.phase != BreakerPhase::Closed;
        self.phase = BreakerPhase::Closed;
        self.consecutive_failures = 0;
        self.open_until = None;
        recovered
    }

    /// Records a failed pull attempt at `now`.
    pub fn on_failure(&mut self, now: Instant) -> FailureOutcome {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let quarantined = match self.phase {
            // A failed half-open probe re-opens immediately: the upstream
            // is still bad, start a fresh quarantine.
            BreakerPhase::HalfOpen => true,
            BreakerPhase::Closed => self.consecutive_failures >= self.threshold,
            // Unreachable in practice (no attempts while open), but a
            // failure reported here just extends the quarantine.
            BreakerPhase::Open => true,
        };
        if quarantined {
            self.phase = BreakerPhase::Open;
            self.open_until = Some(now + self.quarantine);
        }
        FailureOutcome { quarantined }
    }
}

/// Epoch sentinel in [`UpstreamHealth::last_success_epoch`] for an
/// upstream that has never completed a pull.
pub const NEVER: u64 = u64::MAX;

/// Lock-free per-upstream health, shared between the worker thread that
/// writes it and the query/stats/metrics paths that read it.
#[derive(Debug)]
pub struct UpstreamStatus {
    /// The upstream's address, as configured.
    pub addr: String,
    healthy: AtomicBool,
    phase: AtomicU8,
    last_success_cycle: AtomicU64,
    last_success_epoch: AtomicU64,
    consecutive_failures: AtomicU64,
}

impl UpstreamStatus {
    /// A fresh status: healthy until proven otherwise, never succeeded.
    pub fn new(addr: String) -> UpstreamStatus {
        UpstreamStatus {
            addr,
            healthy: AtomicBool::new(true),
            phase: AtomicU8::new(BreakerPhase::Closed.as_u8()),
            last_success_cycle: AtomicU64::new(NEVER),
            last_success_epoch: AtomicU64::new(NEVER),
            consecutive_failures: AtomicU64::new(0),
        }
    }

    /// Records a completed pull: healthy, failures reset, success marks.
    pub fn record_success(&self, cycle: u64, epoch: u64) {
        self.healthy.store(true, Ordering::Release);
        self.phase
            .store(BreakerPhase::Closed.as_u8(), Ordering::Release);
        self.last_success_cycle.store(cycle, Ordering::Release);
        self.last_success_epoch.store(epoch, Ordering::Release);
        self.consecutive_failures.store(0, Ordering::Release);
    }

    /// Records a failed pull attempt and the breaker phase it left the
    /// supervisor in. `healthy` stays true until the breaker opens: a
    /// single blip is not unhealth, a quarantine is.
    pub fn record_failure(&self, consecutive_failures: u32, phase: BreakerPhase) {
        self.phase.store(phase.as_u8(), Ordering::Release);
        self.consecutive_failures
            .store(u64::from(consecutive_failures), Ordering::Release);
        if phase != BreakerPhase::Closed {
            self.healthy.store(false, Ordering::Release);
        }
    }

    /// Marks the half-open transition so health readers see the probe
    /// phase rather than a stale `open`.
    pub fn record_phase(&self, phase: BreakerPhase) {
        self.phase.store(phase.as_u8(), Ordering::Release);
    }

    /// Whether the last completed attempt left the upstream healthy.
    pub fn healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }

    /// The cycle count at the last successful pull ([`NEVER`] if none).
    pub fn last_success_cycle(&self) -> u64 {
        self.last_success_cycle.load(Ordering::Acquire)
    }

    /// Pull cycles of staleness at cycle `now`: 0 right after a success,
    /// `now` if this upstream has never completed a pull.
    pub fn staleness_cycles(&self, now: u64) -> u64 {
        match self.last_success_cycle.load(Ordering::Acquire) {
            NEVER => now,
            last => now.saturating_sub(last),
        }
    }

    /// Snapshot for the wire/stats health block at cycle `now`.
    pub fn health(&self, now: u64) -> UpstreamHealth {
        UpstreamHealth {
            addr: self.addr.clone(),
            healthy: self.healthy(),
            phase: BreakerPhase::from_u8(self.phase.load(Ordering::Acquire))
                .unwrap_or(BreakerPhase::Closed),
            staleness_cycles: self.staleness_cycles(now),
            last_success_epoch: self.last_success_epoch.load(Ordering::Acquire),
            consecutive_failures: self.consecutive_failures.load(Ordering::Acquire),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> PullPolicy {
        PullPolicy::default()
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_after_quarantine() {
        let mut b = CircuitBreaker::new(3, Duration::from_secs(1));
        let t0 = Instant::now();
        assert_eq!(b.decide(t0), PullDecision::Pull);
        assert!(!b.on_failure(t0).quarantined);
        assert!(!b.on_failure(t0).quarantined);
        assert_eq!(
            b.decide(t0),
            PullDecision::Pull,
            "still closed below threshold"
        );
        assert!(b.on_failure(t0).quarantined, "third failure quarantines");
        assert_eq!(b.phase(), BreakerPhase::Open);
        match b.decide(t0 + Duration::from_millis(500)) {
            PullDecision::Skip(remaining) => {
                assert!(remaining <= Duration::from_millis(500));
            }
            other => panic!("expected Skip, got {other:?}"),
        }
        assert_eq!(b.decide(t0 + Duration::from_secs(1)), PullDecision::Probe);
        assert_eq!(b.phase(), BreakerPhase::HalfOpen);
    }

    #[test]
    fn failed_probe_reopens_successful_probe_recovers() {
        let mut b = CircuitBreaker::new(1, Duration::from_secs(1));
        let t0 = Instant::now();
        assert!(b.on_failure(t0).quarantined);
        assert_eq!(b.decide(t0 + Duration::from_secs(1)), PullDecision::Probe);
        // Probe fails: immediately re-quarantined for a fresh window.
        assert!(b.on_failure(t0 + Duration::from_secs(1)).quarantined);
        assert_eq!(b.phase(), BreakerPhase::Open);
        assert!(matches!(
            b.decide(t0 + Duration::from_millis(1_500)),
            PullDecision::Skip(_)
        ));
        // Next probe succeeds: recovery.
        assert_eq!(b.decide(t0 + Duration::from_secs(2)), PullDecision::Probe);
        assert!(b.on_success(), "half-open -> closed counts as recovery");
        assert_eq!(b.phase(), BreakerPhase::Closed);
        assert_eq!(b.consecutive_failures(), 0);
        assert!(!b.on_success(), "closed -> closed is not a recovery");
    }

    #[test]
    fn zero_threshold_is_clamped_to_one() {
        let mut b = CircuitBreaker::new(0, Duration::from_secs(1));
        assert!(b.on_failure(Instant::now()).quarantined);
    }

    #[test]
    fn backoff_grows_caps_and_differs_per_upstream() {
        let p = policy();
        let b1 = p.backoff(1, 0);
        let b4 = p.backoff(4, 0);
        assert!(b4 > b1, "backoff grows with consecutive failures");
        assert!(b4 <= p.backoff_max + p.backoff_max / 2 + Duration::from_millis(1));
        // Different upstream indices draw different jitter.
        assert_ne!(p.backoff(1, 0), p.backoff(1, 1));
        // Deterministic per (attempt, upstream).
        assert_eq!(p.backoff(3, 2), p.backoff(3, 2));
    }

    #[test]
    fn status_tracks_success_failure_and_staleness() {
        let s = UpstreamStatus::new("127.0.0.1:9".into());
        assert!(s.healthy(), "healthy until proven otherwise");
        assert_eq!(s.staleness_cycles(5), 5, "never succeeded = stale forever");
        s.record_failure(1, BreakerPhase::Closed);
        assert!(s.healthy(), "one blip under the threshold is not unhealth");
        s.record_failure(3, BreakerPhase::Open);
        assert!(!s.healthy());
        let h = s.health(7);
        assert_eq!(h.phase, BreakerPhase::Open);
        assert_eq!(h.consecutive_failures, 3);
        assert_eq!(h.last_success_epoch, NEVER);
        assert_eq!(h.staleness_cycles, 7);
        s.record_success(9, 4);
        assert!(s.healthy());
        assert_eq!(s.staleness_cycles(9), 0);
        assert_eq!(s.staleness_cycles(12), 3);
        let h = s.health(12);
        assert_eq!(h.phase, BreakerPhase::Closed);
        assert_eq!(h.last_success_epoch, 4);
        assert_eq!(h.consecutive_failures, 0);
    }
}
