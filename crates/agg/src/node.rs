//! The aggregator node: a pull loop that drains upstream servers (and
//! child aggregators) into the merge tree, plus a TCP serving loop that
//! answers the same framed query protocol an `mhp-server` speaks — which
//! is exactly what lets aggregators stack.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mhp_core::Candidate;
use mhp_faults::{ConnAction, FaultHook};
use mhp_server::protocol::{read_frame, write_frame};
use mhp_server::{
    tenant_of, Client, ErrorCode, ProfileData, ProfilerKind, Request, Response, ServerError,
    SessionConfig, SessionInfo,
};
use mhp_telemetry::{Counter, CounterVec, Registry, Trace, TraceConfig, Tracer};

use crate::state::{AggState, CUMULATIVE_SUFFIX};

/// The aggregator's pull-cycle stage taxonomy, in pipeline order; the
/// tracer registers one `agg_stage_{name}_us` histogram per entry.
pub const AGG_STAGES: &[&str] = &[
    "connect",
    "list_sessions",
    "snapshot",
    "apply",
    "checkpoint",
];

/// Connecting to an upstream.
const AGG_STAGE_CONNECT: usize = 0;
/// Listing the upstream's sessions.
const AGG_STAGE_LIST_SESSIONS: usize = 1;
/// Attaching to sessions and pulling their interval snapshots.
const AGG_STAGE_SNAPSHOT: usize = 2;
/// Merging the harvest into the tree under the state lock.
const AGG_STAGE_APPLY: usize = 3;
/// Encoding and atomically writing the cycle's checkpoint.
const AGG_STAGE_CHECKPOINT: usize = 4;

/// Tuning for an [`Aggregator`].
#[derive(Debug, Clone)]
pub struct AggConfig {
    /// Upstream addresses to pull from: `mhp-server`s, other
    /// aggregators, or a mix. Sessions whose name ends in
    /// `/__cumulative__` are treated as child-aggregator exports
    /// (replace semantics); everything else is a leaf session (additive
    /// interval pulls).
    pub upstreams: Vec<String>,
    /// Pause between pull cycles.
    pub pull_interval: Duration,
    /// When set, the merge tree is checkpointed here (atomically, in the
    /// shared CRC-guarded snapshot envelope) after every pull cycle and
    /// restored on the next start — a kill -9'd aggregator resumes with
    /// its cursors intact and never double-counts an interval.
    pub state_path: Option<PathBuf>,
    /// Per-connection read timeout on the serving side.
    pub read_timeout: Duration,
    /// Armed fault plan for chaos testing: consulted once per upstream
    /// per pull cycle; a `conn-drop` fault skips that upstream for the
    /// cycle (counted in `agg_pull_errors_total`).
    pub fault_hook: Option<FaultHook>,
}

impl Default for AggConfig {
    fn default() -> Self {
        AggConfig {
            upstreams: Vec::new(),
            pull_interval: Duration::from_millis(200),
            state_path: None,
            read_timeout: Duration::from_millis(200),
            fault_hook: None,
        }
    }
}

/// Aggregator-side counters, on one shared registry so the `metrics`
/// query exposes the whole picture — per-tenant series included.
struct AggTelemetry {
    registry: Registry,
    pull_cycles: Counter,
    pull_errors: Counter,
    checkpoints: Counter,
    restores: Counter,
    tenant_profiles_merged: CounterVec,
    tenant_events_merged: CounterVec,
    /// Per-pull-cycle stage tracing: one `"pull"` trace per upstream per
    /// cycle (detail = upstream index) plus one `"checkpoint"` trace per
    /// progressing cycle, behind the same `traces` query the server
    /// answers.
    tracer: Tracer,
}

impl AggTelemetry {
    fn new() -> AggTelemetry {
        let registry = Registry::new();
        AggTelemetry {
            pull_cycles: registry.counter("agg_pull_cycles_total"),
            pull_errors: registry.counter("agg_pull_errors_total"),
            checkpoints: registry.counter("agg_checkpoints_total"),
            restores: registry.counter("agg_restore_total"),
            tenant_profiles_merged: CounterVec::new(
                &registry,
                "agg_tenant_profiles_merged_total",
                "tenant",
            ),
            tenant_events_merged: CounterVec::new(
                &registry,
                "agg_tenant_events_merged_total",
                "tenant",
            ),
            tracer: Tracer::new(&registry, TraceConfig::new("agg", AGG_STAGES)),
            registry,
        }
    }
}

/// Shared state between the pull loop, the serving loop, and the handle.
struct Inner {
    config: AggConfig,
    state: Mutex<AggState>,
    telemetry: AggTelemetry,
    shutdown: AtomicBool,
}

/// The aggregation node. [`bind`](Aggregator::bind) it to get a
/// [`RunningAggregator`] handle.
#[derive(Debug)]
pub struct Aggregator;

impl Aggregator {
    /// Binds `addr`, restores any checkpoint at
    /// [`AggConfig::state_path`], and starts the pull and serving loops
    /// on background threads.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if the address cannot be bound, or a snapshot
    /// error if an existing checkpoint file is corrupt (a corrupt
    /// checkpoint is a loud failure, not silent data loss).
    pub fn bind(addr: &str, config: AggConfig) -> Result<RunningAggregator, ServerError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let telemetry = AggTelemetry::new();
        let mut state = AggState::new();
        if let Some(path) = &config.state_path {
            match std::fs::read(path) {
                Ok(bytes) => {
                    state = AggState::decode(&bytes)
                        .map_err(|e| ServerError::protocol_owned(format!("checkpoint: {e}")))?;
                    telemetry.restores.incr();
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(ServerError::Io(e)),
            }
        }

        let inner = Arc::new(Inner {
            config,
            state: Mutex::new(state),
            telemetry,
            shutdown: AtomicBool::new(false),
        });

        let pull_inner = Arc::clone(&inner);
        let pull_handle = std::thread::spawn(move || pull_loop(&pull_inner));
        let serve_inner = Arc::clone(&inner);
        let serve_handle = std::thread::spawn(move || accept_loop(&listener, &serve_inner));

        Ok(RunningAggregator {
            local_addr,
            inner,
            pull_handle: Some(pull_handle),
            serve_handle: Some(serve_handle),
        })
    }
}

/// A bound, running aggregator.
#[derive(Debug)]
pub struct RunningAggregator {
    local_addr: SocketAddr,
    inner: Arc<Inner>,
    pull_handle: Option<JoinHandle<()>>,
    serve_handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("shutdown", &self.shutdown.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl RunningAggregator {
    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Completed pull cycles so far.
    pub fn epoch(&self) -> u64 {
        self.inner.state.lock().expect("state lock poisoned").epoch
    }

    /// The global top-k for one tenant, straight from the merge tree.
    pub fn top_k(&self, tenant: &str, k: usize) -> Vec<Candidate> {
        self.inner
            .state
            .lock()
            .expect("state lock poisoned")
            .top_k(tenant, k)
    }

    /// Prometheus exposition of the aggregator's metrics.
    pub fn metrics(&self) -> String {
        self.inner.telemetry.registry.render_prometheus()
    }

    /// The pull-cycle trace stream as JSONL — stage summaries followed by
    /// sampled traces — same text the `traces` query returns.
    pub fn traces_jsonl(&self) -> String {
        self.inner.telemetry.tracer.render_jsonl()
    }

    /// Requests a graceful shutdown. Returns immediately; use
    /// [`join`](Self::join) to wait.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for both loops to finish. Implies [`shutdown`](Self::shutdown).
    pub fn join(mut self) {
        self.shutdown();
        self.reap();
    }

    /// Blocks until the aggregator shuts down (e.g. a client `shutdown`
    /// request) without triggering the shutdown itself.
    pub fn wait(mut self) {
        self.reap();
    }

    fn reap(&mut self) {
        if let Some(handle) = self.serve_handle.take() {
            let _ = handle.join();
        }
        self.inner.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.pull_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RunningAggregator {
    fn drop(&mut self) {
        self.shutdown();
        self.reap();
    }
}

/// One upstream's harvest for a cycle, collected off-lock (the pulls are
/// network I/O) and applied to the merge tree in one short critical
/// section.
#[derive(Default)]
struct Harvest {
    /// Leaf profiles: `(tenant, candidates)`, in pull order.
    leaf_profiles: Vec<(String, Vec<Candidate>)>,
    /// Cursor advances: `(session, next_interval)`.
    cursors: Vec<(String, u64)>,
    /// Child-aggregator exports: `(tenant, full cumulative table)`.
    children: Vec<(String, Vec<Candidate>)>,
}

/// Pulls every upstream once per [`AggConfig::pull_interval`], applying
/// each upstream's harvest as it lands, then checkpoints. Polls the
/// shutdown flag between upstreams so shutdown never waits out a cycle.
fn pull_loop(inner: &Inner) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let mut progressed = false;
        for (index, upstream) in inner.config.upstreams.iter().enumerate() {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            // Injected pull faults: a conn-drop skips this upstream for
            // the cycle — the cursors make the next cycle pick up exactly
            // where this one would have.
            if let Some(hook) = &inner.config.fault_hook {
                if hook.on_request() == ConnAction::Drop {
                    inner.telemetry.pull_errors.incr();
                    continue;
                }
            }
            // One trace per upstream per cycle, tagged with the upstream's
            // index; an errored pull still finishes (its connect/list time
            // is real work worth attributing).
            let trace = inner.telemetry.tracer.begin("pull");
            trace.set_detail(index as u64);
            match pull_upstream(inner, upstream, &trace) {
                Ok(harvest) => {
                    progressed = true;
                    let apply = trace.stage(AGG_STAGE_APPLY);
                    apply_harvest(inner, upstream, harvest);
                    apply.finish();
                }
                Err(_) => inner.telemetry.pull_errors.incr(),
            }
            trace.finish();
        }
        if progressed {
            let trace = inner.telemetry.tracer.begin("checkpoint");
            let timer = trace.stage(AGG_STAGE_CHECKPOINT);
            let mut state = inner.state.lock().expect("state lock poisoned");
            state.epoch += 1;
            let snapshot = inner.config.state_path.as_ref().map(|_| state.encode());
            drop(state);
            if let (Some(path), Some(bytes)) = (&inner.config.state_path, snapshot) {
                if write_atomically(path, &bytes).is_ok() {
                    inner.telemetry.checkpoints.incr();
                }
            }
            timer.finish();
            trace.finish();
        }
        inner.telemetry.pull_cycles.incr();
        // Sleep in small slices so shutdown stays responsive.
        let deadline = Instant::now() + inner.config.pull_interval;
        while Instant::now() < deadline {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Connects to one upstream and drains everything new: every completed,
/// not-yet-pulled interval of every leaf session, and the full cumulative
/// table of every child-aggregator export.
fn pull_upstream(inner: &Inner, upstream: &str, trace: &Trace) -> Result<Harvest, ServerError> {
    let connect = trace.stage(AGG_STAGE_CONNECT);
    let mut client = Client::connect(upstream)?;
    connect.finish();
    let mut harvest = Harvest::default();
    let cursor_of = |session: &str| {
        inner
            .state
            .lock()
            .expect("state lock poisoned")
            .cursor(upstream, session)
    };
    let list = trace.stage(AGG_STAGE_LIST_SESSIONS);
    let sessions = client.list_sessions()?;
    list.finish();
    for info in sessions {
        // Attach round-trips count toward the snapshot stage: they exist
        // only to scope the pulls that follow.
        if let Some(tenant) = info.name.strip_suffix(CUMULATIVE_SUFFIX) {
            let timer = trace.stage(AGG_STAGE_SNAPSHOT);
            client.attach(&info.name)?;
            let profile = client.snapshot(u64::MAX)?;
            timer.finish();
            if let Some(profile) = profile {
                harvest
                    .children
                    .push((tenant.to_string(), profile.candidates));
            }
            continue;
        }
        let tenant = tenant_of(&info.name).to_string();
        let mut cursor = cursor_of(&info.name);
        if cursor >= info.intervals {
            continue; // nothing new; skip the attach round-trip
        }
        let timer = trace.stage(AGG_STAGE_SNAPSHOT);
        client.attach(&info.name)?;
        loop {
            let Some(profile) = client.snapshot(cursor)? else {
                break;
            };
            harvest
                .leaf_profiles
                .push((tenant.clone(), profile.candidates));
            cursor += 1;
        }
        timer.finish();
        harvest.cursors.push((info.name, cursor));
    }
    Ok(harvest)
}

/// Applies one upstream's harvest under the state lock.
fn apply_harvest(inner: &Inner, upstream: &str, harvest: Harvest) {
    let mut state = inner.state.lock().expect("state lock poisoned");
    for (tenant, candidates) in &harvest.leaf_profiles {
        let added = state.add_leaf_profile(tenant, candidates);
        inner.telemetry.tenant_profiles_merged.incr(tenant);
        inner.telemetry.tenant_events_merged.add(tenant, added);
    }
    for (session, cursor) in &harvest.cursors {
        state.set_cursor(upstream, session, *cursor);
    }
    for (tenant, candidates) in &harvest.children {
        state.set_child(upstream, tenant, candidates);
    }
}

/// Atomic file replacement, same discipline as the server's checkpoints:
/// complete on disk before it takes the live name.
fn write_atomically(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Accepts query connections until shutdown. One thread per connection —
/// aggregator query fan-in is dashboards and parent aggregators, not the
/// firehose the ingest path handles.
fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    let mut handles = Vec::new();
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let inner = Arc::clone(inner);
                handles.push(std::thread::spawn(move || {
                    handle_connection(stream, &inner);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
}

/// Serves one query connection until EOF, a violation, or shutdown.
fn handle_connection(stream: TcpStream, inner: &Inner) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(inner.config.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    // The tenant this connection attached to, if any.
    let mut attached: Option<String> = None;

    loop {
        let body = match read_frame(&mut reader) {
            Ok(Some(body)) => body,
            Ok(None) => return,
            Err(ServerError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(err) => {
                respond(&mut writer, &error_response(&err));
                return;
            }
        };
        let request = match Request::decode(&body) {
            Ok(request) => request,
            Err(err) => {
                respond(&mut writer, &error_response(&err));
                return;
            }
        };
        let response = handle_request(request, &mut attached, inner);
        if !respond(&mut writer, &response) {
            return;
        }
    }
}

fn respond(writer: &mut impl std::io::Write, response: &Response) -> bool {
    if write_frame(writer, &response.encode()).is_err() {
        return false;
    }
    writer.flush().is_ok()
}

fn error_response(err: &ServerError) -> Response {
    Response::Error {
        code: err.code(),
        message: err.wire_message(),
    }
}

/// The placeholder session configuration cumulative exports carry: zero
/// interval length and threshold mark the "session" as a cumulative
/// table, not an interval profiler.
fn cumulative_config() -> SessionConfig {
    SessionConfig {
        kind: ProfilerKind::MultiHash,
        shards: 0,
        interval_len: 0,
        threshold: 0.0,
        seed: 0,
    }
}

/// Dispatches one request against the merge tree. The aggregator speaks
/// the server's protocol but is read-only: every mutating op gets a typed
/// `bad-request` answer.
fn handle_request(request: Request, attached: &mut Option<String>, inner: &Inner) -> Response {
    let state = || inner.state.lock().expect("state lock poisoned");
    let read_only = || Response::Error {
        code: ErrorCode::BadRequest,
        message: "aggregators are read-only; stream to an mhp-server".into(),
    };
    match request {
        Request::Attach { name } => {
            // Accept both the bare tenant name and the full cumulative
            // session name a parent copies from our own listing.
            let tenant = name.strip_suffix(CUMULATIVE_SUFFIX).unwrap_or(&name);
            let guard = state();
            if guard.tenant_table(tenant).is_none() {
                return Response::Error {
                    code: ErrorCode::UnknownSession,
                    message: format!("no tenant named {tenant:?} aggregated here"),
                };
            }
            let info = tenant_info(&guard, tenant);
            drop(guard);
            *attached = Some(tenant.to_string());
            Response::Session(info)
        }
        Request::ListSessions => {
            let guard = state();
            let infos = guard
                .tenant_names()
                .iter()
                .map(|tenant| tenant_info(&guard, tenant))
                .collect();
            Response::SessionList(infos)
        }
        Request::TopK { n } => match &attached {
            Some(tenant) => Response::TopK(state().top_k(tenant, n as usize)),
            None => read_only_attach_error(),
        },
        Request::Snapshot { .. } => match &attached {
            // The full cumulative table, hottest first — what a parent
            // aggregator swallows whole each cycle. The interval argument
            // is ignored: there is exactly one cumulative view.
            Some(tenant) => {
                let guard = state();
                let candidates = guard.top_k(tenant, usize::MAX);
                Response::Profile(ProfileData {
                    interval_index: guard.epoch,
                    interval_len: 0,
                    threshold: 0.0,
                    candidates,
                })
            }
            None => read_only_attach_error(),
        },
        Request::Stats => {
            let guard = state();
            let mut text = format!("epoch {}\n", guard.epoch);
            for tenant in guard.tenant_names() {
                text.push_str(&format!(
                    "tenant {tenant} events {}\n",
                    guard.tenant_events(&tenant)
                ));
            }
            Response::Stats(text)
        }
        Request::Metrics => Response::Metrics(inner.telemetry.registry.render_prometheus()),
        Request::Traces => Response::Traces(inner.telemetry.tracer.render_jsonl()),
        Request::Shutdown => {
            inner.shutdown.store(true, Ordering::SeqCst);
            Response::Done
        }
        Request::Open { .. }
        | Request::Ingest { .. }
        | Request::IngestSeq { .. }
        | Request::Resume
        | Request::Cut
        | Request::CloseSession => read_only(),
    }
}

fn read_only_attach_error() -> Response {
    Response::Error {
        code: ErrorCode::BadRequest,
        message: "attach to a tenant first".into(),
    }
}

/// The [`SessionInfo`] a tenant's cumulative view exports: named
/// `<tenant>/__cumulative__`, with the pull epoch in `intervals` so
/// downstream consumers can watch progress.
fn tenant_info(state: &AggState, tenant: &str) -> SessionInfo {
    SessionInfo {
        name: format!("{tenant}{CUMULATIVE_SUFFIX}"),
        config: cumulative_config(),
        events: state.tenant_events(tenant),
        intervals: state.epoch,
    }
}
